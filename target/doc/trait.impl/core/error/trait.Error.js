(function() {
    const implementors = Object.fromEntries([["jafar_columnstore",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"jafar_columnstore/error/enum.PlanError.html\" title=\"enum jafar_columnstore::error::PlanError\">PlanError</a>",0]]],["jafar_cpu",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"jafar_cpu/engine/enum.MemoryFault.html\" title=\"enum jafar_cpu::engine::MemoryFault\">MemoryFault</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[308,293]}