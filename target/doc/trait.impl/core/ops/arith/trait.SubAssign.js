(function() {
    const implementors = Object.fromEntries([["jafar_common",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a> for <a class=\"struct\" href=\"jafar_common/time/struct.Tick.html\" title=\"struct jafar_common::time::Tick\">Tick</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[303]}