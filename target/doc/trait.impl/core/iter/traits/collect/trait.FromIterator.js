(function() {
    const implementors = Object.fromEntries([["jafar_columnstore",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u32.html\">u32</a>&gt; for <a class=\"struct\" href=\"jafar_columnstore/positions/struct.PositionList.html\" title=\"struct jafar_columnstore::positions::PositionList\">PositionList</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[485]}