(function() {
    const implementors = Object.fromEntries([["jafar_common",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/iterator/trait.Iterator.html\" title=\"trait core::iter::traits::iterator::Iterator\">Iterator</a> for <a class=\"struct\" href=\"jafar_common/bitset/struct.IterOnes.html\" title=\"struct jafar_common::bitset::IterOnes\">IterOnes</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[349]}