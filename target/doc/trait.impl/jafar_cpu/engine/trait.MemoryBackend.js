(function() {
    const implementors = Object.fromEntries([["jafar_cpu",[]],["jafar_sim",[["impl <a class=\"trait\" href=\"jafar_cpu/engine/trait.MemoryBackend.html\" title=\"trait jafar_cpu::engine::MemoryBackend\">MemoryBackend</a> for <a class=\"struct\" href=\"jafar_sim/backend/struct.SimBackend.html\" title=\"struct jafar_sim::backend::SimBackend\">SimBackend</a>&lt;'_&gt;",0]]],["jafar_sim",[["impl MemoryBackend for <a class=\"struct\" href=\"jafar_sim/backend/struct.SimBackend.html\" title=\"struct jafar_sim::backend::SimBackend\">SimBackend</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[16,311,188]}