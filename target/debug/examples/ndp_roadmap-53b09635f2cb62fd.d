/root/repo/target/debug/examples/ndp_roadmap-53b09635f2cb62fd.d: examples/ndp_roadmap.rs

/root/repo/target/debug/examples/ndp_roadmap-53b09635f2cb62fd: examples/ndp_roadmap.rs

examples/ndp_roadmap.rs:
