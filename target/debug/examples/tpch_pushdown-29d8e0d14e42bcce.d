/root/repo/target/debug/examples/tpch_pushdown-29d8e0d14e42bcce.d: examples/tpch_pushdown.rs Cargo.toml

/root/repo/target/debug/examples/libtpch_pushdown-29d8e0d14e42bcce.rmeta: examples/tpch_pushdown.rs Cargo.toml

examples/tpch_pushdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
