/root/repo/target/debug/examples/tpch_pushdown-0498c116472cf38b.d: examples/tpch_pushdown.rs

/root/repo/target/debug/examples/tpch_pushdown-0498c116472cf38b: examples/tpch_pushdown.rs

examples/tpch_pushdown.rs:
