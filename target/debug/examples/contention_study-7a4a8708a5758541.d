/root/repo/target/debug/examples/contention_study-7a4a8708a5758541.d: examples/contention_study.rs

/root/repo/target/debug/examples/contention_study-7a4a8708a5758541: examples/contention_study.rs

examples/contention_study.rs:
