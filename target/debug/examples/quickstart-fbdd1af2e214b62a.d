/root/repo/target/debug/examples/quickstart-fbdd1af2e214b62a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fbdd1af2e214b62a: examples/quickstart.rs

examples/quickstart.rs:
