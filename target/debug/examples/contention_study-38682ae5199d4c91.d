/root/repo/target/debug/examples/contention_study-38682ae5199d4c91.d: examples/contention_study.rs Cargo.toml

/root/repo/target/debug/examples/libcontention_study-38682ae5199d4c91.rmeta: examples/contention_study.rs Cargo.toml

examples/contention_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
