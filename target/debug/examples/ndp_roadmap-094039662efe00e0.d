/root/repo/target/debug/examples/ndp_roadmap-094039662efe00e0.d: examples/ndp_roadmap.rs Cargo.toml

/root/repo/target/debug/examples/libndp_roadmap-094039662efe00e0.rmeta: examples/ndp_roadmap.rs Cargo.toml

examples/ndp_roadmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
