/root/repo/target/debug/deps/intext_claims-602ddb1d3ce21bf8.d: crates/bench/src/bin/intext_claims.rs

/root/repo/target/debug/deps/intext_claims-602ddb1d3ce21bf8: crates/bench/src/bin/intext_claims.rs

crates/bench/src/bin/intext_claims.rs:
