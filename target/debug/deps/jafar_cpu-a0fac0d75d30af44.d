/root/repo/target/debug/deps/jafar_cpu-a0fac0d75d30af44.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_cpu-a0fac0d75d30af44.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/engine.rs:
crates/cpu/src/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
