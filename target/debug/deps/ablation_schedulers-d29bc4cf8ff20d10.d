/root/repo/target/debug/deps/ablation_schedulers-d29bc4cf8ff20d10.d: crates/bench/src/bin/ablation_schedulers.rs

/root/repo/target/debug/deps/libablation_schedulers-d29bc4cf8ff20d10.rmeta: crates/bench/src/bin/ablation_schedulers.rs

crates/bench/src/bin/ablation_schedulers.rs:
