/root/repo/target/debug/deps/jafar_dram-92988e8b49bc1406.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs

/root/repo/target/debug/deps/libjafar_dram-92988e8b49bc1406.rmeta: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/data.rs:
crates/dram/src/fault.rs:
crates/dram/src/geometry.rs:
crates/dram/src/mode.rs:
crates/dram/src/module.rs:
crates/dram/src/stats.rs:
crates/dram/src/timing.rs:
