/root/repo/target/debug/deps/jafar_memctl-21b7ea2f77ca0f00.d: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_memctl-21b7ea2f77ca0f00.rmeta: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs Cargo.toml

crates/memctl/src/lib.rs:
crates/memctl/src/channel.rs:
crates/memctl/src/controller.rs:
crates/memctl/src/counters.rs:
crates/memctl/src/request.rs:
crates/memctl/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
