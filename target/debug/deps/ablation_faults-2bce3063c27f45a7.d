/root/repo/target/debug/deps/ablation_faults-2bce3063c27f45a7.d: crates/bench/src/bin/ablation_faults.rs Cargo.toml

/root/repo/target/debug/deps/libablation_faults-2bce3063c27f45a7.rmeta: crates/bench/src/bin/ablation_faults.rs Cargo.toml

crates/bench/src/bin/ablation_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
