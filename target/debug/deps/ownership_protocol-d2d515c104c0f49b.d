/root/repo/target/debug/deps/ownership_protocol-d2d515c104c0f49b.d: tests/ownership_protocol.rs

/root/repo/target/debug/deps/ownership_protocol-d2d515c104c0f49b: tests/ownership_protocol.rs

tests/ownership_protocol.rs:
