/root/repo/target/debug/deps/ablation_extensions-026eef8729fbb0fa.d: crates/bench/src/bin/ablation_extensions.rs

/root/repo/target/debug/deps/libablation_extensions-026eef8729fbb0fa.rmeta: crates/bench/src/bin/ablation_extensions.rs

crates/bench/src/bin/ablation_extensions.rs:
