/root/repo/target/debug/deps/jafar_sim-aceeb9d350026817.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_sim-aceeb9d350026817.rmeta: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backend.rs:
crates/sim/src/config.rs:
crates/sim/src/energy.rs:
crates/sim/src/replay.rs:
crates/sim/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
