/root/repo/target/debug/deps/table1_platforms-5f0f8557061fc256.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/debug/deps/table1_platforms-5f0f8557061fc256: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
