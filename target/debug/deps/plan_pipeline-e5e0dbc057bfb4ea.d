/root/repo/target/debug/deps/plan_pipeline-e5e0dbc057bfb4ea.d: tests/plan_pipeline.rs

/root/repo/target/debug/deps/plan_pipeline-e5e0dbc057bfb4ea: tests/plan_pipeline.rs

tests/plan_pipeline.rs:
