/root/repo/target/debug/deps/ablation_ownership_windows-1473f4052aeab967.d: crates/bench/src/bin/ablation_ownership_windows.rs

/root/repo/target/debug/deps/ablation_ownership_windows-1473f4052aeab967: crates/bench/src/bin/ablation_ownership_windows.rs

crates/bench/src/bin/ablation_ownership_windows.rs:
