/root/repo/target/debug/deps/ablation_channels-824833110facd896.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/ablation_channels-824833110facd896: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
