/root/repo/target/debug/deps/intext_claims-545b6dc3102540c3.d: crates/bench/src/bin/intext_claims.rs Cargo.toml

/root/repo/target/debug/deps/libintext_claims-545b6dc3102540c3.rmeta: crates/bench/src/bin/intext_claims.rs Cargo.toml

crates/bench/src/bin/intext_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
