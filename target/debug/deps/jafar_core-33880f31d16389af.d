/root/repo/target/debug/deps/jafar_core-33880f31d16389af.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/api.rs crates/core/src/device.rs crates/core/src/driver.rs crates/core/src/interleave.rs crates/core/src/ownership.rs crates/core/src/predicate.rs crates/core/src/project.rs crates/core/src/regs.rs crates/core/src/rowstore.rs crates/core/src/sort.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_core-33880f31d16389af.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/api.rs crates/core/src/device.rs crates/core/src/driver.rs crates/core/src/interleave.rs crates/core/src/ownership.rs crates/core/src/predicate.rs crates/core/src/project.rs crates/core/src/regs.rs crates/core/src/rowstore.rs crates/core/src/sort.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/api.rs:
crates/core/src/device.rs:
crates/core/src/driver.rs:
crates/core/src/interleave.rs:
crates/core/src/ownership.rs:
crates/core/src/predicate.rs:
crates/core/src/project.rs:
crates/core/src/regs.rs:
crates/core/src/rowstore.rs:
crates/core/src/sort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
