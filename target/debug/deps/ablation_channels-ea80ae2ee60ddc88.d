/root/repo/target/debug/deps/ablation_channels-ea80ae2ee60ddc88.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/libablation_channels-ea80ae2ee60ddc88.rmeta: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
