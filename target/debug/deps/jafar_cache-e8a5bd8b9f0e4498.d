/root/repo/target/debug/deps/jafar_cache-e8a5bd8b9f0e4498.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_cache-e8a5bd8b9f0e4498.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs Cargo.toml

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
