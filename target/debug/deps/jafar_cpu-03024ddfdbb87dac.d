/root/repo/target/debug/deps/jafar_cpu-03024ddfdbb87dac.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_cpu-03024ddfdbb87dac.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/engine.rs:
crates/cpu/src/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
