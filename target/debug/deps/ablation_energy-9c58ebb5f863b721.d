/root/repo/target/debug/deps/ablation_energy-9c58ebb5f863b721.d: crates/bench/src/bin/ablation_energy.rs

/root/repo/target/debug/deps/ablation_energy-9c58ebb5f863b721: crates/bench/src/bin/ablation_energy.rs

crates/bench/src/bin/ablation_energy.rs:
