/root/repo/target/debug/deps/device-d85768796239cb61.d: crates/bench/benches/device.rs Cargo.toml

/root/repo/target/debug/deps/libdevice-d85768796239cb61.rmeta: crates/bench/benches/device.rs Cargo.toml

crates/bench/benches/device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
