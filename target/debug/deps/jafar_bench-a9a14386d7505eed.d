/root/repo/target/debug/deps/jafar_bench-a9a14386d7505eed.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_bench-a9a14386d7505eed.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
