/root/repo/target/debug/deps/ablation_energy-b17e151acca42623.d: crates/bench/src/bin/ablation_energy.rs

/root/repo/target/debug/deps/libablation_energy-b17e151acca42623.rmeta: crates/bench/src/bin/ablation_energy.rs

crates/bench/src/bin/ablation_energy.rs:
