/root/repo/target/debug/deps/tpch_pipeline-4f2ffe0c59056440.d: tests/tpch_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libtpch_pipeline-4f2ffe0c59056440.rmeta: tests/tpch_pipeline.rs Cargo.toml

tests/tpch_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
