/root/repo/target/debug/deps/failure_injection-7d7e1364e99412d1.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-7d7e1364e99412d1.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
