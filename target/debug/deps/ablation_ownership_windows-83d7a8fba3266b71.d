/root/repo/target/debug/deps/ablation_ownership_windows-83d7a8fba3266b71.d: crates/bench/src/bin/ablation_ownership_windows.rs

/root/repo/target/debug/deps/libablation_ownership_windows-83d7a8fba3266b71.rmeta: crates/bench/src/bin/ablation_ownership_windows.rs

crates/bench/src/bin/ablation_ownership_windows.rs:
