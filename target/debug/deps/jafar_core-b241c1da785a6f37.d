/root/repo/target/debug/deps/jafar_core-b241c1da785a6f37.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/api.rs crates/core/src/device.rs crates/core/src/driver.rs crates/core/src/interleave.rs crates/core/src/ownership.rs crates/core/src/predicate.rs crates/core/src/project.rs crates/core/src/regs.rs crates/core/src/rowstore.rs crates/core/src/sort.rs

/root/repo/target/debug/deps/libjafar_core-b241c1da785a6f37.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/api.rs crates/core/src/device.rs crates/core/src/driver.rs crates/core/src/interleave.rs crates/core/src/ownership.rs crates/core/src/predicate.rs crates/core/src/project.rs crates/core/src/regs.rs crates/core/src/rowstore.rs crates/core/src/sort.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/api.rs:
crates/core/src/device.rs:
crates/core/src/driver.rs:
crates/core/src/interleave.rs:
crates/core/src/ownership.rs:
crates/core/src/predicate.rs:
crates/core/src/project.rs:
crates/core/src/regs.rs:
crates/core/src/rowstore.rs:
crates/core/src/sort.rs:
