/root/repo/target/debug/deps/fig4_idle-fcdce18bb23ef325.d: crates/bench/src/bin/fig4_idle.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_idle-fcdce18bb23ef325.rmeta: crates/bench/src/bin/fig4_idle.rs Cargo.toml

crates/bench/src/bin/fig4_idle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
