/root/repo/target/debug/deps/ablation_channels-2434a5aa633a9523.d: crates/bench/src/bin/ablation_channels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_channels-2434a5aa633a9523.rmeta: crates/bench/src/bin/ablation_channels.rs Cargo.toml

crates/bench/src/bin/ablation_channels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
