/root/repo/target/debug/deps/jafar_common-54fc4f36a412592a.d: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_common-54fc4f36a412592a.rmeta: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/bitset.rs:
crates/common/src/check.rs:
crates/common/src/obs.rs:
crates/common/src/rng.rs:
crates/common/src/size.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
