/root/repo/target/debug/deps/ablation_channels-62d3c2263b1a0cfc.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/libablation_channels-62d3c2263b1a0cfc.rmeta: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
