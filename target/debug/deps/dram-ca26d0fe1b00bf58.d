/root/repo/target/debug/deps/dram-ca26d0fe1b00bf58.d: crates/bench/benches/dram.rs Cargo.toml

/root/repo/target/debug/deps/libdram-ca26d0fe1b00bf58.rmeta: crates/bench/benches/dram.rs Cargo.toml

crates/bench/benches/dram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
