/root/repo/target/debug/deps/jafar_accel-0a987a5c0a65927c.d: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

/root/repo/target/debug/deps/libjafar_accel-0a987a5c0a65927c.rmeta: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

crates/accel/src/lib.rs:
crates/accel/src/dddg.rs:
crates/accel/src/ir.rs:
crates/accel/src/power.rs:
crates/accel/src/schedule.rs:
