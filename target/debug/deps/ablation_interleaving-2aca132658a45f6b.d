/root/repo/target/debug/deps/ablation_interleaving-2aca132658a45f6b.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/libablation_interleaving-2aca132658a45f6b.rmeta: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
