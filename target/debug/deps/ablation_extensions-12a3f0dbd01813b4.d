/root/repo/target/debug/deps/ablation_extensions-12a3f0dbd01813b4.d: crates/bench/src/bin/ablation_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libablation_extensions-12a3f0dbd01813b4.rmeta: crates/bench/src/bin/ablation_extensions.rs Cargo.toml

crates/bench/src/bin/ablation_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
