/root/repo/target/debug/deps/ablation_faults-288c9d757e08e537.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/ablation_faults-288c9d757e08e537: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
