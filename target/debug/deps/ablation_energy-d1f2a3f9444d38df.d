/root/repo/target/debug/deps/ablation_energy-d1f2a3f9444d38df.d: crates/bench/src/bin/ablation_energy.rs

/root/repo/target/debug/deps/libablation_energy-d1f2a3f9444d38df.rmeta: crates/bench/src/bin/ablation_energy.rs

crates/bench/src/bin/ablation_energy.rs:
