/root/repo/target/debug/deps/fig3_speedup-1790e9b9fc05607d.d: crates/bench/src/bin/fig3_speedup.rs

/root/repo/target/debug/deps/fig3_speedup-1790e9b9fc05607d: crates/bench/src/bin/fig3_speedup.rs

crates/bench/src/bin/fig3_speedup.rs:
