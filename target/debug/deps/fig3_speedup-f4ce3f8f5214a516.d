/root/repo/target/debug/deps/fig3_speedup-f4ce3f8f5214a516.d: crates/bench/src/bin/fig3_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_speedup-f4ce3f8f5214a516.rmeta: crates/bench/src/bin/fig3_speedup.rs Cargo.toml

crates/bench/src/bin/fig3_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
