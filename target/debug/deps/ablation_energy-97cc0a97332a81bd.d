/root/repo/target/debug/deps/ablation_energy-97cc0a97332a81bd.d: crates/bench/src/bin/ablation_energy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_energy-97cc0a97332a81bd.rmeta: crates/bench/src/bin/ablation_energy.rs Cargo.toml

crates/bench/src/bin/ablation_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
