/root/repo/target/debug/deps/jafar_sim-623a6b1dbc9e1bc5.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libjafar_sim-623a6b1dbc9e1bc5.rlib: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libjafar_sim-623a6b1dbc9e1bc5.rmeta: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backend.rs:
crates/sim/src/config.rs:
crates/sim/src/energy.rs:
crates/sim/src/replay.rs:
crates/sim/src/system.rs:
