/root/repo/target/debug/deps/table1_platforms-f35606b1c32c2104.d: crates/bench/src/bin/table1_platforms.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_platforms-f35606b1c32c2104.rmeta: crates/bench/src/bin/table1_platforms.rs Cargo.toml

crates/bench/src/bin/table1_platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
