/root/repo/target/debug/deps/ablation_faults-53178d9ea2e26a5e.d: crates/bench/src/bin/ablation_faults.rs Cargo.toml

/root/repo/target/debug/deps/libablation_faults-53178d9ea2e26a5e.rmeta: crates/bench/src/bin/ablation_faults.rs Cargo.toml

crates/bench/src/bin/ablation_faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
