/root/repo/target/debug/deps/intext_claims-79e0898696e77f0a.d: crates/bench/src/bin/intext_claims.rs Cargo.toml

/root/repo/target/debug/deps/libintext_claims-79e0898696e77f0a.rmeta: crates/bench/src/bin/intext_claims.rs Cargo.toml

crates/bench/src/bin/intext_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
