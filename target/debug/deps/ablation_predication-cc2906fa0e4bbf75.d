/root/repo/target/debug/deps/ablation_predication-cc2906fa0e4bbf75.d: crates/bench/src/bin/ablation_predication.rs Cargo.toml

/root/repo/target/debug/deps/libablation_predication-cc2906fa0e4bbf75.rmeta: crates/bench/src/bin/ablation_predication.rs Cargo.toml

crates/bench/src/bin/ablation_predication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
