/root/repo/target/debug/deps/fig4_idle-4709bdb3d9a92a17.d: crates/bench/src/bin/fig4_idle.rs

/root/repo/target/debug/deps/libfig4_idle-4709bdb3d9a92a17.rmeta: crates/bench/src/bin/fig4_idle.rs

crates/bench/src/bin/fig4_idle.rs:
