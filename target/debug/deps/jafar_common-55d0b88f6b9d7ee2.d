/root/repo/target/debug/deps/jafar_common-55d0b88f6b9d7ee2.d: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/debug/deps/jafar_common-55d0b88f6b9d7ee2: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

crates/common/src/lib.rs:
crates/common/src/bitset.rs:
crates/common/src/check.rs:
crates/common/src/obs.rs:
crates/common/src/rng.rs:
crates/common/src/size.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
