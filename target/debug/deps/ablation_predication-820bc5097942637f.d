/root/repo/target/debug/deps/ablation_predication-820bc5097942637f.d: crates/bench/src/bin/ablation_predication.rs

/root/repo/target/debug/deps/ablation_predication-820bc5097942637f: crates/bench/src/bin/ablation_predication.rs

crates/bench/src/bin/ablation_predication.rs:
