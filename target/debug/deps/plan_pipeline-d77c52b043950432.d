/root/repo/target/debug/deps/plan_pipeline-d77c52b043950432.d: tests/plan_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libplan_pipeline-d77c52b043950432.rmeta: tests/plan_pipeline.rs Cargo.toml

tests/plan_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
