/root/repo/target/debug/deps/ownership_protocol-65c8ec110228aa72.d: tests/ownership_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libownership_protocol-65c8ec110228aa72.rmeta: tests/ownership_protocol.rs Cargo.toml

tests/ownership_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
