/root/repo/target/debug/deps/table1_platforms-3bfe45dd93ad852d.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/debug/deps/libtable1_platforms-3bfe45dd93ad852d.rmeta: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
