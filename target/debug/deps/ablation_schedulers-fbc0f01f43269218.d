/root/repo/target/debug/deps/ablation_schedulers-fbc0f01f43269218.d: crates/bench/src/bin/ablation_schedulers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_schedulers-fbc0f01f43269218.rmeta: crates/bench/src/bin/ablation_schedulers.rs Cargo.toml

crates/bench/src/bin/ablation_schedulers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
