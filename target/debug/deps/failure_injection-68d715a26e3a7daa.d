/root/repo/target/debug/deps/failure_injection-68d715a26e3a7daa.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-68d715a26e3a7daa: tests/failure_injection.rs

tests/failure_injection.rs:
