/root/repo/target/debug/deps/trace_determinism-07bd7e5aa572d5c6.d: tests/trace_determinism.rs

/root/repo/target/debug/deps/trace_determinism-07bd7e5aa572d5c6: tests/trace_determinism.rs

tests/trace_determinism.rs:
