/root/repo/target/debug/deps/jafar_bench-26acf19d9873523a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/jafar_bench-26acf19d9873523a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
