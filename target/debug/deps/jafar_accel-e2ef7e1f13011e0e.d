/root/repo/target/debug/deps/jafar_accel-e2ef7e1f13011e0e.d: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

/root/repo/target/debug/deps/jafar_accel-e2ef7e1f13011e0e: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

crates/accel/src/lib.rs:
crates/accel/src/dddg.rs:
crates/accel/src/ir.rs:
crates/accel/src/power.rs:
crates/accel/src/schedule.rs:
