/root/repo/target/debug/deps/cache-6a88b8fe070faf00.d: crates/bench/benches/cache.rs

/root/repo/target/debug/deps/cache-6a88b8fe070faf00: crates/bench/benches/cache.rs

crates/bench/benches/cache.rs:
