/root/repo/target/debug/deps/table1_platforms-1807a0647f78ca8e.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/debug/deps/libtable1_platforms-1807a0647f78ca8e.rmeta: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
