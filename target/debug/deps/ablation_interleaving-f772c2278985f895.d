/root/repo/target/debug/deps/ablation_interleaving-f772c2278985f895.d: crates/bench/src/bin/ablation_interleaving.rs Cargo.toml

/root/repo/target/debug/deps/libablation_interleaving-f772c2278985f895.rmeta: crates/bench/src/bin/ablation_interleaving.rs Cargo.toml

crates/bench/src/bin/ablation_interleaving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
