/root/repo/target/debug/deps/cache-e86ba61b6a4f5afa.d: crates/bench/benches/cache.rs

/root/repo/target/debug/deps/libcache-e86ba61b6a4f5afa.rmeta: crates/bench/benches/cache.rs

crates/bench/benches/cache.rs:
