/root/repo/target/debug/deps/table1_platforms-9d621a33842950b5.d: crates/bench/src/bin/table1_platforms.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_platforms-9d621a33842950b5.rmeta: crates/bench/src/bin/table1_platforms.rs Cargo.toml

crates/bench/src/bin/table1_platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
