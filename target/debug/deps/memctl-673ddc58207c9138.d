/root/repo/target/debug/deps/memctl-673ddc58207c9138.d: crates/bench/benches/memctl.rs

/root/repo/target/debug/deps/libmemctl-673ddc58207c9138.rmeta: crates/bench/benches/memctl.rs

crates/bench/benches/memctl.rs:
