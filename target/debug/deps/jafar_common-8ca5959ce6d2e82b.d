/root/repo/target/debug/deps/jafar_common-8ca5959ce6d2e82b.d: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/debug/deps/libjafar_common-8ca5959ce6d2e82b.rmeta: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

crates/common/src/lib.rs:
crates/common/src/bitset.rs:
crates/common/src/check.rs:
crates/common/src/obs.rs:
crates/common/src/rng.rs:
crates/common/src/size.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
