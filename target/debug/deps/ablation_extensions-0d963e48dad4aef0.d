/root/repo/target/debug/deps/ablation_extensions-0d963e48dad4aef0.d: crates/bench/src/bin/ablation_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libablation_extensions-0d963e48dad4aef0.rmeta: crates/bench/src/bin/ablation_extensions.rs Cargo.toml

crates/bench/src/bin/ablation_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
