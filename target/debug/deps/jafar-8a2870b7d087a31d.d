/root/repo/target/debug/deps/jafar-8a2870b7d087a31d.d: src/lib.rs

/root/repo/target/debug/deps/libjafar-8a2870b7d087a31d.rlib: src/lib.rs

/root/repo/target/debug/deps/libjafar-8a2870b7d087a31d.rmeta: src/lib.rs

src/lib.rs:
