/root/repo/target/debug/deps/cache-8aa2642e0ff43e99.d: crates/bench/benches/cache.rs Cargo.toml

/root/repo/target/debug/deps/libcache-8aa2642e0ff43e99.rmeta: crates/bench/benches/cache.rs Cargo.toml

crates/bench/benches/cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
