/root/repo/target/debug/deps/ablation_channels-eb3f1d656314db50.d: crates/bench/src/bin/ablation_channels.rs

/root/repo/target/debug/deps/ablation_channels-eb3f1d656314db50: crates/bench/src/bin/ablation_channels.rs

crates/bench/src/bin/ablation_channels.rs:
