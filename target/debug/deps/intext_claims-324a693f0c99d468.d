/root/repo/target/debug/deps/intext_claims-324a693f0c99d468.d: crates/bench/src/bin/intext_claims.rs

/root/repo/target/debug/deps/libintext_claims-324a693f0c99d468.rmeta: crates/bench/src/bin/intext_claims.rs

crates/bench/src/bin/intext_claims.rs:
