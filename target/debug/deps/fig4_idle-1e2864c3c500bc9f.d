/root/repo/target/debug/deps/fig4_idle-1e2864c3c500bc9f.d: crates/bench/src/bin/fig4_idle.rs

/root/repo/target/debug/deps/libfig4_idle-1e2864c3c500bc9f.rmeta: crates/bench/src/bin/fig4_idle.rs

crates/bench/src/bin/fig4_idle.rs:
