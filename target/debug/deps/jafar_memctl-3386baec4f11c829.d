/root/repo/target/debug/deps/jafar_memctl-3386baec4f11c829.d: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

/root/repo/target/debug/deps/libjafar_memctl-3386baec4f11c829.rlib: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

/root/repo/target/debug/deps/libjafar_memctl-3386baec4f11c829.rmeta: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

crates/memctl/src/lib.rs:
crates/memctl/src/channel.rs:
crates/memctl/src/controller.rs:
crates/memctl/src/counters.rs:
crates/memctl/src/request.rs:
crates/memctl/src/sched.rs:
