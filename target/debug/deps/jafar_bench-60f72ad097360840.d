/root/repo/target/debug/deps/jafar_bench-60f72ad097360840.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjafar_bench-60f72ad097360840.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjafar_bench-60f72ad097360840.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
