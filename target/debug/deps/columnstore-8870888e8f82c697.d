/root/repo/target/debug/deps/columnstore-8870888e8f82c697.d: crates/bench/benches/columnstore.rs

/root/repo/target/debug/deps/columnstore-8870888e8f82c697: crates/bench/benches/columnstore.rs

crates/bench/benches/columnstore.rs:
