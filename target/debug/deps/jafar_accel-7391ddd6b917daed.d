/root/repo/target/debug/deps/jafar_accel-7391ddd6b917daed.d: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_accel-7391ddd6b917daed.rmeta: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/dddg.rs:
crates/accel/src/ir.rs:
crates/accel/src/power.rs:
crates/accel/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
