/root/repo/target/debug/deps/memctl-5b5965ba2bc13bbb.d: crates/bench/benches/memctl.rs Cargo.toml

/root/repo/target/debug/deps/libmemctl-5b5965ba2bc13bbb.rmeta: crates/bench/benches/memctl.rs Cargo.toml

crates/bench/benches/memctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
