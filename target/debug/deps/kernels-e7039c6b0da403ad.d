/root/repo/target/debug/deps/kernels-e7039c6b0da403ad.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-e7039c6b0da403ad: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
