/root/repo/target/debug/deps/jafar_tpch-a819ebeb7183d428.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/plans.rs crates/tpch/src/queries/q1.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q22.rs crates/tpch/src/queries/q3.rs crates/tpch/src/queries/q6.rs

/root/repo/target/debug/deps/jafar_tpch-a819ebeb7183d428: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/plans.rs crates/tpch/src/queries/q1.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q22.rs crates/tpch/src/queries/q3.rs crates/tpch/src/queries/q6.rs

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/plans.rs:
crates/tpch/src/queries/q1.rs:
crates/tpch/src/queries/q18.rs:
crates/tpch/src/queries/q22.rs:
crates/tpch/src/queries/q3.rs:
crates/tpch/src/queries/q6.rs:
