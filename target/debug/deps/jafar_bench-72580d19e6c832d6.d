/root/repo/target/debug/deps/jafar_bench-72580d19e6c832d6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjafar_bench-72580d19e6c832d6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
