/root/repo/target/debug/deps/ablation_channels-9b21a8a75d400dd7.d: crates/bench/src/bin/ablation_channels.rs Cargo.toml

/root/repo/target/debug/deps/libablation_channels-9b21a8a75d400dd7.rmeta: crates/bench/src/bin/ablation_channels.rs Cargo.toml

crates/bench/src/bin/ablation_channels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
