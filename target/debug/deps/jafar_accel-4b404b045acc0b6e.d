/root/repo/target/debug/deps/jafar_accel-4b404b045acc0b6e.d: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

/root/repo/target/debug/deps/libjafar_accel-4b404b045acc0b6e.rlib: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

/root/repo/target/debug/deps/libjafar_accel-4b404b045acc0b6e.rmeta: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

crates/accel/src/lib.rs:
crates/accel/src/dddg.rs:
crates/accel/src/ir.rs:
crates/accel/src/power.rs:
crates/accel/src/schedule.rs:
