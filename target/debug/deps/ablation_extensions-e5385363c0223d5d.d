/root/repo/target/debug/deps/ablation_extensions-e5385363c0223d5d.d: crates/bench/src/bin/ablation_extensions.rs

/root/repo/target/debug/deps/ablation_extensions-e5385363c0223d5d: crates/bench/src/bin/ablation_extensions.rs

crates/bench/src/bin/ablation_extensions.rs:
