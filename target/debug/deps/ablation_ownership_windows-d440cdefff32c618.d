/root/repo/target/debug/deps/ablation_ownership_windows-d440cdefff32c618.d: crates/bench/src/bin/ablation_ownership_windows.rs

/root/repo/target/debug/deps/ablation_ownership_windows-d440cdefff32c618: crates/bench/src/bin/ablation_ownership_windows.rs

crates/bench/src/bin/ablation_ownership_windows.rs:
