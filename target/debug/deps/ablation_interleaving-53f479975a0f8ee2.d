/root/repo/target/debug/deps/ablation_interleaving-53f479975a0f8ee2.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/ablation_interleaving-53f479975a0f8ee2: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
