/root/repo/target/debug/deps/ablation_interleaving-29bdc7a1f849e1f3.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/libablation_interleaving-29bdc7a1f849e1f3.rmeta: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
