/root/repo/target/debug/deps/jafar_columnstore-5be44f94e7140848.d: crates/columnstore/src/lib.rs crates/columnstore/src/column.rs crates/columnstore/src/dict.rs crates/columnstore/src/error.rs crates/columnstore/src/exec.rs crates/columnstore/src/ops/mod.rs crates/columnstore/src/ops/agg.rs crates/columnstore/src/ops/join.rs crates/columnstore/src/ops/project.rs crates/columnstore/src/ops/scan.rs crates/columnstore/src/ops/sort.rs crates/columnstore/src/plan.rs crates/columnstore/src/positions.rs crates/columnstore/src/pushdown.rs crates/columnstore/src/table.rs crates/columnstore/src/trace.rs crates/columnstore/src/value.rs

/root/repo/target/debug/deps/libjafar_columnstore-5be44f94e7140848.rlib: crates/columnstore/src/lib.rs crates/columnstore/src/column.rs crates/columnstore/src/dict.rs crates/columnstore/src/error.rs crates/columnstore/src/exec.rs crates/columnstore/src/ops/mod.rs crates/columnstore/src/ops/agg.rs crates/columnstore/src/ops/join.rs crates/columnstore/src/ops/project.rs crates/columnstore/src/ops/scan.rs crates/columnstore/src/ops/sort.rs crates/columnstore/src/plan.rs crates/columnstore/src/positions.rs crates/columnstore/src/pushdown.rs crates/columnstore/src/table.rs crates/columnstore/src/trace.rs crates/columnstore/src/value.rs

/root/repo/target/debug/deps/libjafar_columnstore-5be44f94e7140848.rmeta: crates/columnstore/src/lib.rs crates/columnstore/src/column.rs crates/columnstore/src/dict.rs crates/columnstore/src/error.rs crates/columnstore/src/exec.rs crates/columnstore/src/ops/mod.rs crates/columnstore/src/ops/agg.rs crates/columnstore/src/ops/join.rs crates/columnstore/src/ops/project.rs crates/columnstore/src/ops/scan.rs crates/columnstore/src/ops/sort.rs crates/columnstore/src/plan.rs crates/columnstore/src/positions.rs crates/columnstore/src/pushdown.rs crates/columnstore/src/table.rs crates/columnstore/src/trace.rs crates/columnstore/src/value.rs

crates/columnstore/src/lib.rs:
crates/columnstore/src/column.rs:
crates/columnstore/src/dict.rs:
crates/columnstore/src/error.rs:
crates/columnstore/src/exec.rs:
crates/columnstore/src/ops/mod.rs:
crates/columnstore/src/ops/agg.rs:
crates/columnstore/src/ops/join.rs:
crates/columnstore/src/ops/project.rs:
crates/columnstore/src/ops/scan.rs:
crates/columnstore/src/ops/sort.rs:
crates/columnstore/src/plan.rs:
crates/columnstore/src/positions.rs:
crates/columnstore/src/pushdown.rs:
crates/columnstore/src/table.rs:
crates/columnstore/src/trace.rs:
crates/columnstore/src/value.rs:
