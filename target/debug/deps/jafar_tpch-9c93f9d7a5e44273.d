/root/repo/target/debug/deps/jafar_tpch-9c93f9d7a5e44273.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/plans.rs crates/tpch/src/queries/q1.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q22.rs crates/tpch/src/queries/q3.rs crates/tpch/src/queries/q6.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_tpch-9c93f9d7a5e44273.rmeta: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/plans.rs crates/tpch/src/queries/q1.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q22.rs crates/tpch/src/queries/q3.rs crates/tpch/src/queries/q6.rs Cargo.toml

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/plans.rs:
crates/tpch/src/queries/q1.rs:
crates/tpch/src/queries/q18.rs:
crates/tpch/src/queries/q22.rs:
crates/tpch/src/queries/q3.rs:
crates/tpch/src/queries/q6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
