/root/repo/target/debug/deps/ablation_predication-293252dd8f2b78d0.d: crates/bench/src/bin/ablation_predication.rs Cargo.toml

/root/repo/target/debug/deps/libablation_predication-293252dd8f2b78d0.rmeta: crates/bench/src/bin/ablation_predication.rs Cargo.toml

crates/bench/src/bin/ablation_predication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
