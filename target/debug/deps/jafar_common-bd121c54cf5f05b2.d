/root/repo/target/debug/deps/jafar_common-bd121c54cf5f05b2.d: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_common-bd121c54cf5f05b2.rmeta: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/bitset.rs:
crates/common/src/check.rs:
crates/common/src/obs.rs:
crates/common/src/rng.rs:
crates/common/src/size.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
