/root/repo/target/debug/deps/ablation_schedulers-517caeffbf711ca9.d: crates/bench/src/bin/ablation_schedulers.rs

/root/repo/target/debug/deps/ablation_schedulers-517caeffbf711ca9: crates/bench/src/bin/ablation_schedulers.rs

crates/bench/src/bin/ablation_schedulers.rs:
