/root/repo/target/debug/deps/fig4_idle-0b6098474a5ac143.d: crates/bench/src/bin/fig4_idle.rs

/root/repo/target/debug/deps/fig4_idle-0b6098474a5ac143: crates/bench/src/bin/fig4_idle.rs

crates/bench/src/bin/fig4_idle.rs:
