/root/repo/target/debug/deps/ablation_ownership_windows-ed1519bf7a5e3e45.d: crates/bench/src/bin/ablation_ownership_windows.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ownership_windows-ed1519bf7a5e3e45.rmeta: crates/bench/src/bin/ablation_ownership_windows.rs Cargo.toml

crates/bench/src/bin/ablation_ownership_windows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
