/root/repo/target/debug/deps/jafar-a563d183b77e6ce9.d: src/lib.rs

/root/repo/target/debug/deps/jafar-a563d183b77e6ce9: src/lib.rs

src/lib.rs:
