/root/repo/target/debug/deps/jafar_cache-895d6283560fab8e.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libjafar_cache-895d6283560fab8e.rlib: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libjafar_cache-895d6283560fab8e.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
