/root/repo/target/debug/deps/fig3_speedup-f04fe6d5c5ee7824.d: crates/bench/src/bin/fig3_speedup.rs

/root/repo/target/debug/deps/fig3_speedup-f04fe6d5c5ee7824: crates/bench/src/bin/fig3_speedup.rs

crates/bench/src/bin/fig3_speedup.rs:
