/root/repo/target/debug/deps/ablation_predication-45033906ddb5f8ff.d: crates/bench/src/bin/ablation_predication.rs

/root/repo/target/debug/deps/libablation_predication-45033906ddb5f8ff.rmeta: crates/bench/src/bin/ablation_predication.rs

crates/bench/src/bin/ablation_predication.rs:
