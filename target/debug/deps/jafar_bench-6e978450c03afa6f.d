/root/repo/target/debug/deps/jafar_bench-6e978450c03afa6f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjafar_bench-6e978450c03afa6f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
