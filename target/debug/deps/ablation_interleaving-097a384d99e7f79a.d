/root/repo/target/debug/deps/ablation_interleaving-097a384d99e7f79a.d: crates/bench/src/bin/ablation_interleaving.rs Cargo.toml

/root/repo/target/debug/deps/libablation_interleaving-097a384d99e7f79a.rmeta: crates/bench/src/bin/ablation_interleaving.rs Cargo.toml

crates/bench/src/bin/ablation_interleaving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
