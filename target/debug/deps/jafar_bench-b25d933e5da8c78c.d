/root/repo/target/debug/deps/jafar_bench-b25d933e5da8c78c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_bench-b25d933e5da8c78c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
