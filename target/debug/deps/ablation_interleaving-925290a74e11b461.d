/root/repo/target/debug/deps/ablation_interleaving-925290a74e11b461.d: crates/bench/src/bin/ablation_interleaving.rs

/root/repo/target/debug/deps/ablation_interleaving-925290a74e11b461: crates/bench/src/bin/ablation_interleaving.rs

crates/bench/src/bin/ablation_interleaving.rs:
