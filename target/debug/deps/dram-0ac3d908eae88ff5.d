/root/repo/target/debug/deps/dram-0ac3d908eae88ff5.d: crates/bench/benches/dram.rs

/root/repo/target/debug/deps/libdram-0ac3d908eae88ff5.rmeta: crates/bench/benches/dram.rs

crates/bench/benches/dram.rs:
