/root/repo/target/debug/deps/jafar_sim-4e0f0db4c619ac2c.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/jafar_sim-4e0f0db4c619ac2c: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backend.rs:
crates/sim/src/config.rs:
crates/sim/src/energy.rs:
crates/sim/src/replay.rs:
crates/sim/src/system.rs:
