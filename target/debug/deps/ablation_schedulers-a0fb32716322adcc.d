/root/repo/target/debug/deps/ablation_schedulers-a0fb32716322adcc.d: crates/bench/src/bin/ablation_schedulers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_schedulers-a0fb32716322adcc.rmeta: crates/bench/src/bin/ablation_schedulers.rs Cargo.toml

crates/bench/src/bin/ablation_schedulers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
