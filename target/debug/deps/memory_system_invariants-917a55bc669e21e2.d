/root/repo/target/debug/deps/memory_system_invariants-917a55bc669e21e2.d: tests/memory_system_invariants.rs

/root/repo/target/debug/deps/memory_system_invariants-917a55bc669e21e2: tests/memory_system_invariants.rs

tests/memory_system_invariants.rs:
