/root/repo/target/debug/deps/jafar_cache-4a9935689a4fcd40.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/jafar_cache-4a9935689a4fcd40: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
