/root/repo/target/debug/deps/jafar_common-130700c1b57e6c12.d: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/debug/deps/libjafar_common-130700c1b57e6c12.rlib: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/debug/deps/libjafar_common-130700c1b57e6c12.rmeta: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

crates/common/src/lib.rs:
crates/common/src/bitset.rs:
crates/common/src/check.rs:
crates/common/src/obs.rs:
crates/common/src/rng.rs:
crates/common/src/size.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
