/root/repo/target/debug/deps/fig4_idle-53740f569743d6e2.d: crates/bench/src/bin/fig4_idle.rs

/root/repo/target/debug/deps/fig4_idle-53740f569743d6e2: crates/bench/src/bin/fig4_idle.rs

crates/bench/src/bin/fig4_idle.rs:
