/root/repo/target/debug/deps/jafar_sim-5d5fe862f2e0068b.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libjafar_sim-5d5fe862f2e0068b.rmeta: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backend.rs:
crates/sim/src/config.rs:
crates/sim/src/energy.rs:
crates/sim/src/replay.rs:
crates/sim/src/system.rs:
