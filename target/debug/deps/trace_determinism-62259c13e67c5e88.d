/root/repo/target/debug/deps/trace_determinism-62259c13e67c5e88.d: tests/trace_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_determinism-62259c13e67c5e88.rmeta: tests/trace_determinism.rs Cargo.toml

tests/trace_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
