/root/repo/target/debug/deps/columnstore-17ccddd9062aac0a.d: crates/bench/benches/columnstore.rs

/root/repo/target/debug/deps/libcolumnstore-17ccddd9062aac0a.rmeta: crates/bench/benches/columnstore.rs

crates/bench/benches/columnstore.rs:
