/root/repo/target/debug/deps/ablation_faults-fd122e003ea1b728.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/debug/deps/ablation_faults-fd122e003ea1b728: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
