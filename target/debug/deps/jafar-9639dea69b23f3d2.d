/root/repo/target/debug/deps/jafar-9639dea69b23f3d2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjafar-9639dea69b23f3d2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
