/root/repo/target/debug/deps/end_to_end_select-ae602ac34035f782.d: tests/end_to_end_select.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_select-ae602ac34035f782.rmeta: tests/end_to_end_select.rs Cargo.toml

tests/end_to_end_select.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
