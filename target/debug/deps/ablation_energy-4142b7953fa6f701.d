/root/repo/target/debug/deps/ablation_energy-4142b7953fa6f701.d: crates/bench/src/bin/ablation_energy.rs

/root/repo/target/debug/deps/ablation_energy-4142b7953fa6f701: crates/bench/src/bin/ablation_energy.rs

crates/bench/src/bin/ablation_energy.rs:
