/root/repo/target/debug/deps/columnstore-2f926ab919d852eb.d: crates/bench/benches/columnstore.rs Cargo.toml

/root/repo/target/debug/deps/libcolumnstore-2f926ab919d852eb.rmeta: crates/bench/benches/columnstore.rs Cargo.toml

crates/bench/benches/columnstore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
