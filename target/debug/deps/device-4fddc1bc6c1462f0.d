/root/repo/target/debug/deps/device-4fddc1bc6c1462f0.d: crates/bench/benches/device.rs

/root/repo/target/debug/deps/device-4fddc1bc6c1462f0: crates/bench/benches/device.rs

crates/bench/benches/device.rs:
