/root/repo/target/debug/deps/ablation_extensions-ff192542f653da27.d: crates/bench/src/bin/ablation_extensions.rs

/root/repo/target/debug/deps/ablation_extensions-ff192542f653da27: crates/bench/src/bin/ablation_extensions.rs

crates/bench/src/bin/ablation_extensions.rs:
