/root/repo/target/debug/deps/jafar_cpu-c55f12d9d0eab11a.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

/root/repo/target/debug/deps/libjafar_cpu-c55f12d9d0eab11a.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/engine.rs:
crates/cpu/src/kernels.rs:
