/root/repo/target/debug/deps/ablation_extensions-f37d24d07b78910a.d: crates/bench/src/bin/ablation_extensions.rs

/root/repo/target/debug/deps/libablation_extensions-f37d24d07b78910a.rmeta: crates/bench/src/bin/ablation_extensions.rs

crates/bench/src/bin/ablation_extensions.rs:
