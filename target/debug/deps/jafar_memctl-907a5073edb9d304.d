/root/repo/target/debug/deps/jafar_memctl-907a5073edb9d304.d: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

/root/repo/target/debug/deps/jafar_memctl-907a5073edb9d304: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

crates/memctl/src/lib.rs:
crates/memctl/src/channel.rs:
crates/memctl/src/controller.rs:
crates/memctl/src/counters.rs:
crates/memctl/src/request.rs:
crates/memctl/src/sched.rs:
