/root/repo/target/debug/deps/fig3_speedup-9312d5e3b6e2c4a6.d: crates/bench/src/bin/fig3_speedup.rs

/root/repo/target/debug/deps/libfig3_speedup-9312d5e3b6e2c4a6.rmeta: crates/bench/src/bin/fig3_speedup.rs

crates/bench/src/bin/fig3_speedup.rs:
