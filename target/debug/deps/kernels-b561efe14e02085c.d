/root/repo/target/debug/deps/kernels-b561efe14e02085c.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/libkernels-b561efe14e02085c.rmeta: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
