/root/repo/target/debug/deps/kernels-c2a3768c0967c251.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-c2a3768c0967c251.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
