/root/repo/target/debug/deps/device-e6493cd08ae45128.d: crates/bench/benches/device.rs

/root/repo/target/debug/deps/libdevice-e6493cd08ae45128.rmeta: crates/bench/benches/device.rs

crates/bench/benches/device.rs:
