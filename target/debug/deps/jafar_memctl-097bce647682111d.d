/root/repo/target/debug/deps/jafar_memctl-097bce647682111d.d: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

/root/repo/target/debug/deps/libjafar_memctl-097bce647682111d.rmeta: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

crates/memctl/src/lib.rs:
crates/memctl/src/channel.rs:
crates/memctl/src/controller.rs:
crates/memctl/src/counters.rs:
crates/memctl/src/request.rs:
crates/memctl/src/sched.rs:
