/root/repo/target/debug/deps/ablation_predication-c51cc33df48e819e.d: crates/bench/src/bin/ablation_predication.rs

/root/repo/target/debug/deps/libablation_predication-c51cc33df48e819e.rmeta: crates/bench/src/bin/ablation_predication.rs

crates/bench/src/bin/ablation_predication.rs:
