/root/repo/target/debug/deps/jafar-24190f9bb26e7615.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjafar-24190f9bb26e7615.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
