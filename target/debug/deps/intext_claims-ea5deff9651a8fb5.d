/root/repo/target/debug/deps/intext_claims-ea5deff9651a8fb5.d: crates/bench/src/bin/intext_claims.rs

/root/repo/target/debug/deps/libintext_claims-ea5deff9651a8fb5.rmeta: crates/bench/src/bin/intext_claims.rs

crates/bench/src/bin/intext_claims.rs:
