/root/repo/target/debug/deps/dram-736d1db4285337c8.d: crates/bench/benches/dram.rs

/root/repo/target/debug/deps/dram-736d1db4285337c8: crates/bench/benches/dram.rs

crates/bench/benches/dram.rs:
