/root/repo/target/debug/deps/fig3_speedup-3f481d50ab601c60.d: crates/bench/src/bin/fig3_speedup.rs

/root/repo/target/debug/deps/libfig3_speedup-3f481d50ab601c60.rmeta: crates/bench/src/bin/fig3_speedup.rs

crates/bench/src/bin/fig3_speedup.rs:
