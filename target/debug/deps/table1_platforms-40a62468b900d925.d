/root/repo/target/debug/deps/table1_platforms-40a62468b900d925.d: crates/bench/src/bin/table1_platforms.rs

/root/repo/target/debug/deps/table1_platforms-40a62468b900d925: crates/bench/src/bin/table1_platforms.rs

crates/bench/src/bin/table1_platforms.rs:
