/root/repo/target/debug/deps/ablation_energy-9cf4db2d3b492c21.d: crates/bench/src/bin/ablation_energy.rs Cargo.toml

/root/repo/target/debug/deps/libablation_energy-9cf4db2d3b492c21.rmeta: crates/bench/src/bin/ablation_energy.rs Cargo.toml

crates/bench/src/bin/ablation_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
