/root/repo/target/debug/deps/ablation_predication-595f7e74766b1f1f.d: crates/bench/src/bin/ablation_predication.rs

/root/repo/target/debug/deps/ablation_predication-595f7e74766b1f1f: crates/bench/src/bin/ablation_predication.rs

crates/bench/src/bin/ablation_predication.rs:
