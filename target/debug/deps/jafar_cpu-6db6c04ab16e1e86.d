/root/repo/target/debug/deps/jafar_cpu-6db6c04ab16e1e86.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

/root/repo/target/debug/deps/libjafar_cpu-6db6c04ab16e1e86.rlib: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

/root/repo/target/debug/deps/libjafar_cpu-6db6c04ab16e1e86.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/engine.rs:
crates/cpu/src/kernels.rs:
