/root/repo/target/debug/deps/ablation_schedulers-ddc9a7ee449808d6.d: crates/bench/src/bin/ablation_schedulers.rs

/root/repo/target/debug/deps/ablation_schedulers-ddc9a7ee449808d6: crates/bench/src/bin/ablation_schedulers.rs

crates/bench/src/bin/ablation_schedulers.rs:
