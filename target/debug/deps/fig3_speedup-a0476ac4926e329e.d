/root/repo/target/debug/deps/fig3_speedup-a0476ac4926e329e.d: crates/bench/src/bin/fig3_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_speedup-a0476ac4926e329e.rmeta: crates/bench/src/bin/fig3_speedup.rs Cargo.toml

crates/bench/src/bin/fig3_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
