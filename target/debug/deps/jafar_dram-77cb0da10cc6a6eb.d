/root/repo/target/debug/deps/jafar_dram-77cb0da10cc6a6eb.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs

/root/repo/target/debug/deps/jafar_dram-77cb0da10cc6a6eb: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/data.rs:
crates/dram/src/fault.rs:
crates/dram/src/geometry.rs:
crates/dram/src/mode.rs:
crates/dram/src/module.rs:
crates/dram/src/stats.rs:
crates/dram/src/timing.rs:
