/root/repo/target/debug/deps/jafar_cpu-afccafdfffa20e05.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

/root/repo/target/debug/deps/jafar_cpu-afccafdfffa20e05: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/engine.rs:
crates/cpu/src/kernels.rs:
