/root/repo/target/debug/deps/end_to_end_select-620986b2b94e6e5f.d: tests/end_to_end_select.rs

/root/repo/target/debug/deps/end_to_end_select-620986b2b94e6e5f: tests/end_to_end_select.rs

tests/end_to_end_select.rs:
