/root/repo/target/debug/deps/intext_claims-bae2b6dbd2fed84e.d: crates/bench/src/bin/intext_claims.rs

/root/repo/target/debug/deps/intext_claims-bae2b6dbd2fed84e: crates/bench/src/bin/intext_claims.rs

crates/bench/src/bin/intext_claims.rs:
