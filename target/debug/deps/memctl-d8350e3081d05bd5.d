/root/repo/target/debug/deps/memctl-d8350e3081d05bd5.d: crates/bench/benches/memctl.rs

/root/repo/target/debug/deps/memctl-d8350e3081d05bd5: crates/bench/benches/memctl.rs

crates/bench/benches/memctl.rs:
