/root/repo/target/debug/deps/ablation_ownership_windows-a2d2775dcbb2803c.d: crates/bench/src/bin/ablation_ownership_windows.rs

/root/repo/target/debug/deps/libablation_ownership_windows-a2d2775dcbb2803c.rmeta: crates/bench/src/bin/ablation_ownership_windows.rs

crates/bench/src/bin/ablation_ownership_windows.rs:
