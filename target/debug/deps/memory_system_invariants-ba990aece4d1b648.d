/root/repo/target/debug/deps/memory_system_invariants-ba990aece4d1b648.d: tests/memory_system_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_system_invariants-ba990aece4d1b648.rmeta: tests/memory_system_invariants.rs Cargo.toml

tests/memory_system_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
