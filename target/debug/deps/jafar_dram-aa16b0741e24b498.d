/root/repo/target/debug/deps/jafar_dram-aa16b0741e24b498.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libjafar_dram-aa16b0741e24b498.rmeta: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs Cargo.toml

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/data.rs:
crates/dram/src/fault.rs:
crates/dram/src/geometry.rs:
crates/dram/src/mode.rs:
crates/dram/src/module.rs:
crates/dram/src/stats.rs:
crates/dram/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
