/root/repo/target/debug/deps/tpch_pipeline-4450b5092bd9e3a6.d: tests/tpch_pipeline.rs

/root/repo/target/debug/deps/tpch_pipeline-4450b5092bd9e3a6: tests/tpch_pipeline.rs

tests/tpch_pipeline.rs:
