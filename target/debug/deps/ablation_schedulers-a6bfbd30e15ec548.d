/root/repo/target/debug/deps/ablation_schedulers-a6bfbd30e15ec548.d: crates/bench/src/bin/ablation_schedulers.rs

/root/repo/target/debug/deps/libablation_schedulers-a6bfbd30e15ec548.rmeta: crates/bench/src/bin/ablation_schedulers.rs

crates/bench/src/bin/ablation_schedulers.rs:
