/root/repo/target/debug/deps/jafar_cache-2d5c85a5fcccabe1.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/debug/deps/libjafar_cache-2d5c85a5fcccabe1.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
