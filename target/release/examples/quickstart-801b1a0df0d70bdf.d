/root/repo/target/release/examples/quickstart-801b1a0df0d70bdf.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-801b1a0df0d70bdf: examples/quickstart.rs

examples/quickstart.rs:
