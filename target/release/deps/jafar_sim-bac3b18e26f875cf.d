/root/repo/target/release/deps/jafar_sim-bac3b18e26f875cf.d: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libjafar_sim-bac3b18e26f875cf.rlib: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libjafar_sim-bac3b18e26f875cf.rmeta: crates/sim/src/lib.rs crates/sim/src/alloc.rs crates/sim/src/backend.rs crates/sim/src/config.rs crates/sim/src/energy.rs crates/sim/src/replay.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/alloc.rs:
crates/sim/src/backend.rs:
crates/sim/src/config.rs:
crates/sim/src/energy.rs:
crates/sim/src/replay.rs:
crates/sim/src/system.rs:
