/root/repo/target/release/deps/jafar_cpu-b4f247af5d5cf94d.d: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

/root/repo/target/release/deps/libjafar_cpu-b4f247af5d5cf94d.rlib: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

/root/repo/target/release/deps/libjafar_cpu-b4f247af5d5cf94d.rmeta: crates/cpu/src/lib.rs crates/cpu/src/branch.rs crates/cpu/src/engine.rs crates/cpu/src/kernels.rs

crates/cpu/src/lib.rs:
crates/cpu/src/branch.rs:
crates/cpu/src/engine.rs:
crates/cpu/src/kernels.rs:
