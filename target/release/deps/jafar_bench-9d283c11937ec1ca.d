/root/repo/target/release/deps/jafar_bench-9d283c11937ec1ca.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libjafar_bench-9d283c11937ec1ca.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libjafar_bench-9d283c11937ec1ca.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
