/root/repo/target/release/deps/jafar_tpch-86ee1819903e9825.d: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/plans.rs crates/tpch/src/queries/q1.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q22.rs crates/tpch/src/queries/q3.rs crates/tpch/src/queries/q6.rs

/root/repo/target/release/deps/libjafar_tpch-86ee1819903e9825.rlib: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/plans.rs crates/tpch/src/queries/q1.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q22.rs crates/tpch/src/queries/q3.rs crates/tpch/src/queries/q6.rs

/root/repo/target/release/deps/libjafar_tpch-86ee1819903e9825.rmeta: crates/tpch/src/lib.rs crates/tpch/src/gen.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/plans.rs crates/tpch/src/queries/q1.rs crates/tpch/src/queries/q18.rs crates/tpch/src/queries/q22.rs crates/tpch/src/queries/q3.rs crates/tpch/src/queries/q6.rs

crates/tpch/src/lib.rs:
crates/tpch/src/gen.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/plans.rs:
crates/tpch/src/queries/q1.rs:
crates/tpch/src/queries/q18.rs:
crates/tpch/src/queries/q22.rs:
crates/tpch/src/queries/q3.rs:
crates/tpch/src/queries/q6.rs:
