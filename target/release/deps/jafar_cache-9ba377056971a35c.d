/root/repo/target/release/deps/jafar_cache-9ba377056971a35c.d: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libjafar_cache-9ba377056971a35c.rlib: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

/root/repo/target/release/deps/libjafar_cache-9ba377056971a35c.rmeta: crates/cache/src/lib.rs crates/cache/src/cache.rs crates/cache/src/hierarchy.rs crates/cache/src/prefetch.rs crates/cache/src/stats.rs

crates/cache/src/lib.rs:
crates/cache/src/cache.rs:
crates/cache/src/hierarchy.rs:
crates/cache/src/prefetch.rs:
crates/cache/src/stats.rs:
