/root/repo/target/release/deps/jafar_common-a4c28440c86ed9d2.d: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/release/deps/libjafar_common-a4c28440c86ed9d2.rlib: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

/root/repo/target/release/deps/libjafar_common-a4c28440c86ed9d2.rmeta: crates/common/src/lib.rs crates/common/src/bitset.rs crates/common/src/check.rs crates/common/src/obs.rs crates/common/src/rng.rs crates/common/src/size.rs crates/common/src/stats.rs crates/common/src/time.rs

crates/common/src/lib.rs:
crates/common/src/bitset.rs:
crates/common/src/check.rs:
crates/common/src/obs.rs:
crates/common/src/rng.rs:
crates/common/src/size.rs:
crates/common/src/stats.rs:
crates/common/src/time.rs:
