/root/repo/target/release/deps/fig3_speedup-19c59cc8f09e034d.d: crates/bench/src/bin/fig3_speedup.rs

/root/repo/target/release/deps/fig3_speedup-19c59cc8f09e034d: crates/bench/src/bin/fig3_speedup.rs

crates/bench/src/bin/fig3_speedup.rs:
