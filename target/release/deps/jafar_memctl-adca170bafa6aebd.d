/root/repo/target/release/deps/jafar_memctl-adca170bafa6aebd.d: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

/root/repo/target/release/deps/libjafar_memctl-adca170bafa6aebd.rlib: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

/root/repo/target/release/deps/libjafar_memctl-adca170bafa6aebd.rmeta: crates/memctl/src/lib.rs crates/memctl/src/channel.rs crates/memctl/src/controller.rs crates/memctl/src/counters.rs crates/memctl/src/request.rs crates/memctl/src/sched.rs

crates/memctl/src/lib.rs:
crates/memctl/src/channel.rs:
crates/memctl/src/controller.rs:
crates/memctl/src/counters.rs:
crates/memctl/src/request.rs:
crates/memctl/src/sched.rs:
