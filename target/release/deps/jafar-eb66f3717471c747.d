/root/repo/target/release/deps/jafar-eb66f3717471c747.d: src/lib.rs

/root/repo/target/release/deps/libjafar-eb66f3717471c747.rlib: src/lib.rs

/root/repo/target/release/deps/libjafar-eb66f3717471c747.rmeta: src/lib.rs

src/lib.rs:
