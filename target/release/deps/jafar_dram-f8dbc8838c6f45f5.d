/root/repo/target/release/deps/jafar_dram-f8dbc8838c6f45f5.d: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs

/root/repo/target/release/deps/libjafar_dram-f8dbc8838c6f45f5.rlib: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs

/root/repo/target/release/deps/libjafar_dram-f8dbc8838c6f45f5.rmeta: crates/dram/src/lib.rs crates/dram/src/address.rs crates/dram/src/bank.rs crates/dram/src/command.rs crates/dram/src/data.rs crates/dram/src/fault.rs crates/dram/src/geometry.rs crates/dram/src/mode.rs crates/dram/src/module.rs crates/dram/src/stats.rs crates/dram/src/timing.rs

crates/dram/src/lib.rs:
crates/dram/src/address.rs:
crates/dram/src/bank.rs:
crates/dram/src/command.rs:
crates/dram/src/data.rs:
crates/dram/src/fault.rs:
crates/dram/src/geometry.rs:
crates/dram/src/mode.rs:
crates/dram/src/module.rs:
crates/dram/src/stats.rs:
crates/dram/src/timing.rs:
