/root/repo/target/release/deps/jafar_accel-fdfacfe2c17edac4.d: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

/root/repo/target/release/deps/libjafar_accel-fdfacfe2c17edac4.rlib: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

/root/repo/target/release/deps/libjafar_accel-fdfacfe2c17edac4.rmeta: crates/accel/src/lib.rs crates/accel/src/dddg.rs crates/accel/src/ir.rs crates/accel/src/power.rs crates/accel/src/schedule.rs

crates/accel/src/lib.rs:
crates/accel/src/dddg.rs:
crates/accel/src/ir.rs:
crates/accel/src/power.rs:
crates/accel/src/schedule.rs:
