/root/repo/target/release/deps/fig4_idle-4e2d122cdde84c89.d: crates/bench/src/bin/fig4_idle.rs

/root/repo/target/release/deps/fig4_idle-4e2d122cdde84c89: crates/bench/src/bin/fig4_idle.rs

crates/bench/src/bin/fig4_idle.rs:
