/root/repo/target/release/deps/ablation_faults-a0e1c79a85059b83.d: crates/bench/src/bin/ablation_faults.rs

/root/repo/target/release/deps/ablation_faults-a0e1c79a85059b83: crates/bench/src/bin/ablation_faults.rs

crates/bench/src/bin/ablation_faults.rs:
