//! Quickstart: push one select down to JAFAR and compare with the CPU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the Table-1 gem5-like host (1 GHz out-of-order core, 64 kB L1 /
//! 128 kB L2, 2 GB DDR3 with a JAFAR device on the DIMM), loads a column
//! of a million random integers, and runs the same range select twice:
//! once as a CPU scan, once pushed down to the in-memory accelerator.

use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::cpu::ScanVariant;
use jafar::sim::{System, SystemConfig};

fn main() {
    let rows: u64 = 1_000_000;
    println!("== JAFAR quickstart ==");
    println!("platform : {}", SystemConfig::gem5_like().name);
    println!("workload : {rows} rows, uniform in [0, 1_000_000); predicate 250k..=500k\n");

    // Generate and place the column in simulated DRAM (pinned to rank 0,
    // the rank the query manager can grant to the device).
    let mut rng = SplitMix64::new(2026);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999_999))
        .collect();

    let mut system = System::new(SystemConfig::gem5_like());
    let column = system.write_column(&values);

    // CPU-only: the classic branchy scan, streaming the column through
    // the cache hierarchy.
    let cpu = system
        .run_select_cpu(
            column,
            rows,
            250_000,
            500_000,
            ScanVariant::Branching,
            Tick::ZERO,
        )
        .expect("column placed in range");
    println!(
        "CPU scan   : {:>8.3} ms  ({} matches, {} mispredicts)",
        cpu.end.as_ms_f64(),
        cpu.matches,
        cpu.mispredicts
    );

    // JAFAR pushdown: rank-ownership handoff via MR3/MPR, per-page
    // select_jafar() invocations, completion polling, release.
    let jafar = system.run_select_jafar(column, rows, 250_000, 500_000, cpu.end);
    let jafar_time = jafar.end - cpu.end;
    println!(
        "JAFAR      : {:>8.3} ms  ({} matches over {} pages)",
        jafar_time.as_ms_f64(),
        jafar.matched,
        jafar.pages
    );
    println!(
        "  device   : {:>8.3} ms filtering in memory",
        jafar.device.as_ms_f64()
    );
    println!(
        "  ownership: {:>8.3} us MR3/MPR handoff",
        jafar.ownership.as_us_f64()
    );

    assert_eq!(cpu.matches, jafar.matched, "both paths agree");
    let speedup = cpu.end.as_ps() as f64 / jafar_time.as_ps() as f64;
    println!("\nspeedup    : {speedup:.2}x (paper: 5-9x depending on selectivity)");

    // The functional proof: the bitset JAFAR wrote into DRAM decodes to
    // exactly the CPU's position list.
    let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
    system.mc().module().data().read(jafar.out_addr, &mut bytes);
    let bits = jafar::common::bitset::BitSet::from_bytes(&bytes, rows as usize);
    assert_eq!(bits.to_positions(), cpu.positions);
    println!("verified   : JAFAR's in-DRAM bitset == CPU position list");
}
