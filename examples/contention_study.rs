//! The §3.3 contention scenario, interactively: how much room does a busy
//! transactional/analytical host leave for JAFAR?
//!
//! ```sh
//! cargo run --release --example contention_study
//! ```
//!
//! Runs TPC-H Q1 (aggregation-heavy) and Q6 (scan-heavy) through the
//! memory-controller profiler, prints their idle-period pictures, and
//! translates each into the paper's "how many 32-byte blocks can JAFAR
//! process per idle period" budget.
//!
//! Then it turns the question around: instead of squeezing single blocks
//! into the host's idle periods, the serving subsystem leases whole
//! ranks per query shard and multiplexes an overloaded Q6 *stream* over
//! them, comparing scheduling policies on a two-tenant SLO mix.

use jafar::columnstore::{ExecContext, Planner};
use jafar::common::time::Tick;
use jafar::dram::DramGeometry;
use jafar::serve::engine::ServeConfig;
use jafar::serve::workload::q6_shipdate_column;
use jafar::serve::{PredicateMix, SchedPolicy, Workload};
use jafar::sim::{PlacedDb, QueryReplayer, ReplayCosts, System, SystemConfig};
use jafar::tpch::{queries, TpchConfig, TpchDb};

fn main() {
    println!("== Memory-controller idle-period study (the §3.3 scenario) ==\n");
    let db = TpchDb::generate(TpchConfig {
        sf: 0.01,
        seed: 0xC0,
    });
    println!(
        "dataset: {} lineitems, {} orders, {} customers\n",
        db.lineitem.rows(),
        db.orders.rows(),
        db.customer.rows()
    );

    for (name, trace) in [
        ("Q1 (aggregation-heavy)", {
            let mut cx = ExecContext::new(Planner::default());
            queries::q1(&db, &mut cx);
            cx.into_trace()
        }),
        ("Q6 (scan-heavy)", {
            let mut cx = ExecContext::new(Planner::default());
            queries::q6(&db, &mut cx);
            cx.into_trace()
        }),
    ] {
        let mut sys = System::new(SystemConfig::xeon_like());
        let placed = PlacedDb::place(&mut sys, &db);
        sys.begin_measurement();
        let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default().scaled(45.0))
            .with_scan_factor(45.0);
        let end = replayer.replay(&trace, &placed, Tick::ZERO);
        let report = sys.idle_report(end);
        println!("{name}:");
        println!("  runtime              : {:.2} ms", end.as_ms_f64());
        println!(
            "  requests             : {} reads, {} writes",
            report.reads, report.writes
        );
        println!(
            "  mean idle period     : {:.0} bus cycles estimated (exact {:.0})",
            report.mean_idle_period_estimate(),
            report.mean_idle_period_exact()
        );
        let budget = report.jafar_bytes_per_idle_period();
        println!(
            "  JAFAR budget         : {} bytes (~{} of an 8 KiB DRAM row) per idle period",
            budget,
            match budget {
                b if b >= 8192 => "all",
                b if b >= 4096 => "half",
                b if b >= 2048 => "a quarter",
                _ => "a fraction",
            }
        );
        println!(
            "  idle-period p50/p90  : ~{} / ~{} cycles\n",
            report.idle_periods.quantile(0.5),
            report.idle_periods.quantile(0.9)
        );
    }
    println!("takeaway (paper §3.3): without a scheduler JAFAR fits only ~half a DRAM row");
    println!("of work between interruptions — motivating rank-ownership windows.\n");

    println!("== Serving a Q6 stream under overload (beyond the paper) ==\n");
    // The system-level answer to §3.3: rank-ownership windows let a
    // serving layer treat the ranks as a pool. An open-loop Poisson
    // stream of Q6-style shipdate windows arrives faster than the pool
    // can drain, with two interleaved tenants — one latency-critical
    // (tight SLO), one batch (loose SLO) — sharing one admission queue.
    let serving_config = || {
        // The xeon-like profile above has no NDP devices, so the served
        // runs use the gem5-like host over an 8-rank DIMM (7 NDP ranks).
        let mut cfg = SystemConfig::gem5_like();
        cfg.dram_geometry = DramGeometry {
            ranks: 8,
            banks_per_rank: 8,
            rows_per_bank: 1024,
            row_bytes: 8 * 1024,
        };
        cfg
    };
    let shipdates = q6_shipdate_column(&db).to_vec();
    let mix = PredicateMix::tpch_q6();
    for policy in [
        SchedPolicy::Fifo,
        SchedPolicy::Edf,
        SchedPolicy::RankAffinity,
    ] {
        let workload = Workload::poisson(mix, 24, Tick::from_us(1), 0xC0)
            .with_slo_classes(&[Tick::from_ms(2), Tick::from_us(100)]);
        let mut sys = System::new(serving_config());
        let run = sys.serve(&shipdates, &workload, policy, &ServeConfig::default());
        print!("{}", run.report);
    }
    println!();
    println!("takeaway: queue waits under overload approach the tight tenant's SLO, so");
    println!("FIFO spills an SLO-threatened query to the host-scan rung while EDF reorders");
    println!("to keep the stream on-device; past the queue bound admission control sheds.");
    println!("Every completed result, on either rung, is bit-exact.");
}
