//! TPC-H Q6 with select pushdown: the analytics scenario from the paper's
//! introduction — a filter-heavy analytical query on a main-memory
//! column-store, with its leading select pushed down to the DIMM.
//!
//! ```sh
//! cargo run --release --example tpch_pushdown
//! ```
//!
//! Runs Q6 functionally on the column-store twice (CPU planner vs
//! JAFAR-enabled planner), shows the resulting operator traces, and for
//! the leading full-column date scan measures both execution paths in the
//! simulator.

use jafar::columnstore::{ExecContext, Planner, TraceEvent};
use jafar::common::time::Tick;
use jafar::cpu::ScanVariant;
use jafar::sim::{System, SystemConfig};
use jafar::tpch::{queries, TpchConfig, TpchDb};

fn main() {
    println!("== TPC-H Q6 with JAFAR select pushdown ==\n");
    let db = TpchDb::generate(TpchConfig { sf: 0.01, seed: 6 });
    println!(
        "dataset: {} lineitems ({} KiB lineitem table)",
        db.lineitem.rows(),
        db.lineitem.bytes() / 1024
    );

    // Functional execution under both planners; results must agree.
    let mut cpu_cx = ExecContext::new(Planner::default());
    let revenue_cpu = queries::q6(&db, &mut cpu_cx);
    let mut jf_cx = ExecContext::new(Planner::with_jafar());
    let revenue_jf = queries::q6(&db, &mut jf_cx);
    assert_eq!(revenue_cpu, revenue_jf);
    println!(
        "Q6 revenue: {}.{:02}\n",
        revenue_cpu / 100,
        (revenue_cpu % 100).abs()
    );

    println!("operator trace (JAFAR planner):");
    for event in jf_cx.trace().events() {
        match event {
            TraceEvent::Scan {
                column,
                rows,
                matches,
                implementation,
                ..
            } => {
                println!("  scan {column:<16} {rows:>8} rows -> {matches:>7} [{implementation:?}]")
            }
            TraceEvent::ScanAt {
                column,
                positions,
                matches,
                ..
            } => println!("  scan@ {column:<15} {positions:>8} pos  -> {matches:>7} [CPU refine]"),
            TraceEvent::Gather {
                column, positions, ..
            } => {
                println!("  gather {column:<14} {positions:>8} values")
            }
            other => println!("  {other:?}"),
        }
    }

    // Time the leading full-column scan (the pushdown candidate) both ways.
    let shipdate = db
        .lineitem
        .column("l_shipdate")
        .expect("static TPC-H schema");
    let rows = shipdate.len() as u64;
    let (lo, hi) = match jf_cx.trace().events().first() {
        Some(TraceEvent::Scan { bounds, .. }) => *bounds,
        _ => unreachable!("Q6 starts with a scan"),
    };
    let mut system = System::new(SystemConfig::gem5_like());
    let col = system.write_column(shipdate.data());
    let cpu = system
        .run_select_cpu(col, rows, lo, hi, ScanVariant::Branching, Tick::ZERO)
        .expect("column placed in range");
    let jf = system.run_select_jafar(col, rows, lo, hi, cpu.end);
    assert_eq!(cpu.matches, jf.matched);
    println!("\nleading scan (l_shipdate, {rows} rows):");
    println!("  CPU   : {:>8.3} ms", cpu.end.as_ms_f64());
    println!(
        "  JAFAR : {:>8.3} ms  (device {:.3} ms; only the bitset crosses the bus)",
        (jf.end - cpu.end).as_ms_f64(),
        jf.device.as_ms_f64()
    );
}
