//! A tour of the §4 roadmap: every extension accelerator in one program.
//!
//! ```sh
//! cargo run --release --example ndp_roadmap
//! ```
//!
//! Demonstrates, on one owned DRAM rank:
//! 1. filtered aggregation (select + SUM fused in memory);
//! 2. bounded-bucket hash group-by with hierarchical spill;
//! 3. in-memory projection (select on A, project B);
//! 4. multi-predicate row-store filtering;
//! 5. 64-bit-interleaved operation with masked bitset writeback.

use jafar::common::bitset::BitSet;
use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::core::aggregate::{AggOp, AggregateJob, GroupByJob};
use jafar::core::interleave::InterleavedSelectJob;
use jafar::core::project::ProjectJob;
use jafar::core::rowstore::{ColPredicate, RowFilterJob};
use jafar::core::{grant_ownership, release_ownership, JafarDevice, Predicate, SelectJob};
use jafar::dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};

fn main() {
    println!("== The Section-4 NDP roadmap, end to end ==\n");
    let mut module = DramModule::new(
        DramGeometry::gem5_2gb(),
        DramTiming::ddr3_paper(),
        AddressMapping::RankRowBankBlock,
    );
    let mut device = JafarDevice::paper_default();
    let mut rng = SplitMix64::new(4);

    let rows = 200_000u64;
    let sales: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(1, 10_000))
        .collect();
    let region: Vec<i64> = (0..rows).map(|_| rng.next_range_inclusive(0, 7)).collect();
    let sales_addr = PhysAddr(0);
    let region_addr = PhysAddr(16 << 20);
    for (i, v) in sales.iter().enumerate() {
        module
            .data_mut()
            .write_i64(PhysAddr(sales_addr.0 + i as u64 * 8), *v);
    }
    for (i, v) in region.iter().enumerate() {
        module
            .data_mut()
            .write_i64(PhysAddr(region_addr.0 + i as u64 * 8), *v);
    }

    let lease = grant_ownership(&mut module, 0, Tick::ZERO).expect("fresh module");
    let mut t = lease.acquired_at;
    println!("rank 0 granted to the device at {t} (MR3/MPR handoff)\n");

    // 1. Filtered aggregation.
    let agg = device
        .run_aggregate(
            &mut module,
            AggregateJob {
                col_addr: sales_addr,
                rows,
                op: AggOp::Sum,
                filter: Some(Predicate::Ge(5_000)),
            },
            t,
        )
        .expect("owned");
    let want: i64 = sales.iter().filter(|&&v| v >= 5_000).sum();
    assert_eq!(agg.value, Some(want));
    println!(
        "1. filtered SUM(sales | sales >= 5000) = {} over {} rows in {:.3} ms",
        want,
        agg.count,
        (agg.end - t).as_ms_f64()
    );
    t = agg.end;

    // 2. Hash group-by with bounded buckets.
    let gb = device
        .run_group_by(
            &mut module,
            GroupByJob {
                key_addr: region_addr,
                val_addr: sales_addr,
                rows,
                op: AggOp::Sum,
                buckets: 16,
                spill_addr: PhysAddr(32 << 20),
            },
            t,
        )
        .expect("owned");
    let total_in_groups: i64 = gb.groups.iter().map(|(_, s, _)| s).sum();
    println!(
        "2. SUM(sales) GROUP BY region: {} groups in hardware buckets, {} rows spilled,",
        gb.groups.len(),
        gb.spilled_rows
    );
    println!(
        "   bucket mass {} (+ spills merged by the CPU — the hierarchical scheme)",
        total_in_groups
    );
    t = gb.end;

    // 3. Select + in-memory projection.
    let bitset_addr = PhysAddr(48 << 20);
    let proj_addr = PhysAddr(64 << 20);
    let sel = device
        .run_select(
            &mut module,
            SelectJob {
                col_addr: region_addr,
                rows,
                predicate: Predicate::Eq(3),
                out_addr: bitset_addr,
            },
            t,
        )
        .expect("owned");
    let proj = device
        .run_project(
            &mut module,
            ProjectJob {
                col_addr: sales_addr,
                rows,
                bitset_addr,
                out_addr: proj_addr,
            },
            sel.end,
        )
        .expect("owned");
    assert_eq!(proj.emitted, sel.matched);
    println!(
        "3. select(region == 3) + project(sales): {} tuples reconstructed in memory",
        proj.emitted
    );
    t = proj.end;

    // 4. Row-store filtering (rows of 4 attributes).
    let row_base = PhysAddr(96 << 20);
    for i in 0..50_000u64 {
        for c in 0..4u64 {
            module.data_mut().write_i64(
                PhysAddr(row_base.0 + (i * 4 + c) * 8),
                rng.next_range_inclusive(0, 99),
            );
        }
    }
    let rf = device
        .run_row_filter(
            &mut module,
            &RowFilterJob {
                base: row_base,
                row_bytes: 32,
                rows: 50_000,
                predicates: vec![
                    ColPredicate {
                        offset: 0,
                        predicate: Predicate::Lt(50),
                    },
                    ColPredicate {
                        offset: 24,
                        predicate: Predicate::Ge(50),
                    },
                ],
                out_addr: PhysAddr(128 << 20),
            },
            t,
        )
        .expect("owned");
    println!(
        "4. row-store 2-predicate filter: {} of 50000 rows pass ({} bursts streamed — {}x a column)",
        rf.matched,
        rf.bursts_read,
        rf.bursts_read / (50_000 / 8)
    );
    t = rf.end;

    // 5. Interleaved mode with masked writeback (2 logical DIMMs).
    let inter_out = PhysAddr(160 << 20);
    let evens: Vec<i64> = sales.iter().copied().step_by(2).collect();
    let odds: Vec<i64> = sales.iter().copied().skip(1).step_by(2).collect();
    let even_addr = PhysAddr(192 << 20);
    let odd_addr = PhysAddr(224 << 20);
    for (i, v) in evens.iter().enumerate() {
        module
            .data_mut()
            .write_i64(PhysAddr(even_addr.0 + i as u64 * 8), *v);
    }
    for (i, v) in odds.iter().enumerate() {
        module
            .data_mut()
            .write_i64(PhysAddr(odd_addr.0 + i as u64 * 8), *v);
    }
    let r0 = device
        .run_select_interleaved(
            &mut module,
            InterleavedSelectJob {
                local_col_addr: even_addr,
                local_rows: evens.len() as u64,
                predicate: Predicate::Lt(2_000),
                out_addr: inter_out,
                ways: 2,
                phase: 0,
            },
            t,
        )
        .expect("owned");
    let r1 = device
        .run_select_interleaved(
            &mut module,
            InterleavedSelectJob {
                local_col_addr: odd_addr,
                local_rows: odds.len() as u64,
                predicate: Predicate::Lt(2_000),
                out_addr: inter_out,
                ways: 2,
                phase: 1,
            },
            r0.end,
        )
        .expect("owned");
    let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
    module.data().read(inter_out, &mut bytes);
    let got = BitSet::from_bytes(&bytes, rows as usize).count_ones() as u64;
    assert_eq!(got, r0.matched + r1.matched);
    println!(
        "5. interleaved select over 2 DIMM phases: {} matches merged via masked RMW writeback",
        got
    );

    let released = release_ownership(&mut module, lease, r1.end).expect("release");
    println!("\nrank 0 released to the host at {released}");
}
