//! Property tests over the memory system as a whole: DRAM functional
//! correctness through every access path, timing monotonicity, and
//! conservation laws the simulator must never violate.

use jafar::common::check::forall;
use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr, Requester};
use jafar::memctl::controller::{ControllerConfig, MemoryController};
use jafar::memctl::{MemRequest, Policy};

fn module() -> DramModule {
    DramModule::new(
        DramGeometry::tiny(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    )
}

/// Whatever interleaving of reads and writes the controller schedules,
/// read completions must return the bytes most recently written to
/// each address (writes here go through the functional store).
#[test]
fn reads_return_latest_functional_data() {
    forall("reads_return_latest_functional_data", 24, |rng| {
        let n_ops = 1 + rng.next_below(63);
        let mut mc = MemoryController::new(module(), ControllerConfig::default());
        let mut shadow: std::collections::HashMap<u64, u64> = Default::default();
        let mut arrival = Tick::ZERO;
        let mut queued: Vec<(u64, jafar::memctl::ReqId)> = Vec::new();
        for _ in 0..n_ops {
            let slot = rng.next_below(4096);
            let is_write = rng.next_bool(0.5);
            let addr = slot * 64;
            arrival += Tick::from_ns(10);
            if is_write {
                // Functional write-through + timing-only writeback.
                let value = slot * 31 + 7;
                mc.module_mut().data_mut().write_u64(PhysAddr(addr), value);
                shadow.insert(addr, value);
                let _ = mc.enqueue(MemRequest::writeback(PhysAddr(addr), arrival));
            } else if let Ok(id) = mc.enqueue(MemRequest::read(PhysAddr(addr), arrival)) {
                queued.push((addr, id));
            }
            if mc.pending() > 24 {
                check_and_drain(&mut mc, &mut queued, &shadow);
            }
        }
        check_and_drain(&mut mc, &mut queued, &shadow);
    });
}

/// Completion times respect arrival order causality: no transaction
/// completes before it arrives plus the minimum device latency.
#[test]
fn completions_respect_causality() {
    forall("completions_respect_causality", 24, |rng| {
        let n_slots = 1 + rng.next_below(47);
        let slots: Vec<u64> = (0..n_slots).map(|_| rng.next_below(2048)).collect();
        let mut mc = MemoryController::new(
            module(),
            ControllerConfig {
                policy: Policy::FrFcfs { cap: 8 },
                ..ControllerConfig::default()
            },
        );
        let t = *mc.module().timing();
        let min_latency = t.cl + t.t_burst;
        let mut arrival = Tick::ZERO;
        let mut arrivals = std::collections::HashMap::new();
        for (i, slot) in slots.iter().enumerate() {
            arrival += Tick::from_ns((i as u64 % 7) + 1);
            if let Ok(id) = mc.enqueue(MemRequest::read(PhysAddr(slot * 64), arrival)) {
                arrivals.insert(id, arrival);
            }
            if mc.pending() >= 24 {
                for c in mc.drain() {
                    assert!(c.done >= arrivals[&c.id] + min_latency);
                }
            }
        }
        for c in mc.drain() {
            assert!(c.done >= arrivals[&c.id] + min_latency);
        }
    });
}

/// Counter conservation: completed reads + writes equals enqueued
/// requests (none lost, none duplicated) when no rank is owned.
#[test]
fn no_request_lost() {
    forall("no_request_lost", 24, |rng| {
        let n_slots = 1 + rng.next_below(95);
        let mut mc = MemoryController::new(module(), ControllerConfig::default());
        let mut accepted = 0u64;
        let mut arrival = Tick::ZERO;
        for _ in 0..n_slots {
            let slot = rng.next_below(512);
            arrival += Tick::from_ns(2);
            let req = if slot % 3 == 0 {
                MemRequest::writeback(PhysAddr(slot * 64), arrival)
            } else {
                MemRequest::read(PhysAddr(slot * 64), arrival)
            };
            if mc.enqueue(req).is_ok() {
                accepted += 1;
            } else {
                mc.drain();
                if mc.enqueue(req).is_ok() {
                    accepted += 1;
                }
            }
        }
        mc.drain();
        let served = mc.counters().reads.get() + mc.counters().writes.get();
        assert_eq!(served, accepted);
        assert_eq!(mc.pending(), 0);
    });
}

/// The shared data bus carries one burst at a time: the completion
/// (burst-end) ticks of any two transactions must be at least one
/// burst duration apart, whatever the mix of reads and writes and
/// however the scheduler reorders them.
#[test]
fn data_bus_never_double_booked() {
    forall("data_bus_never_double_booked", 24, |rng| {
        let n_ops = 2 + rng.next_below(78);
        let mut mc = MemoryController::new(
            module(),
            ControllerConfig {
                policy: Policy::FrFcfs { cap: 8 },
                ..ControllerConfig::default()
            },
        );
        let t_burst = mc.module().timing().t_burst;
        let mut ends: Vec<Tick> = Vec::new();
        let mut arrival = Tick::ZERO;
        for _ in 0..n_ops {
            let slot = rng.next_below(1024);
            let is_write = rng.next_bool(0.5);
            arrival += Tick::from_ns(1);
            let req = if is_write {
                MemRequest::writeback(PhysAddr(slot * 64), arrival)
            } else {
                MemRequest::read(PhysAddr(slot * 64), arrival)
            };
            if mc.enqueue(req).is_err() {
                ends.extend(mc.drain().into_iter().map(|c| c.done));
                mc.enqueue(req).expect("drained");
            }
        }
        ends.extend(mc.drain().into_iter().map(|c| c.done));
        ends.sort_unstable();
        for pair in ends.windows(2) {
            assert!(
                pair[1] - pair[0] >= t_burst,
                "bursts overlap: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
    });
}

#[test]
fn dram_row_hit_rate_reflects_access_pattern() {
    // Deterministic check that the locality statistics behave: streaming
    // has a near-perfect hit rate, random same-bank accesses a poor one.
    let mut streaming = module();
    let mut now = Tick::ZERO;
    for i in 0..256u64 {
        let a = streaming
            .serve_addr(PhysAddr(i * 64), false, Requester::Host, now, None)
            .expect("in range");
        now = a.data_ready;
    }
    let stream_rate = streaming.stats().row_hit_rate().expect("accesses happened");
    assert!(stream_rate > 0.9, "stream_rate={stream_rate}");

    let mut random = module();
    let mut rng = SplitMix64::new(5);
    let mut now = Tick::ZERO;
    for _ in 0..256 {
        // Same bank (low block bits fixed), random rows.
        let row = rng.next_below(64) as u32;
        let coord = jafar::dram::Coord {
            rank: 0,
            bank: 0,
            row,
            block: 0,
        };
        let a = random
            .serve_block(coord, false, Requester::Host, now, None)
            .expect("in range");
        now = a.data_ready;
    }
    let random_rate = random.stats().row_hit_rate().expect("accesses happened");
    assert!(random_rate < 0.2, "random_rate={random_rate}");
    assert!(stream_rate > random_rate);
}

fn check_and_drain(
    mc: &mut MemoryController,
    queued: &mut Vec<(u64, jafar::memctl::ReqId)>,
    shadow: &std::collections::HashMap<u64, u64>,
) {
    let completions = mc.drain();
    for c in completions {
        if let Some(pos) = queued.iter().position(|(_, id)| *id == c.id) {
            let (addr, _) = queued.remove(pos);
            let data = c.data.expect("read returns data");
            let got = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
            let want = shadow.get(&addr).copied().unwrap_or(0);
            assert_eq!(got, want, "addr {addr}");
        }
    }
}
