//! The chaos harness: seeded random fault schedules — transient fault
//! soups plus persistent rank outages — thrown at seeded random served
//! workloads, with the engine's availability invariants checked on every
//! run. CI runs this file by name as its own job; `jafar_common::check`
//! prints the failing case seed on any violation so it can be replayed.
//!
//! The invariants, per run:
//! - every submitted query either completes or is explicitly shed at
//!   admission — never lost, never double-completed;
//! - every *completed* query's result (selection vector, scalar
//!   aggregate, packed projection) is byte-identical to the fault-free
//!   functional reference, whatever rung or rank path served it;
//! - availability accounting stays sane (per-rank downtime never exceeds
//!   the run's makespan);
//! - the whole run — report, Chrome trace, timeline, metrics — replays
//!   byte-for-byte from the same seed;
//! - a quarantined rank whose outage ends is repaired by a canary and
//!   returns to service.

use jafar::common::check::forall;
use jafar::common::time::Tick;
use jafar::dram::{DramGeometry, FaultPlan};
use jafar::serve::engine::ServeConfig;
use jafar::serve::{
    AggFn, Arrivals, ExecMode, PredicateMix, QueryOp, QuerySpec, SchedPolicy, ServeReport, Workload,
};
use jafar::sim::{System, SystemConfig};

/// The §4 operator set the chaotic streams cycle through.
const OP_MIX: [QueryOp; 6] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::Project { k: 2 },
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::SelectAgg(AggFn::Max),
];

/// NDP ranks in the chaos rig (`multi_rank_system(4)` reserves the last
/// DRAM rank for the host) — outages are drawn over exactly these.
const NDP_RANKS: u32 = 3;

fn multi_rank_system(ranks: u32) -> System {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks,
        banks_per_rank: 4,
        rows_per_bank: 64,
        row_bytes: 1024,
    };
    System::new(cfg)
}

fn reference_positions(vals: &[i64], lo: i64, hi: i64) -> Vec<u32> {
    vals.iter()
        .enumerate()
        .filter(|&(_, &v)| (lo..=hi).contains(&v))
        .map(|(i, _)| i as u32)
        .collect()
}

fn reference_agg(f: AggFn, matching: &[i64]) -> Option<i64> {
    match f {
        AggFn::Sum => matching.iter().copied().reduce(|a, b| a.wrapping_add(b)),
        AggFn::Min => matching.iter().copied().min(),
        AggFn::Max => matching.iter().copied().max(),
    }
}

/// Everything one chaotic serve needs, derived once from the case RNG so
/// a run can be replayed bit-for-bit.
#[derive(Clone)]
struct ChaosCase {
    values: Vec<i64>,
    workload: Workload,
    policy: SchedPolicy,
    plan: FaultPlan,
}

fn chaos_case(rng: &mut jafar::common::rng::SplitMix64, case: usize) -> ChaosCase {
    let rows = rng.next_range_inclusive(600, 2200) as usize;
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    let n = rng.next_range_inclusive(2, 8) as usize;
    let mix = PredicateMix::UniformRange {
        min: 0,
        max: 999,
        width: rng.next_range_inclusive(50, 600),
    };
    let wseed = rng.next_u64();
    let mut workload = if rng.next_bool(0.5) {
        let gap = Tick::from_ns(rng.next_range_inclusive(100, 8000) as u64);
        Workload::poisson(mix, n, gap, wseed)
    } else {
        let clients = rng.next_range_inclusive(1, 4) as u32;
        let think = Tick::from_ns(rng.next_range_inclusive(0, 2000) as u64);
        Workload::closed(mix, n, clients, think, wseed)
    };
    if rng.next_bool(0.3) {
        workload = workload.with_slo(Tick::from_us(rng.next_range_inclusive(20, 800) as u64));
    }
    let start = rng.next_range_inclusive(0, OP_MIX.len() as i64 - 1) as usize;
    let len = rng.next_range_inclusive(1, OP_MIX.len() as i64) as usize;
    let ops: Vec<QueryOp> = (0..len)
        .map(|i| OP_MIX[(start + i) % OP_MIX.len()])
        .collect();
    workload = workload.with_op_mix(&ops);

    let fseed = rng.next_u64();
    let mut plan = match rng.next_below(3) {
        0 => FaultPlan::none(fseed),
        1 => FaultPlan::light(fseed),
        _ => FaultPlan::chaos(fseed),
    };
    for _ in 0..rng.next_below(3) {
        let rank = rng.next_below(NDP_RANKS as u64) as u32;
        let from = Tick::from_ns(rng.next_below(50_000));
        let until = if rng.next_bool(0.3) {
            Tick::MAX
        } else {
            from + Tick::from_us(rng.next_range_inclusive(20, 200) as u64)
        };
        plan = plan.with_outage(rank, from, until);
    }

    let policies = [
        SchedPolicy::Fifo,
        SchedPolicy::Edf,
        SchedPolicy::RankAffinity,
    ];
    ChaosCase {
        values,
        workload,
        policy: policies[case % policies.len()],
        plan,
    }
}

/// One full chaotic serve with tracing: the report plus the rendered
/// trace surfaces (Chrome JSON, timeline, metrics).
fn run_case(case: &ChaosCase) -> (ServeReport, String, String, String) {
    let mut sys = multi_rank_system(4);
    sys.enable_tracing(1 << 16);
    sys.inject_faults(case.plan);
    let run = sys.serve(
        &case.values,
        &case.workload,
        case.policy,
        &ServeConfig::default(),
    );
    (
        run.report,
        sys.chrome_trace().expect("tracing enabled"),
        sys.trace_timeline().expect("tracing enabled"),
        sys.metrics().to_string(),
    )
}

/// Checks every per-run invariant of one chaotic serve.
fn check_invariants(case: &ChaosCase, report: &ServeReport, timeline: &str) {
    let n = case.workload.len();
    assert_eq!(
        report.completed() + report.shed(),
        n,
        "every query completes or is explicitly shed"
    );
    for rec in &report.records {
        if rec.done.is_none() {
            assert_eq!(rec.mode, ExecMode::Shed, "query {} lost", rec.id);
            continue;
        }
        let matching: Vec<i64> = case
            .values
            .iter()
            .copied()
            .filter(|v| (rec.lo..=rec.hi).contains(v))
            .collect();
        assert_eq!(
            rec.matched as usize,
            matching.len(),
            "query {} match count",
            rec.id
        );
        match rec.op {
            QueryOp::Select | QueryOp::Project { .. } => {
                let got = jafar::common::bitset::BitSet::from_bytes(&rec.bitset, case.values.len())
                    .to_positions();
                assert_eq!(
                    got,
                    reference_positions(&case.values, rec.lo, rec.hi),
                    "query {} selection vector",
                    rec.id
                );
                if matches!(rec.op, QueryOp::Project { .. }) {
                    assert_eq!(rec.projected, matching, "query {} projection", rec.id);
                }
            }
            QueryOp::SelectCount => {
                assert_eq!(
                    rec.agg,
                    Some(matching.len() as i64),
                    "query {} count",
                    rec.id
                );
            }
            QueryOp::SelectAgg(f) => {
                assert_eq!(
                    rec.agg,
                    reference_agg(f, &matching),
                    "query {} scalar",
                    rec.id
                );
            }
            QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
                unreachable!("this case mix does not generate joins or group-bys")
            }
        }
        // Exactly one completion in the trace — never double-completed.
        let done_lines = timeline
            .lines()
            .filter(|l| l.contains("query-done") && l.contains(&format!("query={} ", rec.id)))
            .count();
        assert_eq!(done_lines, 1, "query {} completion count in trace", rec.id);
    }
    for r in &report.availability.units {
        assert!(
            r.downtime <= report.makespan,
            "rank {} downtime {} exceeds makespan {}",
            r.rank,
            r.downtime,
            report.makespan
        );
    }
}

#[test]
fn chaotic_serves_preserve_results_or_shed_explicitly() {
    let mut case_no = 0usize;
    forall("chaos-serve-invariants", 10, |rng| {
        let case = chaos_case(rng, case_no);
        case_no += 1;
        let (report, _, timeline, _) = run_case(&case);
        check_invariants(&case, &report, &timeline);
    });
}

#[test]
fn chaotic_serves_replay_byte_identically() {
    let mut case_no = 0usize;
    forall("chaos-serve-replay", 4, |rng| {
        let case = chaos_case(rng, case_no);
        case_no += 1;
        let (report_a, json_a, timeline_a, metrics_a) = run_case(&case);
        let (report_b, json_b, timeline_b, metrics_b) = run_case(&case);
        assert_eq!(report_a, report_b, "ServeReports must be identical");
        assert_eq!(json_a, json_b, "Chrome trace JSON must be byte-identical");
        assert_eq!(timeline_a, timeline_b, "timeline must be byte-identical");
        assert_eq!(metrics_a, metrics_b, "metrics report must be identical");
    });
}

#[test]
fn repairing_outage_heals_through_the_canary_lifecycle() {
    // A deterministic end-to-end pass through the whole lifecycle: rank 1
    // goes dark at t=0 and repairs at 100us; the engine must park and
    // migrate its shard, quarantine the rank, repair it with a canary
    // once the outage ends, and serve a later query with the full
    // machine again.
    let mut sys = multi_rank_system(4);
    sys.enable_tracing(1 << 16);
    sys.inject_faults(FaultPlan::none(17).with_outage(1, Tick::ZERO, Tick::from_us(100)));
    let values: Vec<i64> = (0..3072).map(|i| (i * 41 + 5) % 1000).collect();
    let q = |lo: i64, hi: i64| QuerySpec {
        lo,
        hi,
        op: QueryOp::Select,
        slo: None,
    };
    let workload = Workload {
        specs: vec![q(0, 499), q(250, 749)],
        arrivals: Arrivals::Open(vec![Tick::ZERO, Tick::from_us(600)]),
        slo: None,
    };
    let run = sys.serve(
        &values,
        &workload,
        SchedPolicy::Fifo,
        &ServeConfig::default(),
    );
    assert_eq!(run.report.completed(), 2);
    for rec in &run.report.records {
        let got =
            jafar::common::bitset::BitSet::from_bytes(&rec.bitset, values.len()).to_positions();
        assert_eq!(got, reference_positions(&values, rec.lo, rec.hi));
    }
    let a = &run.report.availability;
    assert_eq!(a.units[1].quarantines, 1, "the dark rank was quarantined");
    assert_eq!(a.units[1].canary_ok, 1, "a canary repaired it");
    assert!(a.requeues >= 1 && a.migrations >= 1);
    assert!(
        matches!(run.report.records[1].mode, ExecMode::Device { ranks: 3 }),
        "the repaired rank serves the later query (mode {:?})",
        run.report.records[1].mode
    );
    let timeline = sys.trace_timeline().expect("tracing enabled");
    for needle in [
        "rank-health",
        "state=suspect",
        "state=quarantined",
        "state=probing",
        "state=healthy",
        "query-requeued",
        "shard-migrated",
        "canary-probe",
    ] {
        assert!(timeline.contains(needle), "timeline missing {needle}");
    }
}
