//! The golden determinism contract of the observability layer: two runs
//! of the same seeded workload must export *byte-identical* Chrome trace
//! JSON and timelines. CI runs this test by name; any nondeterminism in
//! event ordering, timestamp formatting, or exporter rendering fails it.

use jafar::common::time::Tick;
use jafar::core::ResilienceConfig;
use jafar::cpu::ScanVariant;
use jafar::dram::FaultPlan;
use jafar::sim::{System, SystemConfig};

fn traced_run(seed: u64) -> (String, String, String) {
    let mut cfg = SystemConfig::test_small();
    cfg.query_overhead = Tick::from_ns(500);
    cfg.page_bytes = 4096;
    let mut sys = System::new(cfg);
    sys.enable_tracing(1 << 15);
    let values: Vec<i64> = (0..8192).map(|i| (i * 37 + seed as i64) % 1000).collect();
    let col = sys.write_column(&values);
    let cpu = sys
        .run_select_cpu(col, 8192, 100, 399, ScanVariant::Branching, Tick::ZERO)
        .expect("column placed in range");
    sys.inject_faults(FaultPlan::light(seed));
    sys.run_select_jafar_resilient(col, 8192, 100, 399, cpu.end, ResilienceConfig::default());
    (
        sys.chrome_trace().expect("tracing enabled"),
        sys.trace_timeline().expect("tracing enabled"),
        sys.metrics().to_string(),
    )
}

#[test]
fn same_seed_runs_export_identical_traces() {
    let (json_a, timeline_a, metrics_a) = traced_run(17);
    let (json_b, timeline_b, metrics_b) = traced_run(17);
    assert_eq!(json_a, json_b, "Chrome trace JSON must be byte-identical");
    assert_eq!(timeline_a, timeline_b, "timeline must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "metrics report must be identical");
    // Sanity: the trace is non-trivial and covers multiple tracks.
    assert!(json_a.len() > 1000);
    assert!(json_a.contains("\"cat\":\"dram\""));
    assert!(json_a.contains("\"cat\":\"accel\""));
}

#[test]
fn different_seeds_export_different_traces() {
    // The exporter is a pure function of the events; different fault
    // seeds perturb the run and must show up in the bytes.
    let (json_a, _, _) = traced_run(17);
    let (json_b, _, _) = traced_run(18);
    assert_ne!(json_a, json_b);
}
