//! Integration tests of the §2.2 rank-ownership protocol across the
//! controller, the module and the device: host traffic is blocked while a
//! rank is owned, held requests drain after release, and the whole system
//! stays consistent through repeated handoffs.

use jafar::common::time::Tick;
use jafar::core::{grant_ownership, release_ownership, JafarDevice, Predicate, SelectJob};
use jafar::dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};
use jafar::memctl::controller::{ControllerConfig, MemoryController, OwnershipError};
use jafar::memctl::MemRequest;

fn controller() -> MemoryController {
    MemoryController::new(
        DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        ),
        ControllerConfig::default(),
    )
}

#[test]
fn host_requests_held_during_device_run_then_drain() {
    let mut mc = controller();
    // Place data on rank 0.
    for i in 0..512u64 {
        mc.module_mut()
            .data_mut()
            .write_i64(PhysAddr(i * 8), i as i64);
    }
    let owned_at = mc
        .set_rank_ownership(0, true, Tick::ZERO)
        .expect("quiesced");

    // The host queues requests for the owned rank: they must be held.
    mc.enqueue(MemRequest::read(PhysAddr(0), owned_at))
        .expect("capacity");
    mc.enqueue(MemRequest::read(PhysAddr(64), owned_at))
        .expect("capacity");
    assert!(mc.drain().is_empty(), "owned-rank requests must be held");
    assert_eq!(mc.pending(), 2);

    // The device runs its select meanwhile.
    let mut device = JafarDevice::paper_default();
    let run = device
        .run_select(
            mc.module_mut(),
            SelectJob {
                col_addr: PhysAddr(0),
                rows: 512,
                predicate: Predicate::Lt(100),
                out_addr: PhysAddr(8192),
            },
            owned_at,
        )
        .expect("owned");
    assert_eq!(run.matched, 100);

    // Release through the device-side path; the controller cannot release
    // while its queue still holds rank-0 requests (it never acquired this
    // lease), so release via the module and resume.
    let lease = jafar::core::Lease {
        rank: 0,
        acquired_at: owned_at,
        expires_at: Tick::MAX,
    };
    let released = release_ownership(mc.module_mut(), lease, run.end).expect("release");
    mc.advance_cursor(released);
    let completions = mc.drain();
    assert_eq!(completions.len(), 2, "held requests drain after release");
    for c in &completions {
        assert!(c.done > released);
    }
}

#[test]
fn controller_refuses_release_with_pending_requests() {
    let mut mc = controller();
    let t = mc
        .set_rank_ownership(0, true, Tick::ZERO)
        .expect("quiesced");
    mc.enqueue(MemRequest::read(PhysAddr(0), t))
        .expect("capacity");
    assert_eq!(
        mc.set_rank_ownership(0, false, t),
        Err(OwnershipError::PendingRequests)
    );
}

#[test]
fn repeated_handoffs_remain_consistent() {
    let mut module = DramModule::new(
        DramGeometry::tiny(),
        DramTiming::ddr3_paper(), // refresh on: handoffs must coexist with it
        AddressMapping::RankRowBankBlock,
    );
    for i in 0..256u64 {
        module.data_mut().write_i64(PhysAddr(i * 8), i as i64);
    }
    let mut device = JafarDevice::paper_default();
    let mut t = Tick::ZERO;
    for round in 0..5 {
        let lease = grant_ownership(&mut module, 0, t).expect("grant");
        let start = lease.acquired_at;
        let run = device
            .run_select(
                &mut module,
                SelectJob {
                    col_addr: PhysAddr(0),
                    rows: 256,
                    predicate: Predicate::Ge(128),
                    out_addr: PhysAddr(8192),
                },
                start,
            )
            .expect("owned");
        assert_eq!(run.matched, 128, "round {round}");
        t = release_ownership(&mut module, lease, run.end).expect("release");
        assert!(!module.rank_owned_by_ndp(0));
        // Host access works between grants.
        let a = module
            .serve_addr(PhysAddr(0), false, jafar::dram::Requester::Host, t, None)
            .expect("host resumes");
        // Idle gap between rounds, long enough to cross refresh deadlines
        // (tREFI = 7.8 µs) — the grant path must run the overdue refreshes.
        t = a.data_ready + Tick::from_us(10);
    }
    assert!(module.stats().refreshes.get() > 0, "refresh kept running");
}

#[test]
fn device_rejected_without_grant_and_after_release() {
    let mut module = DramModule::new(
        DramGeometry::tiny(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    );
    let mut device = JafarDevice::paper_default();
    let job = SelectJob {
        col_addr: PhysAddr(0),
        rows: 64,
        predicate: Predicate::Lt(5),
        out_addr: PhysAddr(4096),
    };
    assert!(device.run_select(&mut module, job, Tick::ZERO).is_err());
    let lease = grant_ownership(&mut module, 0, Tick::ZERO).expect("grant");
    let start = lease.acquired_at;
    assert!(device.run_select(&mut module, job, start).is_ok());
    let t = release_ownership(&mut module, lease, Tick::from_us(10)).expect("release");
    assert!(device.run_select(&mut module, job, t).is_err());
}
