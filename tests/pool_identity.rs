//! The pool-identity contract: widening the schedulable pool from one
//! DIMM's rank vector to `C` memory channels changes *where* shards run
//! and *when* queries finish — never *what* they return. Every channel
//! of a [`jafar::sim::ServeCluster`] carries the same channel-local
//! column layout, so a `C`-channel serve produces per-query results
//! byte-identical to the single-channel machine, for C ∈ {1, 2, 4},
//! and a rank-scoped fault stays confined to the single pool unit it
//! names. `crates/sim/src/cluster.rs` cites this file as the assertion
//! of that guarantee.

use jafar::common::check::forall;
use jafar::common::obs::SharedTracer;
use jafar::common::time::Tick;
use jafar::dram::{DramGeometry, FaultPlan};
use jafar::serve::engine::ServeConfig;
use jafar::serve::{AggFn, FilterPool, PredicateMix, QueryOp, QueryRecord, SchedPolicy, Workload};
use jafar::sim::{ServeCluster, SystemConfig};

/// The §4 operator set a mixed stream cycles through.
const OP_MIX: [QueryOp; 6] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::Project { k: 2 },
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::SelectAgg(AggFn::Max),
];

/// A platform with three NDP ranks per channel, so even the
/// single-channel pool is wide enough to exercise shard fan-out.
fn cluster_config() -> SystemConfig {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks: 4,
        banks_per_rank: 4,
        rows_per_bank: 64,
        row_bytes: 1024,
    };
    cfg
}

fn cluster(channels: usize) -> ServeCluster {
    ServeCluster::new(cluster_config(), channels, SharedTracer::disabled())
        .expect("power-of-two channel count")
}

/// Expected selection bytes (LSB-first within each byte) — the ground
/// truth every pool width must match.
fn reference_bytes(vals: &[i64], lo: i64, hi: i64) -> Vec<u8> {
    let mut bytes = vec![0u8; vals.len().div_ceil(8)];
    for (i, &v) in vals.iter().enumerate() {
        if (lo..=hi).contains(&v) {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// Asserts the functional payload of two runs of the same workload is
/// identical query-by-query: predicate, selection bytes, match count,
/// aggregate scalar and packed projection. Timing fields are *expected*
/// to differ across pool widths and are deliberately not compared.
fn assert_results_identical(wide: &[QueryRecord], narrow: &[QueryRecord], label: &str) {
    assert_eq!(wide.len(), narrow.len(), "{label}: record count");
    for (w, n) in wide.iter().zip(narrow) {
        assert_eq!(w.id, n.id, "{label}: query id");
        assert_eq!(
            (w.lo, w.hi, w.op),
            (n.lo, n.hi, n.op),
            "{label}: query {}",
            w.id
        );
        assert_eq!(
            w.bitset, n.bitset,
            "{label}: query {} selection bytes",
            w.id
        );
        assert_eq!(w.matched, n.matched, "{label}: query {} match count", w.id);
        assert_eq!(w.agg, n.agg, "{label}: query {} aggregate scalar", w.id);
        assert_eq!(
            w.projected, n.projected,
            "{label}: query {} projection",
            w.id
        );
    }
}

#[test]
fn channel_widths_1_2_4_serve_byte_identical_results() {
    let policies = [
        SchedPolicy::Fifo,
        SchedPolicy::Edf,
        SchedPolicy::RankAffinity,
    ];
    let mut case = 0usize;
    forall("pool-identity", 8, |rng| {
        let rows = rng.next_range_inclusive(600, 2500) as usize;
        let values: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let n = rng.next_range_inclusive(2, 8) as usize;
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: rng.next_range_inclusive(0, 600),
        };
        let wseed = rng.next_u64();
        let mut workload = if rng.next_bool(0.5) {
            let gap = Tick::from_ns(rng.next_range_inclusive(100, 4000) as u64);
            Workload::poisson(mix, n, gap, wseed)
        } else {
            let clients = rng.next_range_inclusive(1, 3) as u32;
            let think = Tick::from_ns(rng.next_range_inclusive(0, 2000) as u64);
            Workload::closed(mix, n, clients, think, wseed)
        };
        if rng.next_bool(0.6) {
            let start = rng.next_range_inclusive(0, OP_MIX.len() as i64 - 1) as usize;
            let len = rng.next_range_inclusive(1, OP_MIX.len() as i64) as usize;
            let ops: Vec<QueryOp> = (0..len)
                .map(|i| OP_MIX[(start + i) % OP_MIX.len()])
                .collect();
            workload = workload.with_op_mix(&ops);
        }
        let policy = policies[case % policies.len()];
        case += 1;

        // Fusion and batched admission are pure scheduling accelerants:
        // whatever window the engine fuses under and however it drains
        // arrivals, the served bytes must stay identical across widths.
        let cfg = ServeConfig {
            fuse_window: rng.next_range_inclusive(1, 4) as usize,
            batch_admission: rng.next_bool(0.5),
            ..ServeConfig::default()
        };
        let reference = cluster(1).serve(&values, &workload, policy, &cfg);
        assert_eq!(
            reference.report.completed(),
            n,
            "no SLO, no faults: every query completes"
        );
        for rec in &reference.report.records {
            if matches!(rec.op, QueryOp::Select | QueryOp::Project { .. }) {
                assert_eq!(
                    rec.bitset,
                    reference_bytes(&values, rec.lo, rec.hi),
                    "query {} vs functional ground truth",
                    rec.id
                );
            }
        }
        for channels in [2usize, 4] {
            let run = cluster(channels).serve(&values, &workload, policy, &cfg);
            assert_eq!(run.report.completed(), n);
            assert_results_identical(
                &run.report.records,
                &reference.report.records,
                &format!("C={channels} vs C=1, policy {}", policy.name()),
            );
            // The report's availability roster matches the widened pool.
            let units = run.report.availability.units.len();
            assert_eq!(units, channels * 3, "C={channels}: 3 NDP ranks per channel");
        }
    });
}

/// A rank-scoped permanent outage on one channel is confined to exactly
/// one pool unit — the cluster quarantines `{channel 1, rank 0}` and
/// nothing else — and the served results remain byte-identical to a
/// fault-free single-channel run of the same workload.
#[test]
fn rank_scoped_fault_is_confined_to_one_unit_and_preserves_identity() {
    let values: Vec<i64> = (0..2048).map(|i| (i * 61 + 13) % 1000).collect();
    let mix = PredicateMix::UniformRange {
        min: 0,
        max: 999,
        width: 250,
    };
    let workload = Workload::poisson(mix, 6, Tick::from_us(2), 97).with_op_mix(&OP_MIX);
    let cfg = ServeConfig::default();

    let reference = cluster(1).serve(&values, &workload, SchedPolicy::RankAffinity, &cfg);
    assert_eq!(reference.report.completed(), 6);

    let mut sick = cluster(2);
    let sick_unit = sick.pool().id_of(1, 0, 0).expect("in-shape unit");
    sick.inject_faults_on_channel(1, FaultPlan::none(5).with_outage(0, Tick::ZERO, Tick::MAX));
    let run = sick.serve(&values, &workload, SchedPolicy::RankAffinity, &cfg);

    assert_eq!(run.report.completed(), 6, "the pool absorbs the outage");
    assert_results_identical(
        &run.report.records,
        &reference.report.records,
        "faulted C=2 vs healthy C=1",
    );
    let avail = &run.report.availability;
    assert_eq!(avail.units.len(), sick.pool().units());
    assert!(
        avail.units[sick_unit].quarantines >= 1,
        "the dark unit was quarantined"
    );
    for (u, rec) in avail.units.iter().enumerate() {
        if u != sick_unit {
            assert_eq!(rec.quarantines, 0, "unit {u} untouched by the outage");
        }
    }
    // The injector evidence lives on channel 1 alone.
    assert!(run.faults[1].as_ref().is_some_and(|f| f.total() > 0));
    assert!(run.faults[0].is_none());
}
