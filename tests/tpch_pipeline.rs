//! Integration of the TPC-H pipeline: generation → column-store execution
//! → operator trace → simulator replay → memory-controller profiling. The
//! Figure-4 mechanism must hold end to end.

use jafar::columnstore::{ExecContext, Planner};
use jafar::common::time::Tick;
use jafar::sim::{PlacedDb, QueryReplayer, ReplayCosts, System, SystemConfig};
use jafar::tpch::queries::QueryId;
use jafar::tpch::{queries, TpchConfig, TpchDb};

fn db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        sf: 0.0001,
        seed: 19,
    })
}

#[test]
fn all_queries_execute_and_replay_with_idle_reports() {
    let db = db();
    for q in QueryId::ALL {
        let mut cx = ExecContext::new(Planner::default());
        match q {
            QueryId::Q1 => {
                assert!(!queries::q1(&db, &mut cx).is_empty());
            }
            QueryId::Q3 => {
                queries::q3(&db, &mut cx, 10);
            }
            QueryId::Q6 => {
                queries::q6(&db, &mut cx);
            }
            QueryId::Q18 => {
                queries::q18(&db, &mut cx, 50, 100);
            }
            QueryId::Q22 => {
                queries::q22(&db, &mut cx);
            }
        }
        let mut sys = System::new(SystemConfig::test_small());
        let placed = PlacedDb::place(&mut sys, &db);
        sys.begin_measurement();
        let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default());
        let end = replayer.replay(cx.trace(), &placed, Tick::ZERO);
        let report = sys.idle_report(end);
        assert!(report.reads > 0, "{q:?}: no memory traffic?");
        assert!(
            report.mean_idle_period_estimate() >= 0.0,
            "{q:?}: estimator broken"
        );
        // The paper's lower-bound property must hold for every query.
        assert!(
            report.mc_empty_estimate() <= report.exact_idle_cycles,
            "{q:?}: estimate {} > exact {}",
            report.mc_empty_estimate(),
            report.exact_idle_cycles
        );
    }
}

#[test]
fn load_factor_scales_idle_periods_up() {
    let db = db();
    let mut cx = ExecContext::new(Planner::default());
    queries::q6(&db, &mut cx);
    let run = |factor: f64| {
        let mut sys = System::new(SystemConfig::test_small());
        let placed = PlacedDb::place(&mut sys, &db);
        sys.begin_measurement();
        let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default().scaled(factor))
            .with_scan_factor(factor);
        let end = replayer.replay(cx.trace(), &placed, Tick::ZERO);
        sys.idle_report(end).mean_idle_period_estimate()
    };
    let low = run(1.0);
    let high = run(8.0);
    assert!(high > low * 2.0, "low={low} high={high}");
}

#[test]
fn pushdown_planner_marks_q6_scan_only() {
    let db = TpchDb::generate(TpchConfig { sf: 0.001, seed: 2 });
    let planner = Planner {
        min_rows_for_pushdown: 64,
        ..Planner::with_jafar()
    };
    // Q6: exactly one pushdown-eligible scan (the leading date filter).
    let mut cx = ExecContext::new(planner);
    queries::q6(&db, &mut cx);
    assert_eq!(cx.trace().jafar_scans(), 1);
    // Q1's scan is eligible too.
    let mut cx = ExecContext::new(planner);
    queries::q1(&db, &mut cx);
    assert_eq!(cx.trace().jafar_scans(), 1);
    // Q18 has no full-column scan at all (join/aggregate only).
    let mut cx = ExecContext::new(planner);
    queries::q18(&db, &mut cx, 50, 100);
    assert_eq!(cx.trace().jafar_scans(), 0);
}

#[test]
fn query_results_stable_across_trace_recording() {
    // Recording a trace must not perturb results: two executions with
    // different planners agree.
    let db = db();
    let mut a = ExecContext::new(Planner::default());
    let mut b = ExecContext::new(Planner::with_jafar());
    assert_eq!(queries::q6(&db, &mut a), queries::q6(&db, &mut b));
    assert_eq!(queries::q1(&db, &mut a), queries::q1(&db, &mut b));
    assert_eq!(queries::q22(&db, &mut a), queries::q22(&db, &mut b));
}
