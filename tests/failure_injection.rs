//! Failure injection: the system must degrade loudly and recover cleanly
//! when the §2.2 protocol is violated mid-flight.

use jafar::common::bitset::BitSet;
use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::core::api::{errno, select_jafar, SelectArgs};
use jafar::core::{
    grant_ownership, release_ownership, JafarDevice, Predicate, ResilienceConfig, ResilientDriver,
    SelectJob, SelectRequest,
};
use jafar::dram::{
    AddressMapping, DramGeometry, DramModule, DramTiming, FaultInjector, FaultPlan, PhysAddr,
};

fn module_with_column(rows: u64, seed: u64) -> (DramModule, Vec<i64>) {
    let mut m = DramModule::new(
        DramGeometry::tiny(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    );
    let mut rng = SplitMix64::new(seed);
    let values: Vec<i64> = (0..rows)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect();
    for (i, v) in values.iter().enumerate() {
        m.data_mut().write_i64(PhysAddr(i as u64 * 8), *v);
    }
    (m, values)
}

#[test]
fn ownership_revoked_between_pages_fails_loudly_then_recovers() {
    let (mut m, values) = module_with_column(2048, 1);
    let mut device = JafarDevice::paper_default();
    let out = PhysAddr(64 * 1024);

    // Page 1 succeeds under a valid grant.
    let lease = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    let t = lease.acquired_at;
    let page1 = select_jafar(
        &mut device,
        &mut m,
        SelectArgs {
            col_data: PhysAddr(0),
            range_low: 0,
            range_high: 499,
            out_buf: out,
            num_input_rows: 1024,
        },
        t,
    );
    assert_eq!(page1.errno, errno::OK);

    // The query manager revokes ownership before page 2 (a scheduling bug
    // or a pre-emption): the device call must fail with EACCES and latch
    // STATUS.ERROR, not silently read a rank it no longer owns.
    let t = release_ownership(&mut m, lease, page1.run.expect("ok").end).expect("release");
    let page2 = select_jafar(
        &mut device,
        &mut m,
        SelectArgs {
            col_data: PhysAddr(1024 * 8),
            range_low: 0,
            range_high: 499,
            out_buf: PhysAddr(out.0 + 128),
            num_input_rows: 1024,
        },
        t,
    );
    assert_eq!(page2.errno, errno::EACCES);
    assert!(device.regs().errored());

    // Recovery: re-grant and finish the column; totals match the software
    // reference.
    let lease = grant_ownership(&mut m, 0, t).expect("re-grant");
    let retry = select_jafar(
        &mut device,
        &mut m,
        SelectArgs {
            col_data: PhysAddr(1024 * 8),
            range_low: 0,
            range_high: 499,
            out_buf: PhysAddr(out.0 + 128),
            num_input_rows: 1024,
        },
        lease.acquired_at,
    );
    assert_eq!(retry.errno, errno::OK);
    let expect = values.iter().filter(|&&v| (0..=499).contains(&v)).count() as u64;
    assert_eq!(page1.num_output_rows + retry.num_output_rows, expect);
    let _ = release_ownership(&mut m, lease, retry.run.expect("ok").end);
}

#[test]
fn pre_garbaged_output_region_is_fully_overwritten() {
    let (mut m, values) = module_with_column(1024, 2);
    let out = PhysAddr(64 * 1024);
    // Poison the output region.
    m.data_mut().write(out, &[0xFFu8; 1024 / 8]);
    let lease = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    let mut device = JafarDevice::paper_default();
    let run = device
        .run_select(
            &mut m,
            SelectJob {
                col_addr: PhysAddr(0),
                rows: 1024,
                predicate: Predicate::Lt(100),
                out_addr: out,
            },
            lease.acquired_at,
        )
        .expect("owned");
    let mut bytes = vec![0u8; 1024 / 8];
    m.data().read(out, &mut bytes);
    let got = jafar::common::bitset::BitSet::from_bytes(&bytes, 1024);
    let expect: Vec<u32> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v < 100)
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(got.to_positions(), expect, "stale bits must not survive");
    assert_eq!(run.matched as usize, expect.len());
    let _ = release_ownership(&mut m, lease, run.end);
}

#[test]
fn double_grant_is_idempotent_and_release_restores_host() {
    let (mut m, _) = module_with_column(64, 3);
    let lease1 = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    // A second grant of an already-owned rank (manager retry after a
    // timeout) is harmless: MR3's MPR bit is already set.
    let lease2 = grant_ownership(&mut m, 0, lease1.acquired_at).expect("re-grant");
    assert!(m.rank_owned_by_ndp(0));
    // One release clears the bit (the MPR flag is level, not a count).
    let t = release_ownership(&mut m, lease2, Tick::from_us(1)).expect("release");
    assert!(!m.rank_owned_by_ndp(0));
    // Host traffic works; the stale first lease's release is a no-op
    // state-wise (sets the already-clear bit).
    let _ = release_ownership(&mut m, lease1, t).expect("stale release");
    assert!(!m.rank_owned_by_ndp(0));
    assert!(m
        .serve_addr(
            PhysAddr(0),
            false,
            jafar::dram::Requester::Host,
            Tick::from_us(2),
            None
        )
        .is_ok());
}

fn reference(values: &[i64], lo: i64, hi: i64) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| lo <= v && v <= hi)
        .map(|(i, _)| i as u32)
        .collect()
}

fn bitset_at(m: &DramModule, addr: PhysAddr, rows: u64) -> Vec<u32> {
    let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
    m.data().read(addr, &mut bytes);
    BitSet::from_bytes(&bytes, rows as usize).to_positions()
}

const OUT: PhysAddr = PhysAddr(64 * 1024);

/// The headline acceptance scenario: a completion that sticks mid-column
/// (every read burst stalls from page 5 on) *and* a lease window far
/// shorter than the query. The resilient driver must finish anyway —
/// renewing the lease between early pages, tripping the watchdog on the
/// stuck ones, burning its retries, and scanning the remainder on the CPU
/// — and the bitset must equal the software reference bit for bit.
#[test]
fn resilient_driver_survives_stuck_completion_and_expiring_lease() {
    let (mut m, values) = module_with_column(4096, 21);
    // Default pages are 4 KB = 512 rows = 64 device bursts; the column is
    // 8 pages. Bursts 300+ (mid page 5) stall forever.
    m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
        stall_burst_range: Some((300, u64::MAX)),
        ..FaultPlan::none(0)
    })));
    let mut device = JafarDevice::paper_default();
    let mut driver = ResilientDriver::new(ResilienceConfig {
        // ~2 µs of ownership per grant; a page takes ~1 µs plus setup, so
        // the lease must be renewed as the run progresses.
        lease_window: Tick::from_us(2),
        renew_margin: Tick::from_us(1),
        ..ResilienceConfig::default()
    });
    let run = driver.run_select(
        &mut device,
        &mut m,
        SelectRequest {
            col_addr: PhysAddr(0),
            rows: 4096,
            lo: 100,
            hi: 599,
            out_addr: OUT,
        },
        Tick::ZERO,
    );

    let expect = reference(&values, 100, 599);
    assert_eq!(run.matched as usize, expect.len());
    assert_eq!(
        bitset_at(&m, OUT, 4096),
        expect,
        "bitset == software reference"
    );
    let s = driver.stats();
    assert!(
        s.watchdog_fires.get() >= 1,
        "stuck completion fires the watchdog"
    );
    assert!(s.lease_renewals.get() >= 1, "short window forces renewal");
    assert!(s.pages_cpu.get() >= 1, "stuck pages finish on the CPU");
    assert!(s.retries.get() >= 1);
    assert_eq!(s.pages_jafar.get() + s.pages_cpu.get(), run.pages);
    assert_eq!(run.pages, 8);
    assert!(!m.rank_owned_by_ndp(0), "rank handed back to the host");
}

/// Property sweep: the Fig. 3 select under ~20 seeded fault plans. The
/// result bitset must equal the software reference under every plan, and
/// whenever a driver-visible fault fired (stall, drop, glitch,
/// uncorrectable read) the recovery counters must be nonzero — failures
/// are survived loudly, never silently.
#[test]
fn randomized_fault_plans_never_corrupt_the_result() {
    let mut plans: Vec<FaultPlan> = Vec::new();
    for seed in 0..10u64 {
        plans.push(FaultPlan::light(seed));
        plans.push(FaultPlan::chaos(seed));
    }
    let mut any_faults = 0u64;
    let mut any_recovery = 0u64;
    for (i, plan) in plans.into_iter().enumerate() {
        let (mut m, values) = module_with_column(2048, 99);
        m.set_fault_injector(Some(FaultInjector::new(plan)));
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        let run = driver.run_select(
            &mut device,
            &mut m,
            SelectRequest {
                col_addr: PhysAddr(0),
                rows: 2048,
                lo: 250,
                hi: 749,
                out_addr: OUT,
            },
            Tick::ZERO,
        );
        let expect = reference(&values, 250, 749);
        assert_eq!(
            bitset_at(&m, OUT, 2048),
            expect,
            "plan {i}: bitset diverged from the reference"
        );
        assert_eq!(run.matched as usize, expect.len(), "plan {i}");
        let f = m.fault_stats().expect("injector installed");
        let visible =
            f.stalls.get() + f.drops.get() + f.mrs_glitches.get() + f.ecc_uncorrectable.get();
        let recovered = driver.stats().recovery_total();
        if visible > 0 {
            assert!(
                recovered > 0,
                "plan {i}: {visible} driver-visible faults but no recovery recorded"
            );
        }
        any_faults += f.total();
        any_recovery += recovered;
    }
    assert!(any_faults > 0, "the sweep must actually inject faults");
    assert!(
        any_recovery > 0,
        "the sweep must actually exercise recovery"
    );
}

/// An installed-but-empty plan is indistinguishable from no injector at
/// all: same end tick, same bitset, and every fault and recovery counter
/// at zero.
#[test]
fn empty_fault_plan_changes_nothing() {
    let run_once = |inject: bool| {
        let (mut m, values) = module_with_column(2048, 7);
        if inject {
            m.set_fault_injector(Some(FaultInjector::new(FaultPlan::none(5))));
        }
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        let run = driver.run_select(
            &mut device,
            &mut m,
            SelectRequest {
                col_addr: PhysAddr(0),
                rows: 2048,
                lo: 0,
                hi: 499,
                out_addr: OUT,
            },
            Tick::ZERO,
        );
        assert_eq!(driver.stats().recovery_total(), 0, "no recovery events");
        if inject {
            assert_eq!(m.fault_stats().expect("installed").total(), 0);
        }
        (run.end, run.matched, bitset_at(&m, OUT, 2048), values)
    };
    let (end_a, matched_a, bits_a, values) = run_once(false);
    let (end_b, matched_b, bits_b, _) = run_once(true);
    assert_eq!(end_a, end_b, "empty plan must not perturb timing");
    assert_eq!(matched_a, matched_b);
    assert_eq!(bits_a, bits_b);
    assert_eq!(bits_a, reference(&values, 0, 499));
}

#[test]
fn device_error_does_not_wedge_subsequent_jobs() {
    let (mut m, _) = module_with_column(512, 4);
    let lease = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    let t = lease.acquired_at;
    let mut device = JafarDevice::paper_default();
    // Misaligned job → error latched.
    let bad = device.run_select(
        &mut m,
        SelectJob {
            col_addr: PhysAddr(4),
            rows: 8,
            predicate: Predicate::Lt(10),
            out_addr: PhysAddr(32 * 1024),
        },
        t,
    );
    assert!(bad.is_err());
    assert!(device.regs().errored());
    // A subsequent well-formed job clears the error and runs.
    let good = device
        .run_select(
            &mut m,
            SelectJob {
                col_addr: PhysAddr(0),
                rows: 512,
                predicate: Predicate::Lt(500),
                out_addr: PhysAddr(32 * 1024),
            },
            t,
        )
        .expect("well-formed job proceeds");
    assert!(good.matched > 0);
    assert!(device.regs().done() && !device.regs().errored());
    let _ = release_ownership(&mut m, lease, good.end);
}
