//! Failure injection: the system must degrade loudly and recover cleanly
//! when the §2.2 protocol is violated mid-flight.

use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::core::api::{errno, select_jafar, SelectArgs};
use jafar::core::{grant_ownership, release_ownership, JafarDevice, Predicate, SelectJob};
use jafar::dram::{AddressMapping, DramGeometry, DramModule, DramTiming, PhysAddr};

fn module_with_column(rows: u64, seed: u64) -> (DramModule, Vec<i64>) {
    let mut m = DramModule::new(
        DramGeometry::tiny(),
        DramTiming::ddr3_paper().without_refresh(),
        AddressMapping::RankRowBankBlock,
    );
    let mut rng = SplitMix64::new(seed);
    let values: Vec<i64> = (0..rows).map(|_| rng.next_range_inclusive(0, 999)).collect();
    for (i, v) in values.iter().enumerate() {
        m.data_mut().write_i64(PhysAddr(i as u64 * 8), *v);
    }
    (m, values)
}

#[test]
fn ownership_revoked_between_pages_fails_loudly_then_recovers() {
    let (mut m, values) = module_with_column(2048, 1);
    let mut device = JafarDevice::paper_default();
    let out = PhysAddr(64 * 1024);

    // Page 1 succeeds under a valid grant.
    let lease = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    let t = lease.acquired_at;
    let page1 = select_jafar(
        &mut device,
        &mut m,
        SelectArgs {
            col_data: PhysAddr(0),
            range_low: 0,
            range_high: 499,
            out_buf: out,
            num_input_rows: 1024,
        },
        t,
    );
    assert_eq!(page1.errno, errno::OK);

    // The query manager revokes ownership before page 2 (a scheduling bug
    // or a pre-emption): the device call must fail with EACCES and latch
    // STATUS.ERROR, not silently read a rank it no longer owns.
    let t = release_ownership(&mut m, lease, page1.run.expect("ok").end).expect("release");
    let page2 = select_jafar(
        &mut device,
        &mut m,
        SelectArgs {
            col_data: PhysAddr(1024 * 8),
            range_low: 0,
            range_high: 499,
            out_buf: PhysAddr(out.0 + 128),
            num_input_rows: 1024,
        },
        t,
    );
    assert_eq!(page2.errno, errno::EACCES);
    assert!(device.regs().errored());

    // Recovery: re-grant and finish the column; totals match the software
    // reference.
    let lease = grant_ownership(&mut m, 0, t).expect("re-grant");
    let retry = select_jafar(
        &mut device,
        &mut m,
        SelectArgs {
            col_data: PhysAddr(1024 * 8),
            range_low: 0,
            range_high: 499,
            out_buf: PhysAddr(out.0 + 128),
            num_input_rows: 1024,
        },
        lease.acquired_at,
    );
    assert_eq!(retry.errno, errno::OK);
    let expect = values.iter().filter(|&&v| (0..=499).contains(&v)).count() as u64;
    assert_eq!(page1.num_output_rows + retry.num_output_rows, expect);
    let _ = release_ownership(&mut m, lease, retry.run.expect("ok").end);
}

#[test]
fn pre_garbaged_output_region_is_fully_overwritten() {
    let (mut m, values) = module_with_column(1024, 2);
    let out = PhysAddr(64 * 1024);
    // Poison the output region.
    m.data_mut().write(out, &vec![0xFFu8; 1024 / 8]);
    let lease = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    let mut device = JafarDevice::paper_default();
    let run = device
        .run_select(
            &mut m,
            SelectJob {
                col_addr: PhysAddr(0),
                rows: 1024,
                predicate: Predicate::Lt(100),
                out_addr: out,
            },
            lease.acquired_at,
        )
        .expect("owned");
    let mut bytes = vec![0u8; 1024 / 8];
    m.data().read(out, &mut bytes);
    let got = jafar::common::bitset::BitSet::from_bytes(&bytes, 1024);
    let expect: Vec<u32> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v < 100)
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(got.to_positions(), expect, "stale bits must not survive");
    assert_eq!(run.matched as usize, expect.len());
    let _ = release_ownership(&mut m, lease, run.end);
}

#[test]
fn double_grant_is_idempotent_and_release_restores_host() {
    let (mut m, _) = module_with_column(64, 3);
    let lease1 = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    // A second grant of an already-owned rank (manager retry after a
    // timeout) is harmless: MR3's MPR bit is already set.
    let lease2 = grant_ownership(&mut m, 0, lease1.acquired_at).expect("re-grant");
    assert!(m.rank_owned_by_ndp(0));
    // One release clears the bit (the MPR flag is level, not a count).
    let t = release_ownership(&mut m, lease2, Tick::from_us(1)).expect("release");
    assert!(!m.rank_owned_by_ndp(0));
    // Host traffic works; the stale first lease's release is a no-op
    // state-wise (sets the already-clear bit).
    let _ = release_ownership(&mut m, lease1, t).expect("stale release");
    assert!(!m.rank_owned_by_ndp(0));
    assert!(m
        .serve_addr(PhysAddr(0), false, jafar::dram::Requester::Host, Tick::from_us(2), None)
        .is_ok());
}

#[test]
fn device_error_does_not_wedge_subsequent_jobs() {
    let (mut m, _) = module_with_column(512, 4);
    let lease = grant_ownership(&mut m, 0, Tick::ZERO).expect("grant");
    let t = lease.acquired_at;
    let mut device = JafarDevice::paper_default();
    // Misaligned job → error latched.
    let bad = device.run_select(
        &mut m,
        SelectJob {
            col_addr: PhysAddr(4),
            rows: 8,
            predicate: Predicate::Lt(10),
            out_addr: PhysAddr(32 * 1024),
        },
        t,
    );
    assert!(bad.is_err());
    assert!(device.regs().errored());
    // A subsequent well-formed job clears the error and runs.
    let good = device
        .run_select(
            &mut m,
            SelectJob {
                col_addr: PhysAddr(0),
                rows: 512,
                predicate: Predicate::Lt(500),
                out_addr: PhysAddr(32 * 1024),
            },
            t,
        )
        .expect("well-formed job proceeds");
    assert!(good.matched > 0);
    assert!(device.regs().done() && !device.regs().errored());
    let _ = release_ownership(&mut m, lease, good.end);
}
