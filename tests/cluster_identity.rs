//! The disaggregated tier's identity contract: whatever the node count,
//! replication factor, routing policy or node-local scheduling policy,
//! every query served by a cluster returns the *same bytes* it would
//! have returned on a single-node grid — and a node-scoped outage stays
//! confined to exactly one node's ledgers. CI runs this file by name
//! through the tier-1 `cargo test` lane.

use jafar::common::check::forall;
use jafar::common::obs::SharedTracer;
use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::dram::FaultPlan;
use jafar::net::Placement;
use jafar::serve::cluster::{cluster_fabric, ClusterConfig, ClusterQuery, RoutePolicy};
use jafar::serve::{AggFn, PredicateMix, QueryOp, SchedPolicy, ServeConfig, Workload};
use jafar::sim::{GridServeRun, ServeGrid, SystemConfig};

const ROWS: usize = 4096;
const OP_MIX: [QueryOp; 5] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::Project { k: 2 },
];

fn values(seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..ROWS)
        .map(|_| rng.next_range_inclusive(0, 999))
        .collect()
}

fn workload(queries: usize, seed: u64, with_slo: bool) -> Workload {
    let mix = PredicateMix::UniformRange {
        min: 0,
        max: 999,
        width: 250,
    };
    let w = Workload::poisson(mix, queries, Tick::from_us(2), seed).with_op_mix(&OP_MIX);
    if with_slo {
        w.with_slo_classes(&[Tick::from_ms(2), Tick::from_us(800)])
    } else {
        w
    }
}

fn serve(
    nodes: usize,
    placement: &Placement,
    route: RoutePolicy,
    policy: SchedPolicy,
    wl: &Workload,
    dark_node: Option<usize>,
) -> GridServeRun {
    let mut grid = ServeGrid::new(SystemConfig::test_small(), nodes, SharedTracer::disabled());
    if let Some(node) = dark_node {
        let mut plan = FaultPlan::none(11);
        for unit in 0..grid.units_per_node() as u32 {
            plan = plan.with_outage(unit, Tick::ZERO, Tick::MAX);
        }
        grid.inject_faults_on_node(node, plan);
    }
    let mut fabric = grid.fabric(0xF00D);
    grid.serve(
        &values(0xC01),
        placement,
        &mut fabric,
        wl,
        policy,
        &ServeConfig {
            max_queue: wl.len(),
            ..ServeConfig::default()
        },
        &ClusterConfig {
            route,
            ..ClusterConfig::default()
        },
    )
}

/// Result payloads only — node-side timestamps legitimately shift when
/// the same stream splits across more nodes.
fn same_results(a: &[ClusterQuery], b: &[ClusterQuery]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            let (rx, ry) = (&x.record, &y.record);
            rx.id == ry.id
                && rx.op == ry.op
                && rx.matched == ry.matched
                && rx.bitset == ry.bitset
                && rx.agg == ry.agg
                && rx.projected == ry.projected
        })
}

#[test]
fn cluster_results_match_the_solo_run_for_all_shapes() {
    forall(
        "cluster == solo across nodes x rf x route x policy",
        10,
        |rng| {
            let nodes = 2 + (rng.next_u64() % 2) as usize; // 2 or 3
            let rf = 1 + (rng.next_u64() % nodes as u64) as usize;
            let route = match rng.next_u64() % 3 {
                0 => RoutePolicy::RoundRobin,
                1 => RoutePolicy::LeastOutstanding,
                _ => RoutePolicy::ReplicaLocal,
            };
            let policy = if rng.next_u64() % 2 == 0 {
                SchedPolicy::Fifo
            } else {
                SchedPolicy::Edf
            };
            let wl = workload(8, rng.next_u64(), rng.next_u64() % 2 == 0);

            let solo = serve(
                1,
                &Placement::hot(1),
                RoutePolicy::ReplicaLocal,
                SchedPolicy::Fifo,
                &wl,
                None,
            );
            let cluster = serve(nodes, &Placement::cold(nodes, rf), route, policy, &wl, None);
            assert_eq!(solo.report.completed(), wl.len(), "solo completes all");
            assert_eq!(
                cluster.report.completed(),
                wl.len(),
                "{nodes} nodes / rf {rf} / {route:?} / {policy:?}: all complete"
            );
            assert!(
                same_results(&cluster.report.queries, &solo.report.queries),
                "{nodes} nodes / rf {rf} / {route:?} / {policy:?}: results diverged from solo"
            );
        },
    );
}

#[test]
fn node_outage_is_confined_to_exactly_one_node() {
    let wl = workload(9, 0x0DD, false);
    let run = serve(
        3,
        &Placement::hot(3),
        RoutePolicy::RoundRobin,
        SchedPolicy::Fifo,
        &wl,
        Some(2),
    );
    assert_eq!(
        run.report.completed(),
        wl.len(),
        "a dark node still answers"
    );
    let solo = serve(
        1,
        &Placement::hot(1),
        RoutePolicy::ReplicaLocal,
        SchedPolicy::Fifo,
        &wl,
        None,
    );
    assert!(
        same_results(&run.report.queries, &solo.report.queries),
        "outage run's results diverged from solo"
    );
    for node in 0..3usize {
        let summary = &run.report.nodes[node];
        if node == 2 {
            assert!(
                summary.availability.disturbed(),
                "the dark node's ledger records its quarantine"
            );
            assert!(
                run.faults[2].as_ref().is_some_and(|f| f.total() > 0),
                "the dark node's injector rejected commands"
            );
        } else {
            assert!(
                !summary.availability.disturbed(),
                "node {node} never sees node 2's outage"
            );
            assert!(run.faults[node].is_none(), "node {node} has no injector");
        }
    }
}

/// The satellite regression for `SplitMix64::split`: fabric jitter
/// streams are derived per link *label*, so growing the grid adds links
/// without perturbing the streams of the links that were already there —
/// node 0 (and the page-store) behave identically on a 1-node and a
/// 4-node fabric.
#[test]
fn adding_nodes_never_perturbs_existing_link_streams() {
    let mut small = cluster_fabric(1, 0x5EED);
    let mut large = cluster_fabric(4, 0x5EED);
    let sizes = [64u64, 4096, 256, 1 << 20, 8, 131072, 24, 777];
    for &bytes in &sizes {
        assert_eq!(
            small.delay(0, bytes),
            large.delay(0, bytes),
            "node-0 link stream must not depend on the node count"
        );
        // The page-store link sits at index `nodes` — 1 vs 4 — but its
        // stream is keyed by its label, not its position.
        assert_eq!(
            small.delay(1, bytes),
            large.delay(4, bytes),
            "page-store stream must not depend on the node count"
        );
    }
}
