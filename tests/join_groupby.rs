//! The served-join / keyed-group-by identity contract: a workload
//! mixing [`QueryOp::SemiJoin`] and keyed [`QueryOp::GroupBy`] queries
//! into the PR-5 operator set returns, for every query, bytes identical
//! to the host `columnstore` reference (`ops::join::semi_join`,
//! `ops::agg::hash_group_by`) — whatever the scheduling policy, fusion
//! window, skew-split setting, key distribution (uniform or
//! Zipf-skewed) or pool shape (1/2/4 memory channels), and with a
//! rank-scoped outage confined to the single unit it names. CI runs
//! this file by name through the tier-1 `cargo test` lane.

use jafar::columnstore::ops::agg::{hash_group_by, AggKind, AggSpec};
use jafar::columnstore::ops::join::semi_join;
use jafar::common::check::forall;
use jafar::common::obs::SharedTracer;
use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::dram::{DramGeometry, FaultPlan};
use jafar::serve::engine::ServeConfig;
use jafar::serve::{
    uniform_keys, zipf_keys, AggFn, Arrivals, KeyRanges, PredicateMix, QueryOp, QueryRecord,
    QuerySpec, SchedPolicy, Workload,
};
use jafar::sim::{ServeCluster, SystemConfig};

/// The PR-5 operator set the join/group-by queries ride alongside.
const LEGACY_OPS: [QueryOp; 5] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::Project { k: 2 },
];

const AGGS: [AggFn; 3] = [AggFn::Sum, AggFn::Min, AggFn::Max];

fn cluster(channels: usize, ranks: u32) -> ServeCluster {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks,
        banks_per_rank: 4,
        rows_per_bank: 64,
        row_bytes: 1024,
    };
    ServeCluster::new(cfg, channels, SharedTracer::disabled()).expect("power-of-two channels")
}

/// What the host column store says each query must return.
enum Expected {
    /// A semi-join against this build-side key multiset.
    Semi(Vec<i64>),
    /// A keyed group-by folding `agg` over rows whose value lies in the
    /// predicate.
    Group(AggFn),
    /// A PR-5 operator — ground truth is pinned by the pre-existing
    /// identity suites; here it only has to agree across pool shapes.
    Legacy,
}

fn semi_reference(build_keys: &[i64], values: &[i64]) -> (Vec<u8>, u64) {
    let positions = semi_join(build_keys, values).expect("row count fits u32");
    let mut bytes = vec![0u8; values.len().div_ceil(8)];
    for &p in &positions {
        bytes[p as usize / 8] |= 1 << (p as usize % 8);
    }
    (bytes, positions.len() as u64)
}

fn group_reference(
    values: &[i64],
    keys: &[i64],
    lo: i64,
    hi: i64,
    agg: AggFn,
) -> Vec<(i64, u64, Option<i64>)> {
    let (keys_f, vals_f): (Vec<i64>, Vec<i64>) = keys
        .iter()
        .zip(values)
        .filter(|&(_, v)| (lo..=hi).contains(v))
        .map(|(&k, &v)| (k, v))
        .unzip();
    if keys_f.is_empty() {
        return Vec::new();
    }
    let kind = match agg {
        AggFn::Sum => AggKind::Sum,
        AggFn::Min => AggKind::Min,
        AggFn::Max => AggKind::Max,
    };
    let grouped = hash_group_by(
        &[&keys_f],
        &[AggSpec {
            kind,
            input: &vals_f,
        }],
    )
    .sorted_by_keys();
    (0..grouped.len())
        .map(|g| {
            (
                grouped.keys[0][g],
                grouped.counts[g],
                Some(grouped.aggs[0][g]),
            )
        })
        .collect()
}

/// Functional payloads only — timing legitimately shifts across pool
/// widths; the served bytes must not.
fn assert_results_identical(wide: &[QueryRecord], narrow: &[QueryRecord], label: &str) {
    assert_eq!(wide.len(), narrow.len(), "{label}: record count");
    for (w, n) in wide.iter().zip(narrow) {
        assert_eq!(
            (w.id, w.lo, w.hi, w.op),
            (n.id, n.lo, n.hi, n.op),
            "{label}: query {}",
            w.id
        );
        assert_eq!(w.bitset, n.bitset, "{label}: query {} bitset", w.id);
        assert_eq!(w.matched, n.matched, "{label}: query {} match count", w.id);
        assert_eq!(w.agg, n.agg, "{label}: query {} scalar", w.id);
        assert_eq!(
            w.projected, n.projected,
            "{label}: query {} projection",
            w.id
        );
        assert_eq!(w.groups, n.groups, "{label}: query {} groups", w.id);
    }
}

/// Draws a mixed workload: at least one semi-join and one keyed
/// group-by, the rest rolled from the full operator set, with open- or
/// closed-loop arrivals. Returns the workload plus each query's host
/// ground truth recipe.
fn draw_workload(rng: &mut SplitMix64, n: usize) -> (Workload, Vec<Expected>) {
    let mut specs = Vec::with_capacity(n);
    let mut expected = Vec::with_capacity(n);
    for q in 0..n {
        // Queries 0 and 1 pin the new operators into every case.
        let roll = match q {
            0 => 5,
            1 => 6,
            _ => rng.next_range_inclusive(0, 6),
        };
        if roll == 5 {
            // 1..=8 distinct build keys always fit the 8-range budget.
            let nkeys = rng.next_range_inclusive(1, 8) as usize;
            let build_keys: Vec<i64> = (0..nkeys)
                .map(|_| rng.next_range_inclusive(0, 999))
                .collect();
            let ranges = KeyRanges::from_keys(&build_keys).expect("≤8 keys → ≤8 ranges");
            specs.push(QuerySpec::semi_join(ranges));
            expected.push(Expected::Semi(build_keys));
        } else if roll == 6 {
            let lo = rng.next_range_inclusive(0, 900);
            let hi = lo + rng.next_range_inclusive(0, 600);
            let agg = AGGS[rng.next_range_inclusive(0, 2) as usize];
            specs.push(QuerySpec::group_by(lo, hi, agg));
            expected.push(Expected::Group(agg));
        } else {
            let lo = rng.next_range_inclusive(0, 900);
            let hi = lo + rng.next_range_inclusive(0, 600);
            specs.push(QuerySpec {
                lo,
                hi,
                op: LEGACY_OPS[roll as usize],
                slo: None,
            });
            expected.push(Expected::Legacy);
        }
    }
    let arrivals = if rng.next_bool(0.5) {
        let mut t = Tick::ZERO;
        Arrivals::Open(
            (0..n)
                .map(|_| {
                    t += Tick::from_ns(rng.next_range_inclusive(100, 4000) as u64);
                    t
                })
                .collect(),
        )
    } else {
        Arrivals::Closed {
            clients: rng.next_range_inclusive(1, 3) as u32,
            think: Tick::from_ns(rng.next_range_inclusive(0, 2000) as u64),
        }
    };
    (
        Workload {
            specs,
            arrivals,
            slo: None,
        },
        expected,
    )
}

#[test]
fn served_joins_and_group_bys_match_the_columnstore_reference_across_pools() {
    let policies = [
        SchedPolicy::Fifo,
        SchedPolicy::Edf,
        SchedPolicy::RankAffinity,
    ];
    let mut case = 0usize;
    forall("join-groupby identity", 8, |rng| {
        let rows = rng.next_range_inclusive(600, 2500) as usize;
        let values: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        // Uniform and Zipf(1.0)-skewed key columns; a skewed domain of
        // 16 makes the head key hot enough to trip the skew detector.
        let domain = rng.next_range_inclusive(8, 48) as usize;
        let keys = if rng.next_bool(0.5) {
            zipf_keys(rows, domain, 1.0, rng.next_u64())
        } else {
            uniform_keys(rows, domain, rng.next_u64())
        };
        let n = rng.next_range_inclusive(4, 8) as usize;
        let (workload, expected) = draw_workload(rng, n);
        let policy = policies[case % policies.len()];
        case += 1;
        let ranks = [2u32, 4][case % 2];
        let cfg = ServeConfig {
            fuse_window: rng.next_range_inclusive(1, 4) as usize,
            batch_admission: rng.next_bool(0.5),
            skew_split: rng.next_bool(0.5),
            ..ServeConfig::default()
        };

        let reference = cluster(1, ranks).serve_with_keys(&values, &keys, &workload, policy, &cfg);
        assert_eq!(
            reference.report.completed(),
            n,
            "no SLO, no faults: every query completes"
        );
        for (rec, exp) in reference.report.records.iter().zip(&expected) {
            match exp {
                Expected::Semi(build_keys) => {
                    let (bytes, matched) = semi_reference(build_keys, &values);
                    assert_eq!(rec.bitset, bytes, "query {}: semi-join bitset", rec.id);
                    assert_eq!(rec.matched, matched, "query {}: semi-join count", rec.id);
                }
                Expected::Group(agg) => {
                    let host = group_reference(&values, &keys, rec.lo, rec.hi, *agg);
                    assert_eq!(rec.groups, host, "query {}: group rows", rec.id);
                    assert_eq!(
                        rec.matched,
                        host.iter().map(|(_, c, _)| c).sum::<u64>(),
                        "query {}: grouped row count",
                        rec.id
                    );
                }
                Expected::Legacy => {}
            }
        }
        for channels in [2usize, 4] {
            let run =
                cluster(channels, ranks).serve_with_keys(&values, &keys, &workload, policy, &cfg);
            assert_eq!(run.report.completed(), n);
            assert_results_identical(
                &run.report.records,
                &reference.report.records,
                &format!("C={channels} vs C=1, policy {}", policy.name()),
            );
        }
    });
}

/// A permanent rank outage while semi-joins and keyed group-bys are in
/// flight: every query still completes with bytes identical to a
/// healthy single-channel run, and the disturbance ledger shows exactly
/// one quarantined unit.
#[test]
fn outage_during_joins_and_group_bys_is_confined_to_one_unit() {
    let values: Vec<i64> = (0..2048).map(|i| (i * 61 + 13) % 1000).collect();
    let keys = zipf_keys(2048, 16, 1.0, 0xBEEF);
    let ranges = KeyRanges::from_keys(&[13, 14, 15, 400, 401, 700]).expect("3 ranges");
    let mix_tail = Workload::poisson(
        PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 250,
        },
        4,
        Tick::from_us(2),
        97,
    )
    .with_op_mix(&LEGACY_OPS);
    let mut specs = vec![
        QuerySpec::semi_join(ranges),
        QuerySpec::group_by(100, 799, AggFn::Sum),
        QuerySpec::group_by(0, 999, AggFn::Max),
    ];
    specs.extend(mix_tail.specs.iter().cloned());
    let workload = Workload {
        specs,
        arrivals: Arrivals::Open((0..7).map(|q| Tick::from_us(2) * (q as u64 + 1)).collect()),
        slo: None,
    };
    let cfg = ServeConfig::default();

    let reference =
        cluster(1, 4).serve_with_keys(&values, &keys, &workload, SchedPolicy::RankAffinity, &cfg);
    assert_eq!(reference.report.completed(), 7);

    let mut sick = cluster(2, 4);
    let sick_unit = sick.pool().id_of(1, 0, 0).expect("in-shape unit");
    sick.inject_faults_on_channel(1, FaultPlan::none(5).with_outage(0, Tick::ZERO, Tick::MAX));
    let run = sick.serve_with_keys(&values, &keys, &workload, SchedPolicy::RankAffinity, &cfg);

    assert_eq!(run.report.completed(), 7, "the pool absorbs the outage");
    assert_results_identical(
        &run.report.records,
        &reference.report.records,
        "faulted C=2 vs healthy C=1",
    );
    let avail = &run.report.availability;
    assert!(
        avail.units[sick_unit].quarantines >= 1,
        "the dark unit was quarantined"
    );
    for (u, rec) in avail.units.iter().enumerate() {
        if u != sick_unit {
            assert_eq!(rec.quarantines, 0, "unit {u} untouched by the outage");
        }
    }
    assert!(run.faults[1].as_ref().is_some_and(|f| f.total() > 0));
    assert!(run.faults[0].is_none());
}
