//! The declarative path end to end: a plan-built query runs on the
//! column-store, its trace replays in the simulator, and the pushdown
//! annotation flows from planner to trace — the full stack a downstream
//! user of the plan API touches.

use jafar::columnstore::ops::agg::AggKind;
use jafar::columnstore::ops::scan::ScanPredicate;
use jafar::columnstore::ops::sort::Dir;
use jafar::columnstore::plan::{execute, Catalog, Plan};
use jafar::columnstore::{ExecContext, Planner, TraceEvent};
use jafar::common::time::Tick;
use jafar::sim::{PlacedDb, QueryReplayer, ReplayCosts, System, SystemConfig};
use jafar::tpch::{queries, TpchConfig, TpchDb};

fn db() -> TpchDb {
    TpchDb::generate(TpchConfig {
        sf: 0.0001,
        seed: 31,
    })
}

#[test]
fn plan_trace_replays_in_the_simulator() {
    let db = db();
    let mut cx = ExecContext::new(Planner::default());
    let revenue = queries::plans::q6_plan(&db, &mut cx);
    assert!(revenue >= 0);

    let mut sys = System::new(SystemConfig::test_small());
    let placed = PlacedDb::place(&mut sys, &db);
    sys.begin_measurement();
    let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default());
    let end = replayer.replay(cx.trace(), &placed, Tick::ZERO);
    assert!(end > Tick::ZERO);
    let report = sys.idle_report(end);
    assert!(report.reads > 0);
}

#[test]
fn plan_scans_carry_pushdown_annotations() {
    let db = db();
    let planner = Planner {
        min_rows_for_pushdown: 64,
        ..Planner::with_jafar()
    };
    let mut cx = ExecContext::new(planner);
    let plan = Plan::Scan {
        table: "lineitem".into(),
        filters: vec![
            ("l_quantity".into(), ScanPredicate::Le(25)),
            ("l_discount".into(), ScanPredicate::Ge(5)),
        ],
        columns: vec!["l_extendedprice".into()],
    };
    let catalog = Catalog::new().add(&db.lineitem);
    let f = execute(&plan, &catalog, &mut cx).unwrap();
    assert!(f.rows() > 0);
    // The leading filter is a pushdown-eligible full scan; the refinement
    // is positional CPU work.
    assert_eq!(cx.trace().jafar_scans(), 1);
    assert!(cx
        .trace()
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::ScanAt { .. })));
}

#[test]
fn composed_plan_aggregation_consistent_with_direct_ops() {
    // SUM(l_quantity) grouped by returnflag via a plan equals a direct
    // group_by over the same projected columns.
    let db = db();
    let mut cx = ExecContext::new(Planner::default());
    let plan = Plan::Sort {
        keys: vec![("l_returnflag".into(), Dir::Asc)],
        input: Box::new(Plan::GroupBy {
            keys: vec!["l_returnflag".into()],
            aggs: vec![("l_quantity".into(), AggKind::Sum, "qty".into())],
            input: Box::new(Plan::Scan {
                table: "lineitem".into(),
                filters: vec![],
                columns: vec!["l_returnflag".into(), "l_quantity".into()],
            }),
        }),
    };
    let catalog = Catalog::new().add(&db.lineitem);
    let frame = execute(&plan, &catalog, &mut cx).unwrap();

    // Direct computation.
    use std::collections::BTreeMap;
    let mut want: BTreeMap<i64, i64> = BTreeMap::new();
    let flag = db.lineitem.column("l_returnflag").unwrap();
    let qty = db.lineitem.column("l_quantity").unwrap();
    for r in 0..db.lineitem.rows() {
        *want.entry(flag.get(r)).or_default() += qty.get(r);
    }
    assert_eq!(frame.rows(), want.len());
    for (g, (k, v)) in want.into_iter().enumerate() {
        assert_eq!(frame.column("l_returnflag").unwrap()[g], k);
        assert_eq!(frame.column("qty").unwrap()[g], v);
    }
}
