//! End-to-end cross-validation of the select paths: the CPU scan engine,
//! the JAFAR device, and the column-store's functional operator must all
//! agree on every workload, and their timing must satisfy the paper's
//! qualitative claims.

use jafar::columnstore::ops::{scan, ScanPredicate};
use jafar::columnstore::Column;
use jafar::common::bitset::BitSet;
use jafar::common::check::forall;
use jafar::common::rng::SplitMix64;
use jafar::common::time::Tick;
use jafar::cpu::ScanVariant;
use jafar::sim::{System, SystemConfig};

fn values(n: usize, max: i64, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_range_inclusive(0, max)).collect()
}

fn small_system() -> System {
    let mut cfg = SystemConfig::test_small();
    cfg.query_overhead = Tick::from_ns(500);
    System::new(cfg)
}

#[test]
fn three_implementations_agree() {
    let vals = values(10_000, 999, 77);
    let (lo, hi) = (137, 664);

    // 1. Column-store functional reference.
    let column = Column::int("v", vals.clone());
    let reference = scan(&column, ScanPredicate::Between(lo, hi));

    // 2. CPU timing path.
    let mut sys = small_system();
    let col = sys.write_column(&vals);
    let cpu = sys
        .run_select_cpu(col, 10_000, lo, hi, ScanVariant::Branching, Tick::ZERO)
        .unwrap();
    assert_eq!(cpu.positions, reference.as_slice());

    // 3. JAFAR device path (bitset out of simulated DRAM).
    let jf = sys.run_select_jafar(col, 10_000, lo, hi, cpu.end);
    let mut bytes = vec![0u8; 10_000usize.div_ceil(8)];
    sys.mc().module().data().read(jf.out_addr, &mut bytes);
    let bits = BitSet::from_bytes(&bytes, 10_000);
    assert_eq!(bits.to_positions(), reference.as_slice());
}

#[test]
fn all_cpu_variants_agree_with_device() {
    let vals = values(4_096, 99, 3);
    for variant in [
        ScanVariant::Branching,
        ScanVariant::Predicated,
        ScanVariant::Vectorized { lanes: 4 },
    ] {
        let mut sys = small_system();
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 4_096, 25, 74, variant, Tick::ZERO)
            .unwrap();
        let jf = sys.run_select_jafar(col, 4_096, 25, 74, cpu.end);
        assert_eq!(cpu.matches, jf.matched, "{variant:?}");
    }
}

#[test]
fn figure3_shape_holds_at_small_scale() {
    // The qualitative Figure-3 claims at integration-test scale:
    // monotone-ish increasing speedup, constant JAFAR time.
    // Tiny test geometry: rank 0 holds 256 KiB — the column plus the
    // device's bitset must fit.
    let rows = 16_384u64;
    let vals = values(rows as usize, 999, 15);
    let mut speedups = Vec::new();
    let mut jafar_times = Vec::new();
    for hi in [-1i64, 249, 499, 749, 999] {
        let mut sys = small_system();
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, rows, 0, hi, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let mut sys2 = small_system();
        let col2 = sys2.write_column(&vals);
        let jf = sys2.run_select_jafar(col2, rows, 0, hi, Tick::ZERO);
        speedups.push(cpu.end.as_ps() as f64 / jf.end.as_ps() as f64);
        jafar_times.push(jf.end);
    }
    // JAFAR time constant across selectivity.
    let t0 = jafar_times[0];
    for t in &jafar_times {
        let ratio = t.as_ps() as f64 / t0.as_ps() as f64;
        assert!((0.99..1.01).contains(&ratio), "ratio={ratio}");
    }
    // Speedup grows from 0% to 100% selectivity.
    assert!(
        speedups.last().unwrap() > speedups.first().unwrap(),
        "{speedups:?}"
    );
    // And every point shows a JAFAR win.
    for s in &speedups {
        assert!(*s > 1.0, "{speedups:?}");
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let vals = values(8_192, 999, 21);
    let run = || {
        let mut sys = small_system();
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 8_192, 0, 499, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf = sys.run_select_jafar(col, 8_192, 0, 499, cpu.end);
        (cpu.end, jf.end, cpu.matches)
    };
    assert_eq!(run(), run(), "simulation must be exactly reproducible");
}

#[test]
fn device_bitset_equals_reference_for_any_predicate() {
    forall(
        "device_bitset_equals_reference_for_any_predicate",
        16,
        |rng| {
            let seed = rng.next_below(1_000);
            let lo = rng.next_range_inclusive(-50, 149);
            let span = rng.next_range_inclusive(0, 99);
            let rows = 2_048usize;
            let vals = values(rows, 99, seed);
            let hi = lo + span;
            let mut sys = small_system();
            let col = sys.write_column(&vals);
            let jf = sys.run_select_jafar(col, rows as u64, lo, hi, Tick::ZERO);
            let expect: Vec<u32> = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| lo <= v && v <= hi)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(jf.matched as usize, expect.len());
            let mut bytes = vec![0u8; rows.div_ceil(8)];
            sys.mc().module().data().read(jf.out_addr, &mut bytes);
            let bits = BitSet::from_bytes(&bytes, rows);
            assert_eq!(bits.to_positions(), expect);
        },
    );
}
