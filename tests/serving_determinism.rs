//! The serving-layer determinism contract: a serve run — its per-query
//! records, its aggregate report, and its full trace stream — is a pure
//! function of `(workload, policy, config)`, and every query it serves
//! produces a selection vector bit-identical to running the same
//! predicate alone. CI runs this file by name.

use jafar::common::bitset::BitSet;
use jafar::common::check::forall;
use jafar::common::time::Tick;
use jafar::dram::DramGeometry;
use jafar::serve::engine::ServeConfig;
use jafar::serve::{PredicateMix, SchedPolicy, ServeReport, Workload};
use jafar::sim::{System, SystemConfig};

fn multi_rank_system(ranks: u32) -> System {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks,
        banks_per_rank: 4,
        rows_per_bank: 64,
        row_bytes: 1024,
    };
    System::new(cfg)
}

/// Expected selection bytes (LSB-first within each byte), computed
/// functionally — the ground truth every execution rung must match.
fn reference_bytes(vals: &[i64], lo: i64, hi: i64) -> Vec<u8> {
    let mut bytes = vec![0u8; vals.len().div_ceil(8)];
    for (i, &v) in vals.iter().enumerate() {
        if (lo..=hi).contains(&v) {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

fn served_run(seed: u64) -> (ServeReport, String, String, String) {
    let mut sys = multi_rank_system(4);
    sys.enable_tracing(1 << 14);
    let values: Vec<i64> = (0..4096).map(|i| (i * 37 + 11) % 1000).collect();
    let mix = PredicateMix::UniformRange {
        min: 0,
        max: 999,
        width: 200,
    };
    // Two SLO classes so EDF ordering (not just FIFO) is exercised and
    // the deadline machinery is part of the golden surface.
    let workload = Workload::poisson(mix, 6, Tick::from_us(1), seed)
        .with_slo_classes(&[Tick::from_ms(1), Tick::from_us(400)]);
    let run = sys.serve(
        &values,
        &workload,
        SchedPolicy::Edf,
        &ServeConfig::default(),
    );
    (
        run.report,
        sys.chrome_trace().expect("tracing enabled"),
        sys.trace_timeline().expect("tracing enabled"),
        sys.metrics().to_string(),
    )
}

#[test]
fn same_seed_serves_are_byte_identical() {
    let (report_a, json_a, timeline_a, metrics_a) = served_run(23);
    let (report_b, json_b, timeline_b, metrics_b) = served_run(23);
    assert_eq!(report_a, report_b, "ServeReports must be identical");
    assert_eq!(
        report_a.to_string(),
        report_b.to_string(),
        "rendered reports must be identical"
    );
    assert_eq!(json_a, json_b, "Chrome trace JSON must be byte-identical");
    assert_eq!(timeline_a, timeline_b, "timeline must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "metrics report must be identical");
    // Sanity: the serve lifecycle actually reached the trace stream.
    assert!(timeline_a.contains("query-admitted"));
    assert!(timeline_a.contains("query-started"));
    assert!(timeline_a.contains("query-done"));
}

#[test]
fn different_seeds_serve_differently() {
    // The workload is a pure function of its seed, so a different seed
    // must perturb both the report and the trace bytes.
    let (report_a, json_a, _, _) = served_run(23);
    let (report_b, json_b, _, _) = served_run(24);
    assert_ne!(report_a, report_b);
    assert_ne!(json_a, json_b);
}

#[test]
fn served_selections_match_solo_runs_across_random_workloads() {
    let policies = [
        SchedPolicy::Fifo,
        SchedPolicy::Edf,
        SchedPolicy::RankAffinity,
    ];
    let mut case = 0usize;
    forall("serve-bit-identity", 12, |rng| {
        let rows = rng.next_range_inclusive(600, 3000) as usize;
        let values: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let n = rng.next_range_inclusive(1, 10) as usize;
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: rng.next_range_inclusive(0, 600),
        };
        let wseed = rng.next_u64();
        let mut workload = if rng.next_bool(0.5) {
            let gap = Tick::from_ns(rng.next_range_inclusive(50, 4000) as u64);
            Workload::poisson(mix, n, gap, wseed)
        } else {
            let clients = rng.next_range_inclusive(1, 4) as u32;
            let think = Tick::from_ns(rng.next_range_inclusive(0, 2000) as u64);
            Workload::closed(mix, n, clients, think, wseed)
        };
        if rng.next_bool(0.3) {
            // Sometimes tight enough that queries degrade to the CPU rung
            // — bit-identity must hold on that rung too.
            workload = workload.with_slo(Tick::from_us(rng.next_range_inclusive(5, 500) as u64));
        }
        let policy = policies[case % policies.len()];
        case += 1;

        let mut sys = multi_rank_system(4);
        let run = sys.serve(&values, &workload, policy, &ServeConfig::default());
        assert_eq!(
            run.report.completed() + run.report.shed(),
            n,
            "every query completes or is shed"
        );
        for rec in &run.report.records {
            if rec.done.is_none() {
                continue;
            }
            let expect = reference_bytes(&values, rec.lo, rec.hi);
            assert_eq!(rec.bitset, expect, "query {} selection bytes", rec.id);
            let ones: u64 = expect.iter().map(|b| b.count_ones() as u64).sum();
            assert_eq!(rec.matched, ones, "query {} match count", rec.id);
        }

        // One full solo-device comparison per case: the served bytes are
        // the same bytes a dedicated single-device run produces.
        if let Some(rec) = run.report.records.iter().find(|r| r.done.is_some()) {
            let mut solo = multi_rank_system(4);
            let col = solo.write_column(&values);
            let stats = solo.run_select_jafar(col, rows as u64, rec.lo, rec.hi, Tick::ZERO);
            let mut bytes = vec![0u8; rows.div_ceil(8)];
            solo.mc().module().data().read(stats.out_addr, &mut bytes);
            assert_eq!(rec.bitset, bytes, "served bytes == solo device bytes");
            assert_eq!(rec.matched, stats.matched);
            assert_eq!(
                BitSet::from_bytes(&rec.bitset, rows).to_positions().len() as u64,
                rec.matched
            );
        }
    });
}
