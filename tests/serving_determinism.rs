//! The serving-layer determinism contract: a serve run — its per-query
//! records, its aggregate report, and its full trace stream — is a pure
//! function of `(workload, policy, config)`, and every query it serves
//! produces a selection vector bit-identical to running the same
//! predicate alone. CI runs this file by name.

use jafar::common::bitset::BitSet;
use jafar::common::check::forall;
use jafar::common::time::Tick;
use jafar::dram::DramGeometry;
use jafar::serve::engine::ServeConfig;
use jafar::serve::{AggFn, PredicateMix, QueryOp, SchedPolicy, ServeReport, Workload};
use jafar::sim::{System, SystemConfig};

/// The §4 operator set a mixed stream cycles through.
const OP_MIX: [QueryOp; 6] = [
    QueryOp::Select,
    QueryOp::SelectCount,
    QueryOp::SelectAgg(AggFn::Sum),
    QueryOp::Project { k: 2 },
    QueryOp::SelectAgg(AggFn::Min),
    QueryOp::SelectAgg(AggFn::Max),
];

fn multi_rank_system(ranks: u32) -> System {
    let mut cfg = SystemConfig::test_small();
    cfg.dram_geometry = DramGeometry {
        ranks,
        banks_per_rank: 4,
        rows_per_bank: 64,
        row_bytes: 1024,
    };
    System::new(cfg)
}

/// Expected selection bytes (LSB-first within each byte), computed
/// functionally — the ground truth every execution rung must match.
fn reference_bytes(vals: &[i64], lo: i64, hi: i64) -> Vec<u8> {
    let mut bytes = vec![0u8; vals.len().div_ceil(8)];
    for (i, &v) in vals.iter().enumerate() {
        if (lo..=hi).contains(&v) {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// The scalar a JAFAR aggregate kernel folds over the qualifying
/// values: wrapping sum, or the extremum, and `None` when nothing
/// qualifies — the contract every rung (device, fallback, CPU
/// degradation) must reproduce exactly.
fn reference_agg(f: AggFn, matching: &[i64]) -> Option<i64> {
    match f {
        AggFn::Sum => matching.iter().copied().reduce(|a, b| a.wrapping_add(b)),
        AggFn::Min => matching.iter().copied().min(),
        AggFn::Max => matching.iter().copied().max(),
    }
}

fn served_run(seed: u64) -> (ServeReport, String, String, String) {
    let mut sys = multi_rank_system(4);
    sys.enable_tracing(1 << 14);
    let values: Vec<i64> = (0..4096).map(|i| (i * 37 + 11) % 1000).collect();
    let mix = PredicateMix::UniformRange {
        min: 0,
        max: 999,
        width: 200,
    };
    // Two SLO classes so EDF ordering (not just FIFO) is exercised and
    // the deadline machinery is part of the golden surface.
    let workload = Workload::poisson(mix, 6, Tick::from_us(1), seed)
        .with_slo_classes(&[Tick::from_ms(1), Tick::from_us(400)])
        .with_op_mix(&OP_MIX);
    let run = sys.serve(
        &values,
        &workload,
        SchedPolicy::Edf,
        &ServeConfig::default(),
    );
    (
        run.report,
        sys.chrome_trace().expect("tracing enabled"),
        sys.trace_timeline().expect("tracing enabled"),
        sys.metrics().to_string(),
    )
}

#[test]
fn same_seed_serves_are_byte_identical() {
    let (report_a, json_a, timeline_a, metrics_a) = served_run(23);
    let (report_b, json_b, timeline_b, metrics_b) = served_run(23);
    assert_eq!(report_a, report_b, "ServeReports must be identical");
    assert_eq!(
        report_a.to_string(),
        report_b.to_string(),
        "rendered reports must be identical"
    );
    assert_eq!(json_a, json_b, "Chrome trace JSON must be byte-identical");
    assert_eq!(timeline_a, timeline_b, "timeline must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "metrics report must be identical");
    // Sanity: the serve lifecycle actually reached the trace stream.
    assert!(timeline_a.contains("query-admitted"));
    assert!(timeline_a.contains("query-started"));
    assert!(timeline_a.contains("query-done"));
}

#[test]
fn batched_admission_preserves_the_golden_trace_byte_for_byte() {
    // Satellite to the batched-admission change: draining every due
    // arrival in one engine event must leave the *entire* observable
    // surface untouched on fault-free runs — per-query records,
    // makespan, availability, and the full trace stream, byte for
    // byte. Closed-loop think-time re-arrivals are the sharp edge: a
    // zero think time lands the re-arrival at the completing event's
    // own timestamp, exactly the case the batch drain folds in.
    let run_with = |batch: bool, think: Tick| {
        let mut sys = multi_rank_system(4);
        sys.enable_tracing(1 << 14);
        let values: Vec<i64> = (0..4096).map(|i| (i * 37 + 11) % 1000).collect();
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 200,
        };
        let workload = Workload::closed(mix, 8, 3, think, 71).with_op_mix(&OP_MIX);
        let cfg = ServeConfig {
            batch_admission: batch,
            ..ServeConfig::default()
        };
        let run = sys.serve(&values, &workload, SchedPolicy::Edf, &cfg);
        (
            run.report,
            sys.chrome_trace().expect("tracing enabled"),
            sys.trace_timeline().expect("tracing enabled"),
        )
    };
    for think in [Tick::ZERO, Tick::from_us(1)] {
        let (batched, json_b, timeline_b) = run_with(true, think);
        let (one, json_o, timeline_o) = run_with(false, think);
        assert_eq!(batched.records, one.records, "think {think}");
        assert_eq!(batched.makespan, one.makespan, "think {think}");
        assert_eq!(batched.availability, one.availability, "think {think}");
        assert_eq!(json_b, json_o, "think {think}: trace JSON byte-identity");
        assert_eq!(timeline_b, timeline_o, "think {think}: timeline bytes");
    }
}

#[test]
fn different_seeds_serve_differently() {
    // The workload is a pure function of its seed, so a different seed
    // must perturb both the report and the trace bytes.
    let (report_a, json_a, _, _) = served_run(23);
    let (report_b, json_b, _, _) = served_run(24);
    assert_ne!(report_a, report_b);
    assert_ne!(json_a, json_b);
}

#[test]
fn served_selections_match_solo_runs_across_random_workloads() {
    let policies = [
        SchedPolicy::Fifo,
        SchedPolicy::Edf,
        SchedPolicy::RankAffinity,
    ];
    let mut case = 0usize;
    forall("serve-bit-identity", 12, |rng| {
        let rows = rng.next_range_inclusive(600, 3000) as usize;
        let values: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let n = rng.next_range_inclusive(1, 10) as usize;
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: rng.next_range_inclusive(0, 600),
        };
        let wseed = rng.next_u64();
        let mut workload = if rng.next_bool(0.5) {
            let gap = Tick::from_ns(rng.next_range_inclusive(50, 4000) as u64);
            Workload::poisson(mix, n, gap, wseed)
        } else {
            let clients = rng.next_range_inclusive(1, 4) as u32;
            let think = Tick::from_ns(rng.next_range_inclusive(0, 2000) as u64);
            Workload::closed(mix, n, clients, think, wseed)
        };
        if rng.next_bool(0.3) {
            // Sometimes tight enough that queries degrade to the CPU rung
            // — bit-identity must hold on that rung too.
            workload = workload.with_slo(Tick::from_us(rng.next_range_inclusive(5, 500) as u64));
        }
        if rng.next_bool(0.6) {
            // Most cases serve a mixed stream: the per-op result
            // contracts below must hold regardless of the mix.
            let start = rng.next_range_inclusive(0, OP_MIX.len() as i64 - 1) as usize;
            let len = rng.next_range_inclusive(1, OP_MIX.len() as i64) as usize;
            let mix: Vec<QueryOp> = (0..len)
                .map(|i| OP_MIX[(start + i) % OP_MIX.len()])
                .collect();
            workload = workload.with_op_mix(&mix);
        }
        let policy = policies[case % policies.len()];
        case += 1;

        // Shared-scan fusion and batched admission must not move a
        // single result byte on any rung, so the sweep randomizes both.
        let cfg = ServeConfig {
            fuse_window: rng.next_range_inclusive(1, 4) as usize,
            batch_admission: rng.next_bool(0.5),
            ..ServeConfig::default()
        };
        let mut sys = multi_rank_system(4);
        let run = sys.serve(&values, &workload, policy, &cfg);
        assert_eq!(
            run.report.completed() + run.report.shed(),
            n,
            "every query completes or is shed"
        );
        for rec in &run.report.records {
            if rec.done.is_none() {
                continue;
            }
            let matching: Vec<i64> = values
                .iter()
                .copied()
                .filter(|v| (rec.lo..=rec.hi).contains(v))
                .collect();
            assert_eq!(
                rec.matched as usize,
                matching.len(),
                "query {} match count",
                rec.id
            );
            match rec.op {
                QueryOp::Select | QueryOp::Project { .. } => {
                    let expect = reference_bytes(&values, rec.lo, rec.hi);
                    assert_eq!(rec.bitset, expect, "query {} selection bytes", rec.id);
                    if matches!(rec.op, QueryOp::Project { .. }) {
                        assert_eq!(
                            rec.projected, matching,
                            "query {} packed projection",
                            rec.id
                        );
                    }
                }
                QueryOp::SelectCount => {
                    assert_eq!(
                        rec.agg,
                        Some(matching.len() as i64),
                        "query {} count scalar",
                        rec.id
                    );
                }
                QueryOp::SelectAgg(f) => {
                    assert_eq!(
                        rec.agg,
                        reference_agg(f, &matching),
                        "query {} aggregate scalar",
                        rec.id
                    );
                }
                QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
                    unreachable!("this case mix does not generate joins or group-bys")
                }
            }
        }

        // One full solo-device comparison per case: the served bytes are
        // the same bytes a dedicated single-device run produces.
        if let Some(rec) = run
            .report
            .records
            .iter()
            .find(|r| r.done.is_some() && matches!(r.op, QueryOp::Select))
        {
            let mut solo = multi_rank_system(4);
            let col = solo.write_column(&values);
            let stats = solo.run_select_jafar(col, rows as u64, rec.lo, rec.hi, Tick::ZERO);
            let mut bytes = vec![0u8; rows.div_ceil(8)];
            solo.mc().module().data().read(stats.out_addr, &mut bytes);
            assert_eq!(rec.bitset, bytes, "served bytes == solo device bytes");
            assert_eq!(rec.matched, stats.matched);
            assert_eq!(
                BitSet::from_bytes(&rec.bitset, rows).to_positions().len() as u64,
                rec.matched
            );
        }
    });
}

/// The acceptance bar for scalar operators: under a rank-scoped fault
/// that forces a query off the device rungs, the degraded aggregate
/// returns the *identical* scalar a healthy device run produces — not
/// an approximation, not a recomputation with different overflow
/// semantics.
#[test]
fn degraded_aggregates_return_identical_scalars_under_rank_faults() {
    use jafar::core::ResilienceConfig;
    use jafar::dram::FaultPlan;
    use jafar::serve::{Arrivals, ExecMode, QuerySpec};

    let values: Vec<i64> = (0..4096).map(|i| (i * 53 + 7) % 1000).collect();
    let q = |lo: i64, hi: i64, op: QueryOp, slo: Option<Tick>| QuerySpec { lo, hi, op, slo };
    let specs = [
        // Occupies every free rank first, so the aggregate behind it
        // with a hopeless SLO must take the CPU rung.
        q(0, 499, QueryOp::Select, None),
        q(
            0,
            499,
            QueryOp::SelectAgg(AggFn::Sum),
            Some(Tick::from_ns(1)),
        ),
        q(250, 749, QueryOp::SelectAgg(AggFn::Min), None),
        q(500, 999, QueryOp::SelectCount, None),
    ];
    let workload = |slos: bool| Workload {
        specs: specs
            .iter()
            .map(|s| QuerySpec {
                slo: if slos { s.slo } else { None },
                ..*s
            })
            .collect(),
        arrivals: Arrivals::Open(vec![Tick::ZERO; specs.len()]),
        slo: None,
    };
    let cfg = ServeConfig {
        resilience: ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        },
        ..ServeConfig::default()
    };

    let mut sick = multi_rank_system(4);
    sick.inject_faults(FaultPlan {
        stall_burst_range: Some((0, u64::MAX)),
        rank_scope: Some(0),
        ..FaultPlan::none(3)
    });
    let run = sick.serve(&values, &workload(true), SchedPolicy::RankAffinity, &cfg);
    assert_eq!(run.report.completed(), specs.len());
    assert_eq!(
        run.report.records[1].mode,
        ExecMode::Cpu,
        "hopeless SLO forces the aggregate onto the CPU rung"
    );

    // The same stream, no SLOs, on a healthy machine: all-device runs.
    let mut healthy = multi_rank_system(4);
    let clean = healthy.serve(&values, &workload(false), SchedPolicy::RankAffinity, &cfg);
    for (sick_rec, clean_rec) in run.report.records.iter().zip(&clean.report.records) {
        assert!(matches!(clean_rec.mode, ExecMode::Device { .. }));
        assert_eq!(
            sick_rec.agg, clean_rec.agg,
            "query {} scalar identical across rungs",
            sick_rec.id
        );
        let matching: Vec<i64> = values
            .iter()
            .copied()
            .filter(|v| (sick_rec.lo..=sick_rec.hi).contains(v))
            .collect();
        match sick_rec.op {
            QueryOp::Select | QueryOp::Project { .. } => {
                assert_eq!(
                    sick_rec.bitset,
                    reference_bytes(&values, sick_rec.lo, sick_rec.hi)
                );
            }
            QueryOp::SelectCount => {
                assert_eq!(sick_rec.agg, Some(matching.len() as i64));
            }
            QueryOp::SelectAgg(f) => {
                assert_eq!(sick_rec.agg, reference_agg(f, &matching));
            }
            QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
                unreachable!("this case mix does not generate joins or group-bys")
            }
        }
    }
}
