//! # jafar — Near-Data Processing for Databases
//!
//! Facade crate re-exporting the whole JAFAR reproduction workspace: a
//! from-scratch Rust implementation of the system described in *"Beyond the
//! Wall: Near-Data Processing for Databases"* (Xi, Babarinsa, Athanassoulis,
//! Idreos — DaMoN 2015), including every substrate the paper's evaluation
//! relied on (DDR3 timing model, memory controller, cache hierarchy, host CPU
//! model, an Aladdin-like accelerator modelling tool, a prototype
//! column-store, and a TPC-H-like workload generator).
//!
//! See the individual crates for details:
//!
//! - [`common`]: ticks, clocks, bitsets, statistics.
//! - [`dram`]: functional + timing DDR3 SDRAM model.
//! - [`memctl`]: memory controller with FR-FCFS scheduling and the
//!   performance counters Figure 4 samples.
//! - [`cache`]: set-associative write-back cache hierarchy.
//! - [`cpu`]: host CPU scan-kernel timing model.
//! - [`accel`]: dependence-graph accelerator modelling (Aladdin-like).
//! - [`core`]: the JAFAR device, its host API, and the §4 extensions.
//! - [`columnstore`]: the prototype column-store with JAFAR pushdown.
//! - [`tpch`]: TPC-H-like generator and queries Q1/Q3/Q6/Q18/Q22.
//! - [`serve`]: deterministic multi-tenant query-serving engine (admission
//!   control, scheduling policies, SLO-driven degradation).
//! - [`net`]: deterministic simulated cluster fabric (per-link cost model,
//!   seeded jitter, column replica placement) for the disaggregated tier.
//! - [`sim`]: the full-system simulator tying everything together.
//!
//! # Example: one select, both ways
//!
//! ```
//! use jafar::common::time::Tick;
//! use jafar::cpu::ScanVariant;
//! use jafar::sim::{System, SystemConfig};
//!
//! let mut system = System::new(SystemConfig::test_small());
//! let values: Vec<i64> = (0..4096).map(|i| i % 100).collect();
//! let column = system.write_column(&values);
//!
//! let cpu = system
//!     .run_select_cpu(column, 4096, 0, 49, ScanVariant::Branching, Tick::ZERO)
//!     .expect("column placed in range");
//! let jafar = system.run_select_jafar(column, 4096, 0, 49, cpu.end);
//! assert_eq!(cpu.matches, jafar.matched);
//! assert!(jafar.end - cpu.end < cpu.end, "the pushdown wins");
//! ```

pub use jafar_accel as accel;
pub use jafar_cache as cache;
pub use jafar_columnstore as columnstore;
pub use jafar_common as common;
pub use jafar_core as core;
pub use jafar_cpu as cpu;
pub use jafar_dram as dram;
pub use jafar_memctl as memctl;
pub use jafar_net as net;
pub use jafar_serve as serve;
pub use jafar_sim as sim;
pub use jafar_tpch as tpch;
