//! # jafar-memctl — the host memory controller
//!
//! The paper's contention study (§3.3, Figure 4) is entirely a story about
//! the memory controller: JAFAR can only run while the controller is idle,
//! so the length of controller idle periods bounds how much work the
//! accelerator can do between interruptions. The paper measures idle periods
//! on a real Xeon through the integrated memory controller's performance
//! counters: cycles the read queue is busy (`RC_busy`), cycles the write
//! queue is busy (`WC_busy`), and the read/write counts, combined with the
//! estimator
//!
//! ```text
//! MC_empty = total_cycles − RC_busy − WC_busy          (lower bound)
//! mean_idle_period = MC_empty / (#reads + #writes)
//! ```
//!
//! This crate reproduces both sides of that methodology:
//!
//! - [`controller::MemoryController`] services 64-byte read/write
//!   transactions from queues through a [`jafar_dram::DramModule`], under a
//!   pluggable scheduling policy ([`sched`]: FCFS or FR-FCFS with a
//!   starvation cap, plus write-drain watermarks);
//! - [`counters`] tracks the exact per-queue busy intervals and exposes
//!   *both* the paper's counter-based estimate and the ground-truth idle
//!   period distribution, letting us validate the "pessimistic estimate"
//!   claim;
//! - [`channel`] composes multiple controllers into an interleaved
//!   multi-channel memory system.

pub mod channel;
pub mod controller;
pub mod counters;
pub mod request;
pub mod sched;

pub use channel::{ChannelConfigError, MultiChannel};
pub use controller::{EnqueueError, MemoryController, OwnershipError};
pub use counters::{IdleReport, IntervalSet, McCounters};
pub use request::{Completion, MemRequest, Origin, ReqId};
pub use sched::Policy;
