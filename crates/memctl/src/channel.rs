//! Multi-channel composition.
//!
//! The Xeon platform of Table 1 has four sockets with integrated memory
//! controllers; the paper's Figure 4 profiles "the integrated memory
//! controllers" (plural). `MultiChannel` composes N independent
//! [`MemoryController`]s with 64-byte interleaving across channels: global
//! block index bits `[0, log2 N)` select the channel, the remaining bits
//! form the channel-local block address.

use crate::controller::{EnqueueError, MemoryController};
use crate::counters::IdleReport;
use crate::request::{Completion, MemRequest, ReqId};
use jafar_common::size::is_pow2;
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr};
use std::fmt;

/// Why a [`MultiChannel`] could not be assembled. The channel count
/// selects address bits, so it must be a nonzero power of two; anything
/// else is a configuration error the caller can surface (the sim path
/// reports it as an `ErrorSurfaced` trace event) instead of a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelConfigError {
    /// The channel count is zero or not a power of two, so block-index
    /// bits cannot route requests.
    ChannelCountNotPow2 {
        /// The rejected channel count.
        got: usize,
    },
}

impl fmt::Display for ChannelConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelConfigError::ChannelCountNotPow2 { got } => {
                write!(f, "channel count must be a nonzero power of two, got {got}")
            }
        }
    }
}

impl std::error::Error for ChannelConfigError {}

/// N interleaved memory channels.
pub struct MultiChannel {
    channels: Vec<MemoryController>,
    channel_bits: u32,
}

impl MultiChannel {
    /// Composes the given controllers (one per channel).
    ///
    /// # Errors
    /// [`ChannelConfigError::ChannelCountNotPow2`] unless the channel
    /// count is a nonzero power of two.
    pub fn new(channels: Vec<MemoryController>) -> Result<Self, ChannelConfigError> {
        if !is_pow2(channels.len() as u64) {
            return Err(ChannelConfigError::ChannelCountNotPow2 {
                got: channels.len(),
            });
        }
        let channel_bits = (channels.len() as u64).trailing_zeros();
        Ok(MultiChannel {
            channels,
            channel_bits,
        })
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Total capacity across channels.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.module().geometry().capacity_bytes())
            .sum()
    }

    /// Splits a global address into `(channel, local address)`.
    pub fn route(&self, addr: PhysAddr) -> (usize, PhysAddr) {
        let block = addr.block_index();
        let channel = (block & ((1 << self.channel_bits) - 1)) as usize;
        let local_block = block >> self.channel_bits;
        (
            channel,
            PhysAddr((local_block << 6) | addr.block_offset() as u64),
        )
    }

    /// Reconstructs the global address of a channel-local block.
    pub fn unroute(&self, channel: usize, local: PhysAddr) -> PhysAddr {
        let local_block = local.block_index();
        PhysAddr(
            (((local_block << self.channel_bits) | channel as u64) << 6)
                | local.block_offset() as u64,
        )
    }

    /// Enqueues a request onto its channel. Returns `(channel, id)`.
    ///
    /// # Errors
    /// Propagates the channel controller's [`EnqueueError`].
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(usize, ReqId), EnqueueError> {
        let (channel, local) = self.route(req.addr);
        let mut local_req = req;
        local_req.addr = local;
        let id = self.channels[channel].enqueue(local_req)?;
        Ok((channel, id))
    }

    /// Drains every channel; completions are returned sorted by finish time,
    /// with request addresses translated back to global.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        for (ch, ctrl) in self.channels.iter_mut().enumerate() {
            let completions = ctrl.drain();
            let bits = self.channel_bits;
            out.extend(completions.into_iter().map(|mut c| {
                let local_block = c.request.addr.block_index();
                c.request.addr = PhysAddr(((local_block << bits) | ch as u64) << 6);
                c
            }));
        }
        out.sort_by_key(|c| c.done);
        out
    }

    /// Access one channel's controller.
    pub fn channel(&self, i: usize) -> &MemoryController {
        &self.channels[i]
    }

    /// Mutable access to one channel's controller.
    pub fn channel_mut(&mut self, i: usize) -> &mut MemoryController {
        &mut self.channels[i]
    }

    /// Simultaneous mutable access to every channel's DRAM module, in
    /// channel order — what a per-channel scheduler (the serving layer's
    /// channels × ranks filter pool) needs to drive all channels within
    /// one event loop.
    pub fn modules_mut(&mut self) -> Vec<&mut DramModule> {
        self.channels.iter_mut().map(|c| c.module_mut()).collect()
    }

    /// Per-channel idle reports over `[0, span)`.
    pub fn finalize(&self, span: Tick) -> Vec<IdleReport> {
        self.channels.iter().map(|c| c.finalize(span)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerConfig;
    use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming};

    fn multi(n: usize) -> MultiChannel {
        let mk = || {
            MemoryController::new(
                DramModule::new(
                    DramGeometry::tiny(),
                    DramTiming::ddr3_paper().without_refresh(),
                    AddressMapping::RowBankRankBlock,
                ),
                ControllerConfig::default(),
            )
        };
        MultiChannel::new((0..n).map(|_| mk()).collect()).expect("pow2 channel count")
    }

    #[test]
    fn route_unroute_round_trip() {
        let m = multi(4);
        for block in 0..64u64 {
            let addr = PhysAddr(block * 64 + 13);
            let (ch, local) = m.route(addr);
            assert_eq!(ch as u64, block % 4);
            assert_eq!(m.unroute(ch, local), addr);
        }
    }

    #[test]
    fn consecutive_blocks_alternate_channels() {
        let m = multi(2);
        assert_eq!(m.route(PhysAddr(0)).0, 0);
        assert_eq!(m.route(PhysAddr(64)).0, 1);
        assert_eq!(m.route(PhysAddr(128)).0, 0);
    }

    #[test]
    fn parallel_channels_halve_stream_time() {
        // 8 blocks over 1 channel vs 2 channels.
        let run = |n: usize| {
            let mut m = multi(n);
            for i in 0..8u64 {
                m.enqueue(MemRequest::read(PhysAddr(i * 64), Tick::ZERO))
                    .unwrap();
            }
            let completions = m.drain();
            assert_eq!(completions.len(), 8);
            completions.last().unwrap().done
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two < one,
            "two channels should finish sooner: {two} vs {one}"
        );
    }

    #[test]
    fn capacity_sums_channels() {
        let m = multi(2);
        assert_eq!(
            m.capacity_bytes(),
            2 * DramGeometry::tiny().capacity_bytes()
        );
    }

    #[test]
    fn non_pow2_channel_count_rejected_as_typed_error() {
        for n in [0usize, 3, 5, 6, 7] {
            let mk = || {
                MemoryController::new(
                    DramModule::new(
                        DramGeometry::tiny(),
                        DramTiming::ddr3_paper().without_refresh(),
                        AddressMapping::RowBankRankBlock,
                    ),
                    ControllerConfig::default(),
                )
            };
            let got = MultiChannel::new((0..n).map(|_| mk()).collect());
            assert!(
                matches!(got, Err(ChannelConfigError::ChannelCountNotPow2 { got }) if got == n),
                "count {n} must be rejected"
            );
        }
    }

    #[test]
    fn modules_mut_exposes_every_channel_in_order() {
        let mut m = multi(4);
        let modules = m.modules_mut();
        assert_eq!(modules.len(), 4);
        // Writes through the borrowed modules land on the right channel.
        modules
            .into_iter()
            .enumerate()
            .for_each(|(i, module)| module.data_mut().write_i64(PhysAddr(0), i as i64));
        for i in 0..4 {
            assert_eq!(m.channel(i).module().data().read_i64(PhysAddr(0)), i as i64);
        }
    }
}
