//! Memory transactions as seen by the controller: 64-byte block reads and
//! writes with an arrival time and an origin tag.

use jafar_common::time::Tick;
use jafar_dram::{PhysAddr, RowOutcome};

/// Controller-assigned request identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// Who generated a memory request — used for statistics and for scheduling
/// studies (a JAFAR-aware scheduler treats accelerator traffic specially).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Origin {
    /// CPU demand miss (load).
    CpuDemand,
    /// Dirty-line writeback from the cache hierarchy.
    CpuWriteback,
    /// Hardware prefetcher.
    Prefetch,
    /// The JAFAR device writing its result bitset through the host path
    /// (used in the interleaved-DIMM configuration).
    NdpWriteback,
}

/// One 64-byte transaction presented to the controller.
#[derive(Clone, Copy, Debug)]
pub struct MemRequest {
    /// 64-byte-aligned physical address.
    pub addr: PhysAddr,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// Arrival time at the controller queues.
    pub arrival: Tick,
    /// Traffic source.
    pub origin: Origin,
}

impl MemRequest {
    /// A demand read of the block containing `addr`.
    pub fn read(addr: PhysAddr, arrival: Tick) -> Self {
        MemRequest {
            addr: addr.block_base(),
            is_write: false,
            arrival,
            origin: Origin::CpuDemand,
        }
    }

    /// A writeback of the block containing `addr`.
    pub fn writeback(addr: PhysAddr, arrival: Tick) -> Self {
        MemRequest {
            addr: addr.block_base(),
            is_write: true,
            arrival,
            origin: Origin::CpuWriteback,
        }
    }

    /// Same request with a different origin.
    pub fn with_origin(mut self, origin: Origin) -> Self {
        self.origin = origin;
        self
    }
}

/// A finished transaction.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The controller-assigned id.
    pub id: ReqId,
    /// The request that completed.
    pub request: MemRequest,
    /// When the burst finished on the data bus (data available to the
    /// hierarchy for reads; globally visible for writes).
    pub done: Tick,
    /// Row-buffer outcome in DRAM.
    pub outcome: RowOutcome,
    /// The 64 bytes read (reads only).
    pub data: Option<[u8; 64]>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_align_addresses() {
        let r = MemRequest::read(PhysAddr(0x1234), Tick::from_ns(5));
        assert_eq!(r.addr, PhysAddr(0x1200));
        assert!(!r.is_write);
        assert_eq!(r.origin, Origin::CpuDemand);
        let w = MemRequest::writeback(PhysAddr(0x7F), Tick::ZERO);
        assert_eq!(w.addr, PhysAddr(0x40));
        assert!(w.is_write);
        assert_eq!(w.origin, Origin::CpuWriteback);
    }

    #[test]
    fn origin_override() {
        let r = MemRequest::read(PhysAddr(0), Tick::ZERO).with_origin(Origin::Prefetch);
        assert_eq!(r.origin, Origin::Prefetch);
    }
}
