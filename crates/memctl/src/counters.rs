//! Memory-controller performance counters and idle-period accounting.
//!
//! The paper samples three things from the Xeon's integrated memory
//! controller: `RC_busy` (cycles the read queue holds at least one request),
//! `WC_busy` (same for the write queue), and the number of reads and writes.
//! Because the counters cannot say when *both* queues were simultaneously
//! empty, §3.3 derives a **lower bound**:
//!
//! ```text
//! MC_empty ≥ total_cycles − RC_busy − WC_busy
//! ```
//!
//! and estimates `mean_idle_period = MC_empty / (#reads + #writes)`,
//! noting "this is a pessimistic estimate, so we can expect the actual mean
//! idle period to be higher."
//!
//! Our simulated controller can do better than hardware: it records the
//! exact busy interval of every request, so [`IdleReport`] carries both the
//! paper's estimator *and* the ground truth, and the test suite verifies the
//! estimator is indeed a lower bound.

use jafar_common::stats::{Counter, Histogram};
use jafar_common::time::{ClockDomain, Tick};

/// A set of (possibly overlapping) time intervals, finalised into a merged,
/// disjoint form for union-length and gap queries.
#[derive(Clone, Debug, Default)]
pub struct IntervalSet {
    intervals: Vec<(Tick, Tick)>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Records one `[start, end)` interval. Empty intervals are ignored.
    pub fn push(&mut self, start: Tick, end: Tick) {
        if end > start {
            self.intervals.push((start, end));
        }
    }

    /// Number of raw intervals recorded.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True if no intervals were recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Sorted, merged, disjoint intervals.
    pub fn merged(&self) -> Vec<(Tick, Tick)> {
        let mut v = self.intervals.clone();
        v.sort_unstable();
        let mut out: Vec<(Tick, Tick)> = Vec::with_capacity(v.len());
        for (s, e) in v {
            match out.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => out.push((s, e)),
            }
        }
        out
    }

    /// Total length of the union of all intervals.
    pub fn union_len(&self) -> Tick {
        self.merged().iter().map(|&(s, e)| e - s).sum()
    }

    /// Merges another set into this one.
    pub fn merge_from(&mut self, other: &IntervalSet) {
        self.intervals.extend_from_slice(&other.intervals);
    }

    /// The gaps between merged intervals within `[span_start, span_end)`,
    /// including any leading and trailing gap.
    pub fn gaps(&self, span_start: Tick, span_end: Tick) -> Vec<(Tick, Tick)> {
        let merged = self.merged();
        let mut gaps = Vec::new();
        let mut cursor = span_start;
        for (s, e) in merged {
            if s > cursor {
                gaps.push((cursor, s.min(span_end)));
            }
            cursor = cursor.max(e);
            if cursor >= span_end {
                break;
            }
        }
        if cursor < span_end {
            gaps.push((cursor, span_end));
        }
        gaps.retain(|&(s, e)| e > s);
        gaps
    }
}

/// Raw controller counters, in the style of the Xeon IMC events the paper
/// samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct McCounters {
    /// Read transactions completed.
    pub reads: Counter,
    /// Write transactions completed.
    pub writes: Counter,
    /// Requests rejected for queue-full backpressure.
    pub rejected: Counter,
    /// Row-buffer hits observed.
    pub row_hits: Counter,
    /// Row-buffer misses (bank idle).
    pub row_misses: Counter,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: Counter,
    /// Transactions requeued after a transient DRAM rejection (e.g. an
    /// injected refresh storm preempting a due refresh).
    pub requeued: Counter,
}

/// The end-of-run idle analysis of one controller.
#[derive(Clone, Debug)]
pub struct IdleReport {
    /// Wall-clock span analysed.
    pub span: Tick,
    /// Bus clock used to express cycle counts.
    pub bus_clock: ClockDomain,
    /// Exact cycles the read queue held ≥ 1 request (union of per-request
    /// residency intervals) — the simulated `RC_busy`.
    pub rc_busy_cycles: u64,
    /// Exact cycles the write queue held ≥ 1 request — `WC_busy`.
    pub wc_busy_cycles: u64,
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Ground truth: cycles during which *both* queues were empty.
    pub exact_idle_cycles: u64,
    /// Ground truth: distribution of contiguous idle-period lengths, in bus
    /// cycles.
    pub idle_periods: Histogram,
}

impl IdleReport {
    /// Builds the report from the two queues' busy interval sets.
    pub fn build(
        read_busy: &IntervalSet,
        write_busy: &IntervalSet,
        span: Tick,
        bus_clock: ClockDomain,
        reads: u64,
        writes: u64,
    ) -> Self {
        let mut both = IntervalSet::new();
        both.merge_from(read_busy);
        both.merge_from(write_busy);
        let mut idle_periods = Histogram::new();
        let mut exact_idle = Tick::ZERO;
        for (s, e) in both.gaps(Tick::ZERO, span) {
            let cycles = bus_clock.ticks_to_cycles(e - s);
            if cycles > 0 {
                idle_periods.record(cycles);
                exact_idle += e - s;
            }
        }
        IdleReport {
            span,
            bus_clock,
            rc_busy_cycles: bus_clock.ticks_to_cycles_ceil(read_busy.union_len()),
            wc_busy_cycles: bus_clock.ticks_to_cycles_ceil(write_busy.union_len()),
            reads,
            writes,
            exact_idle_cycles: bus_clock.ticks_to_cycles(exact_idle),
            idle_periods,
        }
    }

    /// Total bus cycles in the analysed span.
    pub fn total_cycles(&self) -> u64 {
        self.bus_clock.ticks_to_cycles(self.span)
    }

    /// The paper's lower bound: `total − RC_busy − WC_busy` (clamped at 0).
    pub fn mc_empty_estimate(&self) -> u64 {
        self.total_cycles()
            .saturating_sub(self.rc_busy_cycles)
            .saturating_sub(self.wc_busy_cycles)
    }

    /// The paper's estimator: `MC_empty / (#reads + #writes)`, in bus
    /// cycles. Returns 0 when there were no requests.
    pub fn mean_idle_period_estimate(&self) -> f64 {
        let reqs = self.reads + self.writes;
        if reqs == 0 {
            0.0
        } else {
            self.mc_empty_estimate() as f64 / reqs as f64
        }
    }

    /// Ground truth mean idle-period length, in bus cycles.
    pub fn mean_idle_period_exact(&self) -> f64 {
        self.idle_periods.summary().mean()
    }

    /// The §3.3 derivation: with each request occupying at least 4 bus
    /// cycles, how many 32-byte half-bursts fit into the mean idle period,
    /// and hence how many bytes JAFAR can process per idle period.
    pub fn jafar_bytes_per_idle_period(&self) -> u64 {
        let blocks = self.mean_idle_period_estimate() as u64 / 4;
        blocks * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Tick {
        Tick::from_ns(n)
    }

    #[test]
    fn interval_union_merges_overlaps() {
        let mut s = IntervalSet::new();
        s.push(ns(0), ns(10));
        s.push(ns(5), ns(15));
        s.push(ns(20), ns(25));
        s.push(ns(25), ns(30)); // adjacent — merges
        s.push(ns(3), ns(3)); // empty — ignored
        assert_eq!(s.len(), 4);
        assert_eq!(s.merged(), vec![(ns(0), ns(15)), (ns(20), ns(30))]);
        assert_eq!(s.union_len(), ns(25));
    }

    #[test]
    fn gaps_cover_leading_and_trailing() {
        let mut s = IntervalSet::new();
        s.push(ns(10), ns(20));
        s.push(ns(30), ns(40));
        let gaps = s.gaps(ns(0), ns(50));
        assert_eq!(
            gaps,
            vec![(ns(0), ns(10)), (ns(20), ns(30)), (ns(40), ns(50))]
        );
    }

    #[test]
    fn gaps_of_empty_set_is_whole_span() {
        let s = IntervalSet::new();
        assert_eq!(s.gaps(ns(5), ns(15)), vec![(ns(5), ns(15))]);
    }

    #[test]
    fn gaps_clipped_to_span() {
        let mut s = IntervalSet::new();
        s.push(ns(0), ns(100));
        assert!(s.gaps(ns(10), ns(90)).is_empty());
    }

    #[test]
    fn report_estimator_is_lower_bound_of_exact() {
        let bus = ClockDomain::from_ghz(1);
        // Read busy [0,100) ns, write busy [50,150) ns — overlap [50,100).
        let mut rb = IntervalSet::new();
        rb.push(ns(0), ns(100));
        let mut wb = IntervalSet::new();
        wb.push(ns(50), ns(150));
        let report = IdleReport::build(&rb, &wb, ns(400), bus, 2, 1);
        assert_eq!(report.total_cycles(), 400);
        assert_eq!(report.rc_busy_cycles, 100);
        assert_eq!(report.wc_busy_cycles, 100);
        // Estimate ignores the 50-cycle overlap: 400-100-100 = 200.
        assert_eq!(report.mc_empty_estimate(), 200);
        // Exact: both queues empty only in [150, 400) = 250 cycles.
        assert_eq!(report.exact_idle_cycles, 250);
        assert!(report.mc_empty_estimate() <= report.exact_idle_cycles);
        // mean estimate = 200/3.
        assert!((report.mean_idle_period_estimate() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_period_distribution() {
        let bus = ClockDomain::from_ghz(1);
        let mut rb = IntervalSet::new();
        rb.push(ns(100), ns(200));
        rb.push(ns(300), ns(400));
        let wb = IntervalSet::new();
        let report = IdleReport::build(&rb, &wb, ns(1000), bus, 2, 0);
        // Idle periods: [0,100), [200,300), [400,1000) → 100, 100, 600 cyc.
        assert_eq!(report.idle_periods.count(), 3);
        assert_eq!(report.exact_idle_cycles, 800);
        let mean = report.mean_idle_period_exact();
        assert!((mean - 800.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn jafar_bytes_per_idle_period_matches_paper_arithmetic() {
        // Paper §3.3: a 500-cycle mean idle period / 4 cycles per request
        // = 125 blocks of 32 B = 4 KB.
        let bus = ClockDomain::from_ghz(1);
        let rb = IntervalSet::new();
        let wb = IntervalSet::new();
        // Construct: span 1000 cycles, 2 requests, zero busy → estimate
        // = 1000/2 = 500 cycles.
        let report = IdleReport::build(&rb, &wb, ns(1000), bus, 1, 1);
        assert_eq!(report.mean_idle_period_estimate(), 500.0);
        assert_eq!(report.jafar_bytes_per_idle_period(), 4000 /* 125*32 */);
    }

    #[test]
    fn zero_request_estimator() {
        let bus = ClockDomain::from_ghz(1);
        let report = IdleReport::build(&IntervalSet::new(), &IntervalSet::new(), ns(10), bus, 0, 0);
        assert_eq!(report.mean_idle_period_estimate(), 0.0);
    }
}
