//! Memory-access scheduling policies.
//!
//! §3.3 closes by motivating "additional work in memory access scheduling"
//! and cites the classic reordering literature [35, 36, 45]. We implement
//! the two canonical ends of that spectrum plus the starvation-capped
//! variant used in practice:
//!
//! - **FCFS**: strictly oldest-first. Simple, fair, poor row locality.
//! - **FR-FCFS**: first-ready (row hit) first, then oldest. The standard
//!   open-page policy; maximises row-buffer hits.
//! - **FR-FCFS with cap**: a row hit may bypass the oldest request at most
//!   `cap` times, bounding starvation.
//!
//! Policies pick among *queued, arrived* requests; write-drain mode decides
//! which queue is being served (see [`crate::controller`]).

use crate::request::MemRequest;
use jafar_common::time::Tick;
use jafar_dram::DramModule;

/// Scheduling policy for picking the next transaction from a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Strict first-come-first-served.
    Fcfs,
    /// First-ready FCFS: row hits first, oldest among equals, with a
    /// starvation cap (a pending oldest request can be bypassed at most
    /// `cap` consecutive times).
    FrFcfs {
        /// Maximum consecutive bypasses of the oldest request.
        cap: u32,
    },
}

impl Default for Policy {
    fn default() -> Self {
        // The cap of 16 follows common practice (bounded bypassing).
        Policy::FrFcfs { cap: 16 }
    }
}

/// Picks the index of the next request to service from `queue` (already
/// filtered to servable requests), or `None` if the queue is empty.
///
/// `bypass_count` is the running count of consecutive times the oldest
/// request has been bypassed; the caller resets it whenever the oldest is
/// served.
pub fn pick(
    policy: Policy,
    queue: &[(u64, MemRequest)],
    module: &DramModule,
    now: Tick,
    bypass_count: u32,
) -> Option<usize> {
    if queue.is_empty() {
        return None;
    }
    // Only consider requests that have arrived.
    let arrived: Vec<usize> = (0..queue.len())
        .filter(|&i| queue[i].1.arrival <= now)
        .collect();
    if arrived.is_empty() {
        return None;
    }
    let oldest = *arrived
        .iter()
        .min_by_key(|&&i| (queue[i].1.arrival, queue[i].0))
        .expect("nonempty");
    match policy {
        Policy::Fcfs => Some(oldest),
        Policy::FrFcfs { cap } => {
            if bypass_count >= cap {
                return Some(oldest);
            }
            // Row hit: the target row is open in its bank right now.
            let is_hit = |req: &MemRequest| {
                let c = module.decoder().decode(req.addr);
                module.bank(c.rank, c.bank).open_row() == Some(c.row)
            };
            let hit = arrived
                .iter()
                .copied()
                .filter(|&i| is_hit(&queue[i].1))
                .min_by_key(|&i| (queue[i].1.arrival, queue[i].0));
            Some(hit.unwrap_or(oldest))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_dram::{
        AddressMapping, Coord, DramGeometry, DramModule, DramTiming, PhysAddr, Requester,
    };

    fn module_with_open_row() -> DramModule {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RowBankRankBlock,
        );
        // Open row 2 of (rank 0, bank 0).
        m.serve_block(
            Coord {
                rank: 0,
                bank: 0,
                row: 2,
                block: 0,
            },
            false,
            Requester::Host,
            Tick::ZERO,
            None,
        )
        .unwrap();
        m
    }

    /// Address of (rank 0, bank 0, row, block) under the tiny geometry's
    /// streaming mapping.
    fn addr(m: &DramModule, row: u32, block: u32) -> PhysAddr {
        m.decoder().encode(Coord {
            rank: 0,
            bank: 0,
            row,
            block,
        })
    }

    fn q(reqs: &[MemRequest]) -> Vec<(u64, MemRequest)> {
        reqs.iter()
            .copied()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect()
    }

    #[test]
    fn fcfs_picks_oldest() {
        let m = module_with_open_row();
        let queue = q(&[
            MemRequest::read(addr(&m, 2, 1), Tick::from_ns(10)), // row hit, newer
            MemRequest::read(addr(&m, 5, 0), Tick::from_ns(5)),  // miss, older
        ]);
        let picked = pick(Policy::Fcfs, &queue, &m, Tick::from_ns(100), 0);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn frfcfs_prefers_row_hit() {
        let m = module_with_open_row();
        let queue = q(&[
            MemRequest::read(addr(&m, 2, 1), Tick::from_ns(10)), // hit, newer
            MemRequest::read(addr(&m, 5, 0), Tick::from_ns(5)),  // miss, older
        ]);
        let picked = pick(
            Policy::FrFcfs { cap: 16 },
            &queue,
            &m,
            Tick::from_ns(100),
            0,
        );
        assert_eq!(picked, Some(0));
    }

    #[test]
    fn frfcfs_cap_forces_oldest() {
        let m = module_with_open_row();
        let queue = q(&[
            MemRequest::read(addr(&m, 2, 1), Tick::from_ns(10)),
            MemRequest::read(addr(&m, 5, 0), Tick::from_ns(5)),
        ]);
        let picked = pick(Policy::FrFcfs { cap: 4 }, &queue, &m, Tick::from_ns(100), 4);
        assert_eq!(picked, Some(1), "cap reached — oldest must be served");
    }

    #[test]
    fn future_arrivals_invisible() {
        let m = module_with_open_row();
        let queue = q(&[MemRequest::read(addr(&m, 2, 1), Tick::from_ns(50))]);
        assert_eq!(pick(Policy::Fcfs, &queue, &m, Tick::from_ns(10), 0), None);
        assert_eq!(
            pick(Policy::Fcfs, &queue, &m, Tick::from_ns(50), 0),
            Some(0)
        );
    }

    #[test]
    fn empty_queue() {
        let m = module_with_open_row();
        assert_eq!(pick(Policy::default(), &[], &m, Tick::ZERO, 0), None);
    }

    #[test]
    fn frfcfs_all_misses_falls_back_to_oldest() {
        let m = module_with_open_row();
        let queue = q(&[
            MemRequest::read(addr(&m, 7, 0), Tick::from_ns(9)),
            MemRequest::read(addr(&m, 8, 0), Tick::from_ns(3)),
        ]);
        let picked = pick(Policy::default(), &queue, &m, Tick::from_ns(100), 0);
        assert_eq!(picked, Some(1));
    }

    #[test]
    fn tiebreak_on_equal_arrival_uses_id() {
        let m = module_with_open_row();
        let queue = q(&[
            MemRequest::read(addr(&m, 7, 0), Tick::from_ns(5)),
            MemRequest::read(addr(&m, 8, 0), Tick::from_ns(5)),
        ]);
        let picked = pick(Policy::Fcfs, &queue, &m, Tick::from_ns(100), 0);
        assert_eq!(picked, Some(0), "lower id wins the tie");
    }
}
