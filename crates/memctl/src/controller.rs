//! The transaction-level memory controller.
//!
//! The controller owns one [`DramModule`] and services 64-byte read/write
//! transactions from a read queue and a write queue:
//!
//! - **Reads first**: demand reads are latency-critical; writes buffer.
//! - **Write drain**: when the write queue passes a high watermark (or the
//!   read queue is empty), the controller switches to draining writes until
//!   a low watermark — the standard watermark policy.
//! - **Policy-driven picking** within a queue: FCFS or FR-FCFS
//!   ([`crate::sched`]).
//! - **Ownership-aware holding**: requests that target a rank currently
//!   owned by the NDP device are held in the queue (never issued) until the
//!   rank is released — the §2.2 arbitration contract.
//!
//! Decision timing is *transaction-pipelined*: after issuing a transaction's
//! CAS, the controller may make its next decision one bus cycle later, so
//! precharges/activates for other banks overlap in-flight data bursts; the
//! module's bank reservations and shared-bus constraint enforce legality.
//!
//! Queue-occupancy accounting records each request's exact residency
//! interval `[arrival, done)`; [`MemoryController::finalize`] turns these
//! into the Figure-4 counters.

use crate::counters::{IdleReport, IntervalSet, McCounters};
use crate::request::{Completion, MemRequest, ReqId};
use crate::sched::{pick, Policy};
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::time::Tick;
use jafar_dram::{BlockAccess, DramCommand, DramModule, IssueError, Requester, RowOutcome};

/// Why a request could not be enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// The target queue is at capacity; retry after servicing.
    QueueFull,
    /// The address exceeds the module capacity.
    OutOfRange,
}

/// Why an ownership transfer failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnershipError {
    /// Requests to the rank are still queued; drain first.
    PendingRequests,
    /// The underlying MRS command was rejected.
    Mrs(IssueError),
}

/// Sizing and watermark configuration.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Read queue capacity.
    pub read_queue: usize,
    /// Write queue capacity.
    pub write_queue: usize,
    /// Enter write-drain mode at this write-queue depth.
    pub drain_high: usize,
    /// Leave write-drain mode at this write-queue depth.
    pub drain_low: usize,
    /// Scheduling policy.
    pub policy: Policy,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            read_queue: 32,
            write_queue: 32,
            drain_high: 24,
            drain_low: 8,
            policy: Policy::default(),
        }
    }
}

/// The memory controller.
pub struct MemoryController {
    module: DramModule,
    config: ControllerConfig,
    read_q: Vec<(u64, MemRequest)>,
    write_q: Vec<(u64, MemRequest)>,
    next_id: u64,
    draining: bool,
    bypass_count: u32,
    /// Decision cursor: the controller cannot make a scheduling decision
    /// before this tick.
    cursor: Tick,
    counters: McCounters,
    read_busy: IntervalSet,
    write_busy: IntervalSet,
    tracer: SharedTracer,
}

impl MemoryController {
    /// Builds a controller over `module`.
    pub fn new(module: DramModule, config: ControllerConfig) -> Self {
        assert!(config.drain_low < config.drain_high);
        assert!(config.drain_high <= config.write_queue);
        MemoryController {
            module,
            config,
            read_q: Vec::new(),
            write_q: Vec::new(),
            next_id: 0,
            draining: false,
            bypass_count: 0,
            cursor: Tick::ZERO,
            counters: McCounters::default(),
            read_busy: IntervalSet::new(),
            write_busy: IntervalSet::new(),
            tracer: SharedTracer::disabled(),
        }
    }

    /// Attaches an event tracer to the controller *and* its DRAM module.
    /// Scheduling decisions, ownership transfers and all DRAM-level events
    /// are emitted into it. Purely observational — no timing changes.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.module.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// The attached tracer (disabled by default).
    pub fn tracer(&self) -> &SharedTracer {
        &self.tracer
    }

    /// The DRAM module behind this controller.
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// Mutable access to the module — used by the simulation layer to place
    /// workload data and by the JAFAR device to stream an owned rank.
    pub fn module_mut(&mut self) -> &mut DramModule {
        &mut self.module
    }

    /// Raw counters.
    pub fn counters(&self) -> &McCounters {
        &self.counters
    }

    /// Queued (unserviced) request count.
    pub fn pending(&self) -> usize {
        self.read_q.len() + self.write_q.len()
    }

    /// Queued requests targeting `rank`.
    pub fn pending_for_rank(&self, rank: u32) -> usize {
        let count = |q: &[(u64, MemRequest)]| {
            q.iter()
                .filter(|(_, r)| self.module.decoder().decode(r.addr).rank == rank)
                .count()
        };
        count(&self.read_q) + count(&self.write_q)
    }

    /// Enqueues a transaction.
    ///
    /// # Errors
    /// [`EnqueueError::QueueFull`] on backpressure, [`EnqueueError::OutOfRange`]
    /// for addresses beyond the module.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<ReqId, EnqueueError> {
        if req.addr.0 >= self.module.geometry().capacity_bytes() {
            return Err(EnqueueError::OutOfRange);
        }
        let (q, cap) = if req.is_write {
            (&mut self.write_q, self.config.write_queue)
        } else {
            (&mut self.read_q, self.config.read_queue)
        };
        if q.len() >= cap {
            self.counters.rejected.inc();
            return Err(EnqueueError::QueueFull);
        }
        let id = self.next_id;
        self.next_id += 1;
        q.push((id, req));
        Ok(ReqId(id))
    }

    fn servable(&self, req: &MemRequest) -> bool {
        let rank = self.module.decoder().decode(req.addr).rank;
        !self.module.rank_owned_by_ndp(rank)
    }

    /// Earliest arrival among servable queued requests, or `None`.
    fn earliest_arrival(&self) -> Option<Tick> {
        self.read_q
            .iter()
            .chain(self.write_q.iter())
            .filter(|(_, r)| self.servable(r))
            .map(|(_, r)| r.arrival)
            .min()
    }

    /// Decides which queue to serve from, honouring write-drain watermarks.
    /// Returns `true` for the write queue.
    fn choose_write_queue(&mut self, now: Tick) -> Option<bool> {
        let reads_ready = self
            .read_q
            .iter()
            .any(|(_, r)| r.arrival <= now && self.servable(r));
        let writes_ready = self
            .write_q
            .iter()
            .any(|(_, r)| r.arrival <= now && self.servable(r));
        if self.write_q.len() >= self.config.drain_high {
            self.draining = true;
        }
        if self.draining && self.write_q.len() <= self.config.drain_low {
            self.draining = false;
        }
        match (reads_ready, writes_ready) {
            (false, false) => None,
            (true, false) => Some(false),
            (false, true) => Some(true),
            (true, true) => Some(self.draining),
        }
    }

    /// Services one transaction, if any is ready. Returns its completion.
    ///
    /// Advances the internal decision cursor; requests that have not yet
    /// arrived by the cursor are waited for (the cursor jumps to the next
    /// arrival when all queues are momentarily empty of arrived requests).
    ///
    /// A transaction rejected by a transient DRAM condition (e.g. an
    /// injected refresh storm preempting a due refresh) is requeued with
    /// its arrival bumped to the earliest retry tick; the controller moves
    /// on rather than panicking or spinning.
    pub fn service_one(&mut self) -> Option<Completion> {
        loop {
            let now = self.cursor.max(self.earliest_arrival()?);
            let use_writes = self.choose_write_queue(now)?;
            let module = &self.module;
            let queue = if use_writes {
                &self.write_q
            } else {
                &self.read_q
            };
            // Hold requests to NDP-owned ranks: filter, pick, then map back.
            let candidates: Vec<(u64, MemRequest)> = queue
                .iter()
                .filter(|(_, r)| self.servable(r))
                .copied()
                .collect();
            let picked = pick(
                self.config.policy,
                &candidates,
                module,
                now,
                self.bypass_count,
            )?;
            let (id, req) = candidates[picked];

            // Starvation-cap accounting: did we bypass the oldest arrived one?
            let oldest = candidates
                .iter()
                .filter(|(_, r)| r.arrival <= now)
                .min_by_key(|(cid, r)| (r.arrival, *cid))
                .map(|(cid, _)| *cid);
            if oldest == Some(id) {
                self.bypass_count = 0;
            } else {
                self.bypass_count += 1;
            }

            self.tracer.emit(
                now,
                EventKind::SchedDecision {
                    queue: if use_writes { "write" } else { "read" },
                    picked: id,
                    queued: (self.read_q.len() + self.write_q.len()) as u32,
                },
            );

            let queue = if use_writes {
                &mut self.write_q
            } else {
                &mut self.read_q
            };
            let pos = queue
                .iter()
                .position(|(qid, _)| *qid == id)
                .expect("present");
            queue.remove(pos);

            let access =
                match self
                    .module
                    .serve_addr(req.addr, req.is_write, Requester::Host, now, None)
                {
                    Ok(a) => a,
                    Err(e) => {
                        // Requeue with the arrival bumped to the earliest
                        // retry tick and advance the cursor by at least one
                        // bus cycle so the decision loop makes progress.
                        let retry_at = match e {
                            IssueError::TooEarly(t) => t,
                            _ => now + self.module.timing().bus_clock.period(),
                        };
                        let mut requeued = req;
                        requeued.arrival = requeued.arrival.max(retry_at);
                        let queue = if req.is_write {
                            &mut self.write_q
                        } else {
                            &mut self.read_q
                        };
                        queue.push((id, requeued));
                        self.counters.requeued.inc();
                        // The next iteration recomputes `now` from the
                        // earliest arrival, so a lone requeued request is
                        // retried exactly at `retry_at`.
                        self.cursor =
                            self.cursor.max(now) + self.module.timing().bus_clock.period();
                        self.tracer.emit(
                            now,
                            EventKind::ErrorSurfaced {
                                site: "memctl",
                                detail: "requeued",
                            },
                        );
                        continue;
                    }
                };
            return Some(self.complete(id, req, access, now));
        }
    }

    fn complete(&mut self, id: u64, req: MemRequest, access: BlockAccess, now: Tick) -> Completion {
        match access.outcome {
            RowOutcome::Hit => self.counters.row_hits.inc(),
            RowOutcome::Miss => self.counters.row_misses.inc(),
            RowOutcome::Conflict => self.counters.row_conflicts.inc(),
        }
        if req.is_write {
            self.counters.writes.inc();
            self.write_busy.push(req.arrival, access.data_ready);
        } else {
            self.counters.reads.inc();
            self.read_busy.push(req.arrival, access.data_ready);
        }

        // Next decision: one bus cycle after this CAS issued, so command
        // work for other banks overlaps the in-flight burst.
        let t = self.module.timing();
        let cas_lead = if req.is_write { t.cwl } else { t.cl };
        let cas_at = access.data_ready.saturating_sub(cas_lead + t.t_burst);
        self.cursor = cas_at.max(now) + t.bus_clock.period();

        Completion {
            id: ReqId(id),
            request: req,
            done: access.data_ready,
            outcome: access.outcome,
            data: access.data,
        }
    }

    /// Services every servable queued transaction, in policy order. Requests
    /// held for NDP-owned ranks remain queued.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::with_capacity(self.pending());
        while let Some(c) = self.service_one() {
            out.push(c);
        }
        out
    }

    /// Transfers rank ownership to (or from) the NDP device by issuing the
    /// MR3/MPR mode-register write. All queued requests for the rank must
    /// have been drained. Returns the tick at which the transfer is
    /// effective.
    ///
    /// # Errors
    /// [`OwnershipError::PendingRequests`] if requests for the rank are
    /// still queued; [`OwnershipError::Mrs`] if the rank cannot quiesce.
    pub fn set_rank_ownership(
        &mut self,
        rank: u32,
        owned: bool,
        now: Tick,
    ) -> Result<Tick, OwnershipError> {
        if self.pending_for_rank(rank) > 0 {
            return Err(OwnershipError::PendingRequests);
        }
        let now = now.max(self.cursor);
        // Quiesce: close any open rows, run due refreshes first. A refresh
        // storm preempting the schedule surfaces here as a recoverable
        // `Mrs(TooEarly)` — retry once the storm drains.
        let after_refresh = self
            .module
            .maintain_refresh(rank, now, Requester::Host)
            .map_err(OwnershipError::Mrs)?;
        let pre = DramCommand::PrechargeAll { rank };
        let at = self
            .module
            .earliest_issue(pre, Requester::Host, after_refresh)
            .map_err(OwnershipError::Mrs)?;
        self.module
            .issue(pre, Requester::Host, at, None)
            .map_err(OwnershipError::Mrs)?;
        let value = self.module.mode_regs(rank).mr3_with_ownership(owned);
        let mrs = DramCommand::ModeRegisterSet { rank, mr: 3, value };
        let at = self
            .module
            .earliest_issue(mrs, Requester::Host, at)
            .map_err(OwnershipError::Mrs)?;
        self.module
            .issue(mrs, Requester::Host, at, None)
            .map_err(OwnershipError::Mrs)?;
        // The module emits the OwnershipChange event at the flip itself,
        // so both this path and the driver's direct grant trace uniformly.
        let effective = at + self.module.timing().t_mod;
        self.cursor = self.cursor.max(effective);
        Ok(effective)
    }

    /// Builds the Figure-4 idle report over `[0, span)`.
    pub fn finalize(&self, span: Tick) -> IdleReport {
        IdleReport::build(
            &self.read_busy,
            &self.write_busy,
            span,
            self.module.timing().bus_clock,
            self.counters.reads.get(),
            self.counters.writes.get(),
        )
    }

    /// Resets queue-occupancy accounting and counters (keeps DRAM state) —
    /// used between measured query phases.
    pub fn reset_accounting(&mut self) {
        self.counters = McCounters::default();
        self.read_busy = IntervalSet::new();
        self.write_busy = IntervalSet::new();
    }

    /// The controller's decision cursor (for tests and the sim layer).
    pub fn cursor(&self) -> Tick {
        self.cursor
    }

    /// Moves the decision cursor forward (e.g. to model the host being busy
    /// computing until `t`). Never moves backward.
    pub fn advance_cursor(&mut self, t: Tick) {
        self.cursor = self.cursor.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Origin;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming, PhysAddr};

    fn controller(policy: Policy) -> MemoryController {
        let module = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RowBankRankBlock,
        );
        MemoryController::new(
            module,
            ControllerConfig {
                policy,
                ..ControllerConfig::default()
            },
        )
    }

    #[test]
    fn single_read_latency() {
        let mut mc = controller(Policy::default());
        mc.enqueue(MemRequest::read(PhysAddr(0), Tick::ZERO))
            .unwrap();
        let c = mc.service_one().unwrap();
        // Closed row: ACT + tRCD + CL + tBURST = 30 ns.
        assert_eq!(c.done, Tick::from_ns(30));
        assert_eq!(mc.counters().reads.get(), 1);
        assert!(mc.service_one().is_none());
    }

    #[test]
    fn streaming_reads_pipeline() {
        let mut mc = controller(Policy::default());
        for i in 0..16u64 {
            mc.enqueue(MemRequest::read(PhysAddr(i * 64), Tick::ZERO))
                .unwrap();
        }
        let completions = mc.drain();
        assert_eq!(completions.len(), 16);
        // All in the same row (tiny row = 16 blocks): 1 miss + 15 hits,
        // bursts back-to-back at 4 ns.
        assert_eq!(mc.counters().row_hits.get(), 15);
        let total = completions.last().unwrap().done;
        // 30 ns first + 15 * 4 ns = 90 ns.
        assert_eq!(total, Tick::from_ns(90));
    }

    #[test]
    fn frfcfs_beats_fcfs_on_interleaved_rows() {
        // Two requests to row A, one to row B (same bank), arrival order
        // A, B, A. FR-FCFS serves A,A,B (1 conflict); FCFS serves A,B,A
        // (2 conflicts).
        let run = |policy: Policy| {
            let mut mc = controller(policy);
            let dec = *mc.module().decoder();
            let a0 = dec.encode(jafar_dram::Coord {
                rank: 0,
                bank: 0,
                row: 0,
                block: 0,
            });
            let b = dec.encode(jafar_dram::Coord {
                rank: 0,
                bank: 0,
                row: 1,
                block: 0,
            });
            let a1 = dec.encode(jafar_dram::Coord {
                rank: 0,
                bank: 0,
                row: 0,
                block: 1,
            });
            mc.enqueue(MemRequest::read(a0, Tick::ZERO)).unwrap();
            mc.enqueue(MemRequest::read(b, Tick::from_ps(1000)))
                .unwrap();
            mc.enqueue(MemRequest::read(a1, Tick::from_ps(2000)))
                .unwrap();
            let completions = mc.drain();
            (
                completions.last().unwrap().done,
                mc.counters().row_conflicts.get(),
            )
        };
        let (fcfs_done, fcfs_conflicts) = run(Policy::Fcfs);
        let (fr_done, fr_conflicts) = run(Policy::FrFcfs { cap: 16 });
        assert_eq!(fcfs_conflicts, 2);
        assert_eq!(fr_conflicts, 1);
        assert!(fr_done < fcfs_done, "fr={fr_done} fcfs={fcfs_done}");
    }

    #[test]
    fn write_drain_watermarks() {
        let mut mc = controller(Policy::default());
        // Fill write queue past the high watermark along with one read.
        for i in 0..24u64 {
            mc.enqueue(MemRequest::writeback(PhysAddr(i * 64), Tick::ZERO))
                .unwrap();
        }
        mc.enqueue(MemRequest::read(PhysAddr(0), Tick::ZERO))
            .unwrap();
        // First service call should pick a WRITE (drain mode).
        let first = mc.service_one().unwrap();
        assert!(first.request.is_write);
        // Drain proceeds until low watermark, then the read is served.
        let mut served_read_at_position = None;
        for pos in 1.. {
            let Some(c) = mc.service_one() else { break };
            if !c.request.is_write {
                served_read_at_position = Some(pos);
                break;
            }
        }
        // 24 writes, drain_low = 8 → 16 writes (positions 0..15), read at 16.
        assert_eq!(served_read_at_position, Some(16));
    }

    #[test]
    fn reads_priority_over_buffered_writes() {
        let mut mc = controller(Policy::default());
        for i in 0..4u64 {
            mc.enqueue(MemRequest::writeback(PhysAddr(i * 64), Tick::ZERO))
                .unwrap();
        }
        mc.enqueue(MemRequest::read(PhysAddr(0), Tick::ZERO))
            .unwrap();
        let first = mc.service_one().unwrap();
        assert!(!first.request.is_write, "read must bypass buffered writes");
    }

    #[test]
    fn queue_full_backpressure() {
        let mut mc = controller(Policy::default());
        for i in 0..32u64 {
            mc.enqueue(MemRequest::read(PhysAddr(i * 64), Tick::ZERO))
                .unwrap();
        }
        let err = mc
            .enqueue(MemRequest::read(PhysAddr(33 * 64), Tick::ZERO))
            .unwrap_err();
        assert_eq!(err, EnqueueError::QueueFull);
        assert_eq!(mc.counters().rejected.get(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut mc = controller(Policy::default());
        let cap = mc.module().geometry().capacity_bytes();
        assert_eq!(
            mc.enqueue(MemRequest::read(PhysAddr(cap), Tick::ZERO)),
            Err(EnqueueError::OutOfRange)
        );
    }

    #[test]
    fn ownership_holds_requests_for_owned_rank() {
        let mut mc = controller(Policy::default());
        let dec = *mc.module().decoder();
        let rank1_addr = dec.encode(jafar_dram::Coord {
            rank: 1,
            bank: 0,
            row: 0,
            block: 0,
        });
        // Grant rank 0 to NDP.
        let t = mc.set_rank_ownership(0, true, Tick::ZERO).unwrap();
        assert!(mc.module().rank_owned_by_ndp(0));
        assert!(t > Tick::ZERO);
        // Requests: one to rank 0 (held), one to rank 1 (serviced).
        mc.enqueue(MemRequest::read(PhysAddr(0), t)).unwrap();
        mc.enqueue(MemRequest::read(rank1_addr, t)).unwrap();
        let completions = mc.drain();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].request.addr, rank1_addr);
        assert_eq!(mc.pending(), 1);
        assert_eq!(mc.pending_for_rank(0), 1);
        // Releasing with pending requests fails; after release the held
        // request drains. (Release requires no pending — so drain order is:
        // release is *blocked*; use the Ndp-side release path in jafar-core.
        // Here we verify the error.)
        assert_eq!(
            mc.set_rank_ownership(0, false, t),
            Err(OwnershipError::PendingRequests)
        );
    }

    #[test]
    fn ownership_release_resumes_service() {
        let mut mc = controller(Policy::default());
        let t = mc.set_rank_ownership(0, true, Tick::ZERO).unwrap();
        let t2 = mc.set_rank_ownership(0, false, t).unwrap();
        assert!(!mc.module().rank_owned_by_ndp(0));
        mc.enqueue(MemRequest::read(PhysAddr(0), t2)).unwrap();
        assert_eq!(mc.drain().len(), 1);
    }

    #[test]
    fn idle_report_sees_gap_between_batches() {
        let mut mc = controller(Policy::default());
        mc.enqueue(MemRequest::read(PhysAddr(0), Tick::ZERO))
            .unwrap();
        let c1 = mc.drain().pop().unwrap();
        // Second batch arrives 1 µs later (CPU was computing).
        let later = c1.done + Tick::from_us(1);
        mc.enqueue(MemRequest::read(PhysAddr(64), later)).unwrap();
        let c2 = mc.drain().pop().unwrap();
        let report = mc.finalize(c2.done);
        assert_eq!(report.reads, 2);
        // There is an idle period of roughly 1 µs = 1000 bus cycles.
        assert!(report.idle_periods.count() >= 1);
        assert!(report.exact_idle_cycles >= 990);
        // The paper's estimator is a lower bound on the exact idle time.
        assert!(report.mc_empty_estimate() <= report.exact_idle_cycles);
    }

    #[test]
    fn completion_carries_functional_data() {
        let mut mc = controller(Policy::default());
        mc.module_mut().data_mut().write_u64(PhysAddr(128), 77);
        mc.enqueue(MemRequest::read(PhysAddr(128), Tick::ZERO))
            .unwrap();
        let c = mc.drain().pop().unwrap();
        let data = c.data.unwrap();
        assert_eq!(u64::from_le_bytes(data[0..8].try_into().unwrap()), 77);
        assert_eq!(c.request.origin, Origin::CpuDemand);
    }

    #[test]
    fn cursor_advances_monotonically() {
        let mut mc = controller(Policy::default());
        mc.advance_cursor(Tick::from_ns(100));
        mc.advance_cursor(Tick::from_ns(50));
        assert_eq!(mc.cursor(), Tick::from_ns(100));
        // A request arriving earlier than the cursor is served at the
        // cursor, not before.
        mc.enqueue(MemRequest::read(PhysAddr(0), Tick::ZERO))
            .unwrap();
        let c = mc.service_one().unwrap();
        assert!(c.done >= Tick::from_ns(100));
    }
}
