//! NDP sorting (§4, "Sorting").
//!
//! "Sorting is used widely in database query plans, such as sorting a
//! position list after an index scan or in an order-based group by ...
//! JAFAR can easily incorporate a fixed function sort accelerator to
//! support sorting. Because ASIC sorters are generally costly in terms of
//! area, implementations are typically limited to sorting a small number
//! of elements at a time. This does not prevent sorting larger datasets,
//! using a divide-and-conquer approach."
//!
//! The model: a fixed-function **bitonic sorting network** over `k`
//! elements (area-limited, so `k` is small — 64 by default) producing
//! sorted runs in one streaming pass, followed by in-memory k-way **merge
//! passes** (the divide-and-conquer step), all reading and writing the
//! owned rank. The network is fully pipelined: one element enters per
//! device cycle; its depth `O(log² k)` adds only fill latency. Merge
//! passes stream at one element per cycle per pass.

use crate::device::{DeviceError, JafarDevice};
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr, Requester};

/// A sort job over a packed `i64` column.
#[derive(Clone, Copy, Debug)]
pub struct SortJob {
    /// 64-byte-aligned input base.
    pub col_addr: PhysAddr,
    /// Elements to sort.
    pub rows: u64,
    /// 64-byte-aligned output base (also used, with the input region, as
    /// the ping-pong buffer for merge passes; must hold `rows` values).
    pub out_addr: PhysAddr,
}

/// Result of a sort.
#[derive(Clone, Copy, Debug)]
pub struct SortRun {
    /// Completion tick.
    pub end: Tick,
    /// Where the sorted data ended up (ping-pong may land it in either
    /// region).
    pub result_addr: PhysAddr,
    /// Sorted-run generation + merge passes performed.
    pub passes: u32,
    /// Total bursts moved (read + written) on the DIMM.
    pub bursts_moved: u64,
}

/// The bitonic network's comparator count for `k` elements:
/// `k/2 · log k · (log k + 1) / 2` — the area cost that limits `k`.
pub fn bitonic_comparators(k: u64) -> u64 {
    debug_assert!(k.is_power_of_two());
    let log = k.trailing_zeros() as u64;
    k / 2 * log * (log + 1) / 2
}

impl JafarDevice {
    /// Sorts `job.rows` values ascending using the fixed-function network
    /// plus divide-and-conquer merge passes, entirely on the owned rank.
    ///
    /// # Errors
    /// Same validation as [`JafarDevice::run_select`].
    ///
    /// # Panics
    /// Panics if input and output regions overlap.
    pub fn run_sort(
        &mut self,
        module: &mut DramModule,
        job: SortJob,
        start: Tick,
    ) -> Result<SortRun, DeviceError> {
        if job.col_addr.block_offset() != 0 || job.out_addr.block_offset() != 0 {
            return Err(DeviceError::Misaligned);
        }
        let bytes = job.rows * 8;
        assert!(
            job.col_addr.0 + bytes <= job.out_addr.0 || job.out_addr.0 + bytes <= job.col_addr.0,
            "sort regions must not overlap"
        );
        let rank = module.decoder().decode(job.col_addr).rank;
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        if job.rows == 0 {
            return Ok(SortRun {
                end: start,
                result_addr: job.out_addr,
                passes: 0,
                bursts_moved: 0,
            });
        }

        let k = 64u64; // network width: area-limited (§4)
        let ps_per_word = self.ps_per_word();
        let network_depth = {
            // log k · (log k + 1) / 2 pipeline stages.
            let log = k.trailing_zeros() as u64;
            log * (log + 1) / 2
        };

        // Pass 0: stream input through the network, emitting sorted runs
        // of k to the output region. Functionally we read/sort/write via
        // the module's backing store; timing is one element per cycle plus
        // the network fill.
        let mut values = vec![0i64; job.rows as usize];
        for (i, v) in values.iter_mut().enumerate() {
            *v = module
                .data()
                .read_i64(PhysAddr(job.col_addr.0 + i as u64 * 8));
        }
        let mut now = start;
        let mut bursts_moved = 0u64;
        let stream_pass =
            |module: &mut DramModule, from: PhysAddr, to: PhysAddr, now: Tick, bursts: &mut u64| {
                // Timing: read-stream + write-stream, overlapped; the pass
                // rate is one word per device cycle, bounded below by the
                // DRAM round trip for the first burst.
                let mut t = now;
                let total_bursts = job.rows.div_ceil(8);
                let timing = *module.timing();
                let cas_pipeline = timing.cl + timing.t_burst;
                let mut issue = now;
                for b in 0..total_bursts {
                    let access = module
                        .serve_addr(
                            PhysAddr(from.0 + b * 64),
                            false,
                            Requester::Ndp,
                            issue,
                            None,
                        )
                        .expect("rank validated");
                    let cas_at = access.data_ready.saturating_sub(cas_pipeline);
                    issue = cas_at.max(issue) + timing.bus_clock.period();
                    t = t.max(access.data_ready);
                    t += Tick::from_ps(8 * ps_per_word);
                    // Output burst follows one network-depth behind.
                    module
                        .serve_addr(PhysAddr(to.0 + b * 64), true, Requester::Ndp, t, None)
                        .expect("rank validated");
                    *bursts += 2;
                }
                t + Tick::from_ps(network_depth * ps_per_word)
            };

        // Functional run generation.
        for chunk in values.chunks_mut(k as usize) {
            chunk.sort_unstable(); // the network's effect on one run
        }
        now = stream_pass(module, job.col_addr, job.out_addr, now, &mut bursts_moved);
        let mut passes = 1u32;
        let mut run_len = k;
        // Ping-pong merge passes.
        let mut src_is_out = true;
        while run_len < job.rows {
            let mut merged = Vec::with_capacity(values.len());
            for pair in values.chunks(2 * run_len as usize) {
                let mid = (run_len as usize).min(pair.len());
                let (a, b) = pair.split_at(mid);
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    if a[i] <= b[j] {
                        merged.push(a[i]);
                        i += 1;
                    } else {
                        merged.push(b[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&a[i..]);
                merged.extend_from_slice(&b[j..]);
            }
            values = merged;
            let (from, to) = if src_is_out {
                (job.out_addr, job.col_addr)
            } else {
                (job.col_addr, job.out_addr)
            };
            now = stream_pass(module, from, to, now, &mut bursts_moved);
            src_is_out = !src_is_out;
            run_len *= 2;
            passes += 1;
        }

        // Write the functional result to wherever the last pass landed.
        let result_addr = if src_is_out {
            job.out_addr
        } else {
            job.col_addr
        };
        for (i, v) in values.iter().enumerate() {
            module
                .data_mut()
                .write_i64(PhysAddr(result_addr.0 + i as u64 * 8), *v);
        }

        Ok(SortRun {
            end: now,
            result_addr,
            passes,
            bursts_moved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ownership::grant_ownership;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    fn setup() -> (JafarDevice, DramModule, Tick) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        let t0 = lease.acquired_at;

        (JafarDevice::paper_default(), m, t0)
    }

    fn put(m: &mut DramModule, addr: u64, values: &[i64]) {
        for (i, v) in values.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(addr + i as u64 * 8), *v);
        }
    }

    #[test]
    fn sorts_random_data() {
        let (mut d, mut m, t0) = setup();
        let mut rng = SplitMix64::new(9);
        let values: Vec<i64> = (0..3000)
            .map(|_| rng.next_range_inclusive(-500, 500))
            .collect();
        put(&mut m, 0, &values);
        let run = d
            .run_sort(
                &mut m,
                SortJob {
                    col_addr: PhysAddr(0),
                    rows: 3000,
                    out_addr: PhysAddr(64 * 1024),
                },
                t0,
            )
            .unwrap();
        let mut expect = values.clone();
        expect.sort_unstable();
        for (i, want) in expect.iter().enumerate() {
            let got = m
                .data()
                .read_i64(PhysAddr(run.result_addr.0 + i as u64 * 8));
            assert_eq!(got, *want, "slot {i}");
        }
        // 3000 elements / 64-run network → runs, then ceil(log2(3000/64))
        // = 6 merge passes.
        assert_eq!(run.passes, 7);
    }

    #[test]
    fn already_sorted_and_tiny_inputs() {
        let (mut d, mut m, t0) = setup();
        put(&mut m, 0, &[1, 2, 3]);
        let run = d
            .run_sort(
                &mut m,
                SortJob {
                    col_addr: PhysAddr(0),
                    rows: 3,
                    out_addr: PhysAddr(4096),
                },
                t0,
            )
            .unwrap();
        assert_eq!(run.passes, 1, "fits one network pass");
        for (i, want) in [1i64, 2, 3].iter().enumerate() {
            assert_eq!(
                m.data()
                    .read_i64(PhysAddr(run.result_addr.0 + i as u64 * 8)),
                *want
            );
        }
        // Empty input is a no-op.
        let empty = d
            .run_sort(
                &mut m,
                SortJob {
                    col_addr: PhysAddr(0),
                    rows: 0,
                    out_addr: PhysAddr(4096),
                },
                run.end,
            )
            .unwrap();
        assert_eq!(empty.passes, 0);
        assert_eq!(empty.end, run.end);
    }

    #[test]
    fn time_scales_with_passes() {
        let (mut d, mut m, t0) = setup();
        let mut rng = SplitMix64::new(2);
        let small: Vec<i64> = (0..512).map(|_| rng.next_range_inclusive(0, 999)).collect();
        let large: Vec<i64> = (0..2048)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        put(&mut m, 0, &small);
        let run_small = d
            .run_sort(
                &mut m,
                SortJob {
                    col_addr: PhysAddr(0),
                    rows: 512,
                    out_addr: PhysAddr(64 * 1024),
                },
                t0,
            )
            .unwrap();
        put(&mut m, 0, &large);
        let run_large = d
            .run_sort(
                &mut m,
                SortJob {
                    col_addr: PhysAddr(0),
                    rows: 2048,
                    out_addr: PhysAddr(64 * 1024),
                },
                run_small.end,
            )
            .unwrap();
        let t_small = run_small.end - t0;
        let t_large = run_large.end - run_small.end;
        // 4x the data and +2 passes: comfortably more than 4x the time.
        assert!(t_large > t_small * 4, "{t_small:?} vs {t_large:?}");
        assert_eq!(run_large.passes, run_small.passes + 2);
    }

    #[test]
    fn comparator_area_model() {
        // §4: ASIC sorters are area-costly — quadratic-in-log growth.
        assert_eq!(bitonic_comparators(2), 1);
        assert_eq!(bitonic_comparators(4), 6);
        assert_eq!(bitonic_comparators(64), 64 / 2 * 6 * 7 / 2);
        assert!(bitonic_comparators(1024) > 16 * bitonic_comparators(64) / 8);
    }

    #[test]
    fn unowned_rejected_and_overlap_panics() {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let mut d = JafarDevice::paper_default();
        let err = d
            .run_sort(
                &mut m,
                SortJob {
                    col_addr: PhysAddr(0),
                    rows: 8,
                    out_addr: PhysAddr(4096),
                },
                Tick::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, DeviceError::NotOwned);
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_regions_panic() {
        let (mut d, mut m, t0) = setup();
        let _ = d.run_sort(
            &mut m,
            SortJob {
                col_addr: PhysAddr(0),
                rows: 64,
                out_addr: PhysAddr(256), // overlaps 64*8 = 512 bytes
            },
            t0,
        );
    }
}
