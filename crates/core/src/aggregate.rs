//! NDP aggregation (§4, "Aggregations").
//!
//! "Aggregations such as sum, average, minimum, maximum, etc. require
//! minimal additional hardware to support." The device streams a column the
//! same way the filter does and folds each word into an accumulator; an
//! optional predicate combines filter + aggregate in one pass. For
//! hash-based group-by, "there must be a limit to the number of hash
//! buckets JAFAR can support, which suggests that a hierarchical
//! aggregation approach will be required": the device keeps a small bucket
//! table and spills rows whose key conflicts to an overflow region in DRAM
//! for the CPU to merge.
//!
//! The hash unit is a multiply-shift stage standing in for the
//! fixed-function SHA/MD5 units the paper cites [9, 10, 47] — what matters
//! to the model is the pipelined fixed-function latency, not the digest.

use crate::device::{DeviceError, JafarDevice};
use crate::predicate::Predicate;
use jafar_accel::ir::{KernelBuilder, OpKind};
use jafar_accel::schedule::Schedule;
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr, Requester};

/// Aggregate operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Count of (qualifying) rows.
    Count,
    /// Average (reported as sum + count).
    Avg,
}

/// A scalar aggregation job.
#[derive(Clone, Copy, Debug)]
pub struct AggregateJob {
    /// 64-byte-aligned base of the packed `i64` column.
    pub col_addr: PhysAddr,
    /// Rows to aggregate.
    pub rows: u64,
    /// The fold.
    pub op: AggOp,
    /// Optional combined filter: only qualifying rows enter the fold.
    pub filter: Option<Predicate>,
}

/// Result of a scalar aggregation.
#[derive(Clone, Copy, Debug)]
pub struct AggregateRun {
    /// Completion tick.
    pub end: Tick,
    /// The folded value: sum for `Sum`/`Avg`, extremum for `Min`/`Max`,
    /// count for `Count`. `None` when no row qualified for `Min`/`Max`.
    pub value: Option<i64>,
    /// Qualifying rows (equals `rows` without a filter).
    pub count: u64,
    /// Input bursts read.
    pub bursts_read: u64,
}

/// A bounded-bucket hash group-by job.
#[derive(Clone, Copy, Debug)]
pub struct GroupByJob {
    /// 64-byte-aligned base of the packed `i64` key column.
    pub key_addr: PhysAddr,
    /// 64-byte-aligned base of the packed `i64` value column.
    pub val_addr: PhysAddr,
    /// Rows.
    pub rows: u64,
    /// The per-group fold (Sum or Count).
    pub op: AggOp,
    /// Hardware bucket-table size.
    pub buckets: usize,
    /// 64-byte-aligned overflow spill region (key/value pairs).
    pub spill_addr: PhysAddr,
}

/// Result of a group-by pass.
#[derive(Clone, Debug)]
pub struct GroupByRun {
    /// Completion tick.
    pub end: Tick,
    /// `(key, aggregate, count)` per occupied bucket.
    pub groups: Vec<(i64, i64, u64)>,
    /// Rows spilled to DRAM for hierarchical CPU-side merging.
    pub spilled_rows: u64,
    /// Input bursts read (both columns).
    pub bursts_read: u64,
}

/// The multiply-shift "fixed-function hash unit".
pub fn hash_bucket(key: i64, buckets: usize) -> usize {
    debug_assert!(buckets.is_power_of_two());
    let h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> (64 - buckets.trailing_zeros())) as usize % buckets
}

/// Derives the per-word rate (ps) of an aggregation datapath from its
/// kernel schedule, on the device's clock and resources.
fn agg_ps_per_word(device: &JafarDevice, filtered: bool) -> u64 {
    let mut b = KernelBuilder::new();
    let inc = b.induction(OpKind::Add, &[]);
    let load = b.op(OpKind::Load, &[]);
    let acc = if filtered {
        let c1 = b.op(OpKind::ICmp, &[load]);
        let c2 = b.op(OpKind::ICmp, &[load]);
        let and = b.op(OpKind::And, &[c1, c2]);
        let sel = b.op(OpKind::Select, &[load, and]);
        b.op(OpKind::Add, &[sel])
    } else {
        b.op(OpKind::Add, &[load])
    };
    b.carry(acc, acc);
    b.carry(inc, inc);
    let kernel = b.build();
    let cfg = device.config();
    let ii = Schedule::steady_state_ii(&kernel, &cfg.resources, cfg.unroll);
    (ii * cfg.clock.period().as_ps() as f64).round().max(1.0) as u64
}

impl JafarDevice {
    /// Streams a scalar aggregation over an owned rank.
    ///
    /// # Errors
    /// Same validation as [`JafarDevice::run_select`].
    pub fn run_aggregate(
        &mut self,
        module: &mut DramModule,
        job: AggregateJob,
        start: Tick,
    ) -> Result<AggregateRun, DeviceError> {
        if job.col_addr.block_offset() != 0 {
            return Err(DeviceError::Misaligned);
        }
        let rank = module.decoder().decode(job.col_addr).rank;
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        let ps_per_word = agg_ps_per_word(self, job.filter.is_some());
        let bounds = job.filter.map(Predicate::bounds);
        let t = *module.timing();
        let cas_pipeline = t.cl + t.t_burst;

        let mut issue_cursor = start;
        let mut proc_free = start;
        let mut bursts_read = 0u64;
        let mut count = 0u64;
        let mut acc: Option<i64> = None;

        let total_bursts = job.rows.div_ceil(8);
        for burst in 0..total_bursts {
            let addr = PhysAddr(job.col_addr.0 + burst * 64);
            let access = module
                .serve_addr(addr, false, Requester::Ndp, issue_cursor, None)
                .map_err(|_| DeviceError::NotOwned)?;
            bursts_read += 1;
            let cas_at = access.data_ready.saturating_sub(cas_pipeline);
            issue_cursor = cas_at.max(issue_cursor) + t.bus_clock.period();
            proc_free = proc_free.max(access.data_ready);
            let data = access.data.expect("read");
            let words = (job.rows - burst * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                let qualifies = bounds.is_none_or(|(lo, hi)| lo <= v && v <= hi);
                if qualifies {
                    count += 1;
                    acc = Some(match (job.op, acc) {
                        (AggOp::Sum | AggOp::Avg | AggOp::Count, prev) => {
                            prev.unwrap_or(0).wrapping_add(match job.op {
                                AggOp::Count => 1,
                                _ => v,
                            })
                        }
                        (AggOp::Min, None) => v,
                        (AggOp::Min, Some(p)) => p.min(v),
                        (AggOp::Max, None) => v,
                        (AggOp::Max, Some(p)) => p.max(v),
                    });
                }
            }
            proc_free += Tick::from_ps(words * ps_per_word);
        }

        Ok(AggregateRun {
            end: proc_free,
            value: match job.op {
                AggOp::Count => Some(count as i64),
                _ => acc,
            },
            count,
            bursts_read,
        })
    }

    /// Streams a bounded-bucket hash group-by, spilling conflicting keys to
    /// DRAM (the hierarchical approach §4 calls for).
    ///
    /// # Errors
    /// Same validation as [`JafarDevice::run_select`].
    ///
    /// # Panics
    /// Panics if `buckets` is not a power of two.
    pub fn run_group_by(
        &mut self,
        module: &mut DramModule,
        job: GroupByJob,
        start: Tick,
    ) -> Result<GroupByRun, DeviceError> {
        assert!(job.buckets.is_power_of_two(), "bucket count must be 2^k");
        if job.key_addr.block_offset() != 0 || job.val_addr.block_offset() != 0 {
            return Err(DeviceError::Misaligned);
        }
        let rank = module.decoder().decode(job.key_addr).rank;
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        // Hash + bucket update pipeline: hash (4 cyc, pipelined) feeding a
        // compare + add; two loads per row (key + value).
        let ps_per_word = {
            let mut b = KernelBuilder::new();
            let key = b.op(OpKind::Load, &[]);
            let val = b.op(OpKind::Load, &[]);
            let h = b.op(OpKind::Hash, &[key]);
            let cmp = b.op(OpKind::ICmp, &[h]);
            let upd = b.op(OpKind::Add, &[cmp, val]);
            let inc = b.induction(OpKind::Add, &[]);
            b.carry(inc, inc);
            let _ = upd;
            let kernel = b.build();
            let cfg = self.config();
            let ii = Schedule::steady_state_ii(&kernel, &cfg.resources, cfg.unroll);
            (ii * cfg.clock.period().as_ps() as f64).round().max(1.0) as u64
        };
        let t = *module.timing();
        let cas_pipeline = t.cl + t.t_burst;

        let mut table: Vec<Option<(i64, i64, u64)>> = vec![None; job.buckets];
        let mut spilled = 0u64;
        let mut spill_cursor = job.spill_addr.0;
        let mut issue_cursor = start;
        let mut proc_free = start;
        let mut bursts_read = 0u64;

        let total_bursts = job.rows.div_ceil(8);
        for burst in 0..total_bursts {
            let mut fetch = |col: PhysAddr, cursor: &mut Tick, free: &mut Tick| {
                let addr = PhysAddr(col.0 + burst * 64);
                let access = module
                    .serve_addr(addr, false, Requester::Ndp, *cursor, None)
                    .expect("rank validated");
                let cas_at = access.data_ready.saturating_sub(cas_pipeline);
                *cursor = cas_at.max(*cursor) + t.bus_clock.period();
                *free = (*free).max(access.data_ready);
                access.data.expect("read")
            };
            let keys = fetch(job.key_addr, &mut issue_cursor, &mut proc_free);
            let vals = fetch(job.val_addr, &mut issue_cursor, &mut proc_free);
            bursts_read += 2;

            let words = (job.rows - burst * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let k = i64::from_le_bytes(keys[off..off + 8].try_into().expect("8 bytes"));
                let v = i64::from_le_bytes(vals[off..off + 8].try_into().expect("8 bytes"));
                let b = hash_bucket(k, job.buckets);
                match &mut table[b] {
                    slot @ None => {
                        *slot = Some((
                            k,
                            match job.op {
                                AggOp::Count => 1,
                                _ => v,
                            },
                            1,
                        ))
                    }
                    Some((key, acc, n)) if *key == k => {
                        match job.op {
                            AggOp::Count => *acc += 1,
                            _ => *acc = acc.wrapping_add(v),
                        }
                        *n += 1;
                    }
                    Some(_) => {
                        // Conflict: spill the (key, value) pair to DRAM.
                        let mut pair = [0u8; 64];
                        pair[..8].copy_from_slice(&k.to_le_bytes());
                        pair[8..16].copy_from_slice(&v.to_le_bytes());
                        module
                            .serve_addr(
                                PhysAddr(spill_cursor & !63),
                                true,
                                Requester::Ndp,
                                proc_free,
                                Some(&pair),
                            )
                            .expect("rank validated");
                        spill_cursor += 64;
                        spilled += 1;
                    }
                }
            }
            proc_free += Tick::from_ps(words * ps_per_word);
        }

        Ok(GroupByRun {
            end: proc_free,
            groups: table.into_iter().flatten().collect(),
            spilled_rows: spilled,
            bursts_read,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ownership::grant_ownership;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    fn setup() -> (JafarDevice, DramModule, Tick) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        let t0 = lease.acquired_at;

        (JafarDevice::paper_default(), m, t0)
    }

    fn put(m: &mut DramModule, addr: u64, values: &[i64]) {
        for (i, v) in values.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(addr + i as u64 * 8), *v);
        }
    }

    #[test]
    fn sum_min_max_count_match_reference() {
        let (mut d, mut m, t0) = setup();
        let mut rng = SplitMix64::new(17);
        let values: Vec<i64> = (0..500)
            .map(|_| rng.next_range_inclusive(-50, 50))
            .collect();
        put(&mut m, 0, &values);
        let mut run = |op| {
            let mut dd = JafarDevice::paper_default();
            dd.run_aggregate(
                &mut m,
                AggregateJob {
                    col_addr: PhysAddr(0),
                    rows: 500,
                    op,
                    filter: None,
                },
                t0,
            )
            .unwrap()
        };
        let _ = &mut d;
        assert_eq!(run(AggOp::Sum).value, Some(values.iter().sum::<i64>()));
        assert_eq!(run(AggOp::Min).value, values.iter().min().copied());
        assert_eq!(run(AggOp::Max).value, values.iter().max().copied());
        assert_eq!(run(AggOp::Count).value, Some(500));
    }

    #[test]
    fn filtered_aggregate_combines_select_and_fold() {
        let (mut d, mut m, t0) = setup();
        let values: Vec<i64> = (0..100).collect();
        put(&mut m, 0, &values);
        let run = d
            .run_aggregate(
                &mut m,
                AggregateJob {
                    col_addr: PhysAddr(0),
                    rows: 100,
                    op: AggOp::Sum,
                    filter: Some(Predicate::Between(10, 19)),
                },
                t0,
            )
            .unwrap();
        assert_eq!(run.value, Some((10..=19).sum::<i64>()));
        assert_eq!(run.count, 10);
    }

    #[test]
    fn min_of_empty_selection_is_none() {
        let (mut d, mut m, t0) = setup();
        put(&mut m, 0, &[5, 6, 7, 8]);
        let run = d
            .run_aggregate(
                &mut m,
                AggregateJob {
                    col_addr: PhysAddr(0),
                    rows: 4,
                    op: AggOp::Min,
                    filter: Some(Predicate::Between(100, 200)),
                },
                t0,
            )
            .unwrap();
        assert_eq!(run.value, None);
        assert_eq!(run.count, 0);
    }

    #[test]
    fn aggregation_streams_at_filter_rate() {
        // §2.2: there is headroom to add "more complex calculations, like
        // hashing or aggregates, at virtually no additional latency" — an
        // unfiltered sum must stream as fast as the filter does.
        let (mut d, mut m, t0) = setup();
        let values: Vec<i64> = (0..4096).collect();
        put(&mut m, 0, &values);
        let agg = d
            .run_aggregate(
                &mut m,
                AggregateJob {
                    col_addr: PhysAddr(0),
                    rows: 4096,
                    op: AggOp::Sum,
                    filter: None,
                },
                t0,
            )
            .unwrap();
        let span = agg.end - t0;
        let ns_per_burst = span.as_ns_f64() / agg.bursts_read as f64;
        assert!((3.9..6.0).contains(&ns_per_burst), "{ns_per_burst}");
    }

    #[test]
    fn group_by_without_conflicts() {
        let (mut d, mut m, t0) = setup();
        // 4 distinct keys over 64 buckets: collisions possible only if two
        // keys hash to the same bucket — check and regenerate is overkill;
        // just verify total mass is conserved across buckets + spills.
        let keys: Vec<i64> = (0..400).map(|i| i % 4).collect();
        let vals: Vec<i64> = (0..400).map(|_| 2).collect();
        put(&mut m, 0, &keys);
        put(&mut m, 8192, &vals);
        let run = d
            .run_group_by(
                &mut m,
                GroupByJob {
                    key_addr: PhysAddr(0),
                    val_addr: PhysAddr(8192),
                    rows: 400,
                    op: AggOp::Sum,
                    buckets: 64,
                    spill_addr: PhysAddr(64 * 1024),
                },
                t0,
            )
            .unwrap();
        let in_table: i64 = run.groups.iter().map(|(_, acc, _)| acc).sum();
        assert_eq!(in_table + run.spilled_rows as i64 * 2, 800);
        let rows_in_table: u64 = run.groups.iter().map(|(_, _, n)| n).sum();
        assert_eq!(rows_in_table + run.spilled_rows, 400);
    }

    #[test]
    fn group_by_spills_when_buckets_exhausted() {
        let (mut d, mut m, t0) = setup();
        // 64 distinct keys into 4 buckets: heavy conflicts → spills.
        let keys: Vec<i64> = (0..256).map(|i| i % 64).collect();
        let vals: Vec<i64> = vec![1; 256];
        put(&mut m, 0, &keys);
        put(&mut m, 8192, &vals);
        let run = d
            .run_group_by(
                &mut m,
                GroupByJob {
                    key_addr: PhysAddr(0),
                    val_addr: PhysAddr(8192),
                    rows: 256,
                    op: AggOp::Sum,
                    buckets: 4,
                    spill_addr: PhysAddr(64 * 1024),
                },
                t0,
            )
            .unwrap();
        assert!(run.spilled_rows > 0);
        assert!(run.groups.len() <= 4);
        // Hierarchical merge: spilled pairs are readable from DRAM.
        let mut first = [0u8; 16];
        m.data().read(PhysAddr(64 * 1024), &mut first);
        let k = i64::from_le_bytes(first[..8].try_into().unwrap());
        assert!((0..64).contains(&k));
    }

    #[test]
    fn hash_bucket_distributes() {
        let buckets = 64;
        let mut counts = vec![0u32; buckets];
        for k in 0..6400i64 {
            counts[hash_bucket(k, buckets)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < 200 && min > 40, "min={min} max={max}");
    }

    #[test]
    fn unowned_rank_rejected() {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let mut d = JafarDevice::paper_default();
        let err = d
            .run_aggregate(
                &mut m,
                AggregateJob {
                    col_addr: PhysAddr(0),
                    rows: 8,
                    op: AggOp::Sum,
                    filter: None,
                },
                Tick::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, DeviceError::NotOwned);
    }
}
