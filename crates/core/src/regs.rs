//! Memory-mapped accelerator control registers.
//!
//! §2.2: "The CPU controls the operation of JAFAR via memory-mapped
//! accelerator control registers and is currently notified of JAFAR
//! operation completion by polling a shared memory location." The register
//! block below is the minimal set the Figure-2 API needs; the host writes
//! them through uncached stores (charged by the simulation layer), kicks
//! `CTRL.START`, and polls `STATUS`.

/// Register identifiers (doubling as word offsets in the mapped block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum Reg {
    /// Bit 0 = START (self-clearing), bit 1 = interleaved mode.
    Ctrl = 0,
    /// Bit 0 = BUSY, bit 1 = DONE, bit 2 = ERROR.
    Status = 1,
    /// Physical base address of the column data (page-aligned).
    ColAddr = 2,
    /// Number of input rows in this invocation.
    NumRows = 3,
    /// Inclusive lower bound of the range filter.
    RangeLo = 4,
    /// Inclusive upper bound of the range filter.
    RangeHi = 5,
    /// Physical base address of the output bitset.
    OutAddr = 6,
    /// Number of rows that passed the filter (set by the device).
    OutCount = 7,
}

/// Number of 64-bit registers in the block.
pub const NUM_REGS: usize = 8;

/// STATUS bit: device is filtering.
pub const STATUS_BUSY: u64 = 1 << 0;
/// STATUS bit: last operation completed.
pub const STATUS_DONE: u64 = 1 << 1;
/// STATUS bit: last operation aborted with an error.
pub const STATUS_ERROR: u64 = 1 << 2;
/// CTRL bit: start the programmed operation.
pub const CTRL_START: u64 = 1 << 0;

/// The register file.
#[derive(Clone, Debug, Default)]
pub struct RegisterFile {
    regs: [u64; NUM_REGS],
}

impl RegisterFile {
    /// A zeroed register block.
    pub fn new() -> Self {
        RegisterFile::default()
    }

    /// Reads a register.
    pub fn read(&self, reg: Reg) -> u64 {
        self.regs[reg as usize]
    }

    /// Writes a register.
    pub fn write(&mut self, reg: Reg, value: u64) {
        self.regs[reg as usize] = value;
    }

    /// Reads by word offset (the memory-mapped path).
    ///
    /// # Panics
    /// Panics for offsets outside the block.
    pub fn read_offset(&self, offset: u32) -> u64 {
        self.regs[offset as usize]
    }

    /// Writes by word offset (the memory-mapped path).
    ///
    /// # Panics
    /// Panics for offsets outside the block.
    pub fn write_offset(&mut self, offset: u32, value: u64) {
        self.regs[offset as usize] = value;
    }

    /// True while the device is filtering.
    pub fn busy(&self) -> bool {
        self.read(Reg::Status) & STATUS_BUSY != 0
    }

    /// True once the programmed operation has completed.
    pub fn done(&self) -> bool {
        self.read(Reg::Status) & STATUS_DONE != 0
    }

    /// True if the last operation errored.
    pub fn errored(&self) -> bool {
        self.read(Reg::Status) & STATUS_ERROR != 0
    }

    /// Device-side: transition to busy.
    pub fn set_busy(&mut self) {
        self.write(Reg::Status, STATUS_BUSY);
    }

    /// Device-side: transition to done (clearing busy).
    pub fn set_done(&mut self, matched: u64) {
        self.write(Reg::Status, STATUS_DONE);
        self.write(Reg::OutCount, matched);
    }

    /// Device-side: transition to error.
    pub fn set_error(&mut self) {
        self.write(Reg::Status, STATUS_ERROR | STATUS_DONE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_and_offset_views_agree() {
        let mut r = RegisterFile::new();
        r.write(Reg::RangeLo, 0x1234);
        assert_eq!(r.read_offset(Reg::RangeLo as u32), 0x1234);
        r.write_offset(Reg::RangeHi as u32, 99);
        assert_eq!(r.read(Reg::RangeHi), 99);
    }

    #[test]
    fn status_protocol() {
        let mut r = RegisterFile::new();
        assert!(!r.busy() && !r.done());
        r.set_busy();
        assert!(r.busy() && !r.done());
        r.set_done(42);
        assert!(!r.busy() && r.done() && !r.errored());
        assert_eq!(r.read(Reg::OutCount), 42);
        r.set_error();
        assert!(r.errored() && r.done());
    }

    #[test]
    #[should_panic]
    fn out_of_block_offset_panics() {
        RegisterFile::new().read_offset(NUM_REGS as u32);
    }
}
