//! Rank-parallel select execution: K devices, K leases, one timeline.
//!
//! The paper's discussion section observes that one JAFAR per rank is the
//! natural scaling axis — ownership is already arbitrated per rank via the
//! MR3/MPR mechanism, so independent ranks can filter concurrently while
//! the host keeps using the others. This module is that scheduler: given a
//! column striped across K ranks (one [`SelectRequest`] shard per rank,
//! each 64-byte-aligned within its own rank), it opens one steppable
//! [`SelectSession`] per shard and interleaves them in simulated time.
//!
//! **Scheduling discipline.** Each session carries its own simulated
//! clock ([`SelectSession::cursor`]). The scheduler always advances the
//! *furthest-behind* live session by one page (ties broken by shard
//! index, so the interleaving is fully deterministic). Because a page is
//! the driver's atomic unit, a shard may momentarily run ahead of its
//! siblings' cursors — but no shard ever *observes* another's future:
//! ranks do not share banks, rank-level timing state, or the per-rank NDP
//! IO paths, so the per-rank timelines are independent by construction
//! and the page-granular interleaving is exact, not approximate.
//!
//! **Fault isolation.** Every shard gets its own [`ResilientDriver`], so
//! the full recovery ladder — watchdog, bounded backoff, circuit breaker,
//! CPU-scan fallback — applies per rank. A faulty rank degrades to the
//! host scan *on its own timeline* while its siblings stream at device
//! speed; the merged result is still bit-identical to the reference.
//!
//! The per-rank output bitsets stay where each device wrote them (each
//! shard's `out_addr`); merging them into one selection vector is the
//! caller's job (`jafar-sim`'s `run_select_jafar_parallel` does it with
//! byte-aligned copies, which row-aligned striping guarantees possible).

use crate::device::JafarDevice;
use crate::driver::{DriverRun, ResilientDriver, SelectRequest, SelectSession};
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::time::Tick;
use jafar_dram::DramModule;

/// One shard's outcome within a parallel select.
#[derive(Clone, Copy, Debug)]
pub struct ShardRun {
    /// Index of the shard in the request slice.
    pub shard: u32,
    /// The rank the shard's column lives on.
    pub rank: u32,
    /// The shard's own resilient-driver outcome.
    pub run: DriverRun,
}

/// Outcome of a rank-parallel select.
#[derive(Clone, Debug)]
pub struct ParallelRun {
    /// When the slowest shard finished (the query's completion time).
    pub end: Tick,
    /// Total matching rows across all shards.
    pub matched: u64,
    /// Per-shard outcomes, in request order.
    pub shards: Vec<ShardRun>,
}

/// Runs `shards[i]` on `devices[i]` under `drivers[i]`, all interleaved on
/// the shared simulated timeline starting at `start`.
///
/// Every shard must target a distinct rank — that is what makes the
/// timelines independent (per-rank banks, timing state and NDP IO paths).
/// The host remains free to use unowned ranks throughout; nothing here
/// touches them.
///
/// # Panics
/// Panics if the slice lengths differ or two shards decode to the same
/// rank.
pub fn run_select_parallel(
    drivers: &mut [ResilientDriver],
    devices: &mut [JafarDevice],
    module: &mut DramModule,
    shards: &[SelectRequest],
    start: Tick,
    tracer: &SharedTracer,
) -> ParallelRun {
    assert_eq!(drivers.len(), shards.len(), "one driver per shard");
    assert_eq!(devices.len(), shards.len(), "one device per shard");
    let mut sessions: Vec<Option<SelectSession>> = shards
        .iter()
        .zip(drivers.iter())
        .map(|(req, driver)| Some(driver.start_session(module, *req, start)))
        .collect();
    for (i, a) in sessions.iter().flatten().enumerate() {
        for b in sessions.iter().flatten().skip(i + 1) {
            assert_ne!(a.rank(), b.rank(), "shards must target distinct ranks");
        }
    }

    let mut runs: Vec<Option<ShardRun>> = vec![None; shards.len()];
    // Advance the furthest-behind live session; ties go to the lowest
    // shard index, making the interleaving deterministic.
    while let Some(i) = sessions
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.as_ref().map(|s| (s.cursor(), i)))
        .min()
        .map(|(_, i)| i)
    {
        let session = sessions[i].as_mut().expect("picked a live session");
        tracer.emit(
            session.cursor(),
            EventKind::ShardStep {
                shard: i as u32,
                rank: session.rank(),
                at_row: session.next_row(),
            },
        );
        drivers[i].step_page(&mut devices[i], module, session);
        if session.is_done() {
            let session = sessions[i].take().expect("just stepped it");
            let rank = session.rank();
            let run = session.into_run();
            tracer.emit(
                run.end,
                EventKind::ShardDone {
                    shard: i as u32,
                    rank,
                    matched: run.matched,
                },
            );
            runs[i] = Some(ShardRun {
                shard: i as u32,
                rank,
                run,
            });
        }
    }

    let shards_out: Vec<ShardRun> = runs
        .into_iter()
        .map(|r| r.expect("every shard ran to completion"))
        .collect();
    ParallelRun {
        end: shards_out.iter().map(|s| s.run.end).max().unwrap_or(start),
        matched: shards_out.iter().map(|s| s.run.matched).sum(),
        shards: shards_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ResilienceConfig;
    use jafar_common::bitset::BitSet;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{
        AddressMapping, DramGeometry, DramTiming, FaultInjector, FaultPlan, PhysAddr,
    };

    const ROWS: u64 = 2048;
    const LO: i64 = 100;
    const HI: i64 = 499;

    fn fresh_module() -> DramModule {
        DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        )
    }

    /// Writes a seeded column at `base` and returns its values.
    fn put_column(m: &mut DramModule, base: PhysAddr, rows: u64, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        let values: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        for (i, v) in values.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(base.0 + i as u64 * 8), *v);
        }
        values
    }

    fn reference(values: &[i64]) -> Vec<u32> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (LO..=HI).contains(&v))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn bitset_at(m: &DramModule, addr: PhysAddr, rows: u64) -> Vec<u32> {
        let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
        m.data().read(addr, &mut bytes);
        BitSet::from_bytes(&bytes, rows as usize).to_positions()
    }

    /// One shard per rank of the tiny geometry: rank 0 at offset 0, rank 1
    /// at the rank stride. Output buffers sit high in each shard's rank.
    fn two_shards(m: &mut DramModule) -> (Vec<SelectRequest>, Vec<Vec<i64>>) {
        let rank_bytes = DramGeometry::tiny().rank_bytes();
        let mut reqs = Vec::new();
        let mut vals = Vec::new();
        for rank in 0..2u64 {
            let col = PhysAddr(rank * rank_bytes);
            let out = PhysAddr(rank * rank_bytes + 128 * 1024);
            vals.push(put_column(m, col, ROWS, 21 + rank));
            reqs.push(SelectRequest {
                col_addr: col,
                rows: ROWS,
                lo: LO,
                hi: HI,
                out_addr: out,
            });
        }
        (reqs, vals)
    }

    fn solo_run(req: SelectRequest, seed: u64) -> DriverRun {
        let mut m = fresh_module();
        put_column(&mut m, req.col_addr, req.rows, seed);
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        driver.run_select(&mut device, &mut m, req, Tick::ZERO)
    }

    #[test]
    fn two_ranks_run_concurrently_and_match_reference() {
        let mut m = fresh_module();
        let (reqs, vals) = two_shards(&mut m);
        let mut drivers = vec![
            ResilientDriver::new(ResilienceConfig::default()),
            ResilientDriver::new(ResilienceConfig::default()),
        ];
        let mut devices = vec![JafarDevice::paper_default(), JafarDevice::paper_default()];
        let out = run_select_parallel(
            &mut drivers,
            &mut devices,
            &mut m,
            &reqs,
            Tick::ZERO,
            &SharedTracer::disabled(),
        );

        for (i, req) in reqs.iter().enumerate() {
            let expect = reference(&vals[i]);
            assert_eq!(bitset_at(&m, req.out_addr, ROWS), expect, "shard {i}");
            assert_eq!(out.shards[i].run.matched as usize, expect.len());
            assert_eq!(out.shards[i].rank, i as u32);
        }
        assert_eq!(
            out.matched,
            out.shards.iter().map(|s| s.run.matched).sum::<u64>()
        );

        // The shards are timing-independent: each finishes exactly when it
        // would have finished running alone, so the parallel completion
        // time is the max — not the sum — of the per-shard timelines.
        let solo0 = solo_run(reqs[0], 21);
        let solo1 = solo_run(reqs[1], 22);
        assert_eq!(out.shards[0].run.end, solo0.end);
        assert_eq!(out.shards[1].run.end, solo1.end);
        assert_eq!(out.end, solo0.end.max(solo1.end));
        assert!(
            out.end < solo0.end + (solo1.end - Tick::ZERO),
            "parallel, not serial"
        );

        for rank in 0..2 {
            assert!(!m.rank_owned_by_ndp(rank), "leases released at the end");
        }
    }

    #[test]
    fn faulty_rank_falls_back_without_stalling_sibling() {
        let mut m = fresh_module();
        let (reqs, vals) = two_shards(&mut m);
        // Every read burst on rank 1 stalls past the watchdog; rank 0 is
        // untouched (and consumes none of the injector's RNG stream).
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
            stall_burst_range: Some((0, u64::MAX)),
            rank_scope: Some(1),
            ..FaultPlan::none(0)
        })));
        let mut drivers = vec![
            ResilientDriver::new(ResilienceConfig::default()),
            ResilientDriver::new(ResilienceConfig {
                max_retries: 1,
                breaker_threshold: 1,
                ..ResilienceConfig::default()
            }),
        ];
        let mut devices = vec![JafarDevice::paper_default(), JafarDevice::paper_default()];
        let out = run_select_parallel(
            &mut drivers,
            &mut devices,
            &mut m,
            &reqs,
            Tick::ZERO,
            &SharedTracer::disabled(),
        );

        // Results stay bit-identical on both shards.
        for (i, req) in reqs.iter().enumerate() {
            assert_eq!(bitset_at(&m, req.out_addr, ROWS), reference(&vals[i]));
        }
        // The faulty shard went through the recovery ladder to the CPU.
        let s1 = drivers[1].stats();
        assert!(s1.watchdog_fires.get() >= 1);
        assert!(s1.pages_cpu.get() >= 1);
        assert_eq!(s1.breaker_trips.get(), 1);
        // The healthy sibling never noticed: zero recovery events and the
        // same completion time as running alone on a fault-free module.
        let s0 = drivers[0].stats();
        assert_eq!(s0.recovery_total(), 0);
        assert_eq!(out.shards[0].run.end, solo_run(reqs[0], 21).end);
        // The stalled rank finishes late — after its healthy sibling.
        assert!(out.shards[1].run.end > out.shards[0].run.end);
        assert_eq!(out.end, out.shards[1].run.end);
    }

    /// Satellite property: the merged device output is bit-identical to
    /// the CPU reference across randomized output-buffer sizes, column
    /// bases that are 64-byte- but not DRAM-row-aligned, row counts not
    /// divisible by 8, and 1..=4 rank partitions. Each case is seeded by
    /// `jafar_common::check::case_seed`, so a failure replays exactly.
    #[test]
    fn property_parallel_select_is_bit_identical_to_reference() {
        use crate::device::DeviceConfig;
        use jafar_common::check::forall;

        let geom = DramGeometry {
            ranks: 4,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 1024,
        };
        let rank_bytes = geom.rank_bytes();
        forall("parallel select == cpu reference", 48, |rng| {
            let rows = 1 + rng.next_below(1200);
            let k = 1 + rng.next_below(4) as usize;
            let mut m = DramModule::new(
                geom,
                DramTiming::ddr3_paper().without_refresh(),
                AddressMapping::RankRowBankBlock,
            );
            let values: Vec<i64> = (0..rows)
                .map(|_| rng.next_range_inclusive(-500, 1500))
                .collect();
            let lo = rng.next_range_inclusive(-200, 600);
            let hi = lo + rng.next_range_inclusive(0, 700);

            // Stripe the column over up to `k` ranks on multiple-of-8-row
            // boundaries (so shard bitsets merge on byte edges), each shard
            // at a 64-byte-aligned but row-unaligned offset in its rank.
            let chunk = rows.div_ceil(k as u64).div_ceil(8) * 8;
            let mut reqs = Vec::new();
            let mut offsets = Vec::new();
            let mut row_offset = 0u64;
            for rank in 0..k as u64 {
                if row_offset >= rows {
                    break;
                }
                let shard_rows = chunk.min(rows - row_offset);
                let col = PhysAddr(rank * rank_bytes + 64 * (1 + rng.next_below(512)));
                for (i, &v) in values[row_offset as usize..][..shard_rows as usize]
                    .iter()
                    .enumerate()
                {
                    m.data_mut().write_i64(PhysAddr(col.0 + i as u64 * 8), v);
                }
                reqs.push(SelectRequest {
                    col_addr: col,
                    rows: shard_rows,
                    lo,
                    hi,
                    out_addr: PhysAddr(rank * rank_bytes + 192 * 1024),
                });
                offsets.push(row_offset);
                row_offset += shard_rows;
            }

            let mut drivers: Vec<ResilientDriver> = reqs
                .iter()
                .map(|_| ResilientDriver::new(ResilienceConfig::default()))
                .collect();
            let mut devices: Vec<JafarDevice> = reqs
                .iter()
                .map(|_| {
                    JafarDevice::new(DeviceConfig {
                        out_buf_bits: 8 * (1 + rng.next_below(64)) as usize,
                        ..DeviceConfig::default()
                    })
                })
                .collect();
            let out = run_select_parallel(
                &mut drivers,
                &mut devices,
                &mut m,
                &reqs,
                Tick::ZERO,
                &SharedTracer::disabled(),
            );

            // Byte-aligned merge, exactly as the sim layer performs it.
            let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
            for (req, &off) in reqs.iter().zip(&offsets) {
                let mut shard = vec![0u8; req.rows.div_ceil(8) as usize];
                m.data().read(req.out_addr, &mut shard);
                let dst = (off / 8) as usize;
                bytes[dst..dst + shard.len()].copy_from_slice(&shard);
            }
            let got = BitSet::from_bytes(&bytes, rows as usize).to_positions();
            let expect: Vec<u32> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| lo <= v && v <= hi)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, expect, "rows={rows} k={k} lo={lo} hi={hi}");
            assert_eq!(out.matched as usize, expect.len());
        });
    }

    #[test]
    #[should_panic(expected = "distinct ranks")]
    fn same_rank_shards_are_rejected() {
        let mut m = fresh_module();
        let req = SelectRequest {
            col_addr: PhysAddr(0),
            rows: 64,
            lo: 0,
            hi: 0,
            out_addr: PhysAddr(128 * 1024),
        };
        let mut drivers = vec![
            ResilientDriver::new(ResilienceConfig::default()),
            ResilientDriver::new(ResilienceConfig::default()),
        ];
        let mut devices = vec![JafarDevice::paper_default(), JafarDevice::paper_default()];
        run_select_parallel(
            &mut drivers,
            &mut devices,
            &mut m,
            &[req, req],
            Tick::ZERO,
            &SharedTracer::disabled(),
        );
    }
}
