//! Rank-ownership transfer via the DDR3 mode registers.
//!
//! §2.2 ("Coordinating DRAM Access"): the query execution manager grants
//! JAFAR exclusive ownership of a DRAM rank by repurposing mode register 3:
//! enabling the multipurpose register (MPR) blocks the host memory
//! controller from issuing ordinary reads and writes to the rank, and
//! "mode registers can be set via user-level code at runtime". Ownership is
//! granted for a bounded amount of work whose duration is predictable —
//! "knowing that JAFAR will finish its allotted work in that amount of
//! time".
//!
//! The host-side path that also drains controller queues lives in
//! `jafar_memctl::MemoryController::set_rank_ownership`; the functions here
//! operate directly on the module and are what the device/driver layer
//! uses once the controller has quiesced.

use jafar_common::time::Tick;
use jafar_dram::{DramCommand, DramModule, IssueError, Requester};

/// Evidence of an acquired rank. Consume it with [`release_ownership`].
#[must_use = "ownership must be released; pass the lease to release_ownership"]
#[derive(Debug)]
pub struct Lease {
    /// The owned rank.
    pub rank: u32,
    /// When ownership became effective.
    pub acquired_at: Tick,
    /// When the grant lapses. §2.2 hands the rank over "knowing that JAFAR
    /// will finish its allotted work in that amount of time": jobs
    /// *admitted* at or after this tick are rejected with
    /// `DeviceError::LeaseExpired`, while a job admitted one tick earlier
    /// runs to completion even if it finishes later (the allotted-work
    /// contract). `Tick::MAX` means unbounded.
    pub expires_at: Tick,
}

impl Lease {
    /// True once `now` has reached the expiry deadline.
    pub fn is_expired(&self, now: Tick) -> bool {
        now >= self.expires_at
    }
}

fn set_mpr(module: &mut DramModule, rank: u32, owned: bool, now: Tick) -> Result<Tick, IssueError> {
    // Quiesce the rank: run due refreshes, close open rows. A refresh
    // storm preempting the schedule surfaces as `TooEarly` — retry once
    // the storm drains.
    let after_refresh = module.maintain_refresh(rank, now, Requester::Host)?;
    let pre = DramCommand::PrechargeAll { rank };
    let at = module.earliest_issue(pre, Requester::Host, after_refresh)?;
    module.issue(pre, Requester::Host, at, None)?;
    let value = module.mode_regs(rank).mr3_with_ownership(owned);
    let mrs = DramCommand::ModeRegisterSet { rank, mr: 3, value };
    let at = module.earliest_issue(mrs, Requester::Host, at)?;
    module.issue(mrs, Requester::Host, at, None)?;
    Ok(at + module.timing().t_mod)
}

/// Grants rank ownership to the NDP device for an unbounded window.
/// Returns a lease recording when the grant became effective.
///
/// # Errors
/// Propagates mode-register issue errors (e.g. the rank cannot quiesce).
pub fn grant_ownership(module: &mut DramModule, rank: u32, now: Tick) -> Result<Lease, IssueError> {
    grant_ownership_for(module, rank, now, Tick::MAX)
}

/// Grants rank ownership to the NDP device for a bounded `window` starting
/// when the grant becomes effective. The expiry deadline is recorded on the
/// module so the device can refuse to *admit* jobs past it.
///
/// # Errors
/// Propagates mode-register issue errors (e.g. the rank cannot quiesce, or
/// an injected MRS glitch — retry in that case).
pub fn grant_ownership_for(
    module: &mut DramModule,
    rank: u32,
    now: Tick,
    window: Tick,
) -> Result<Lease, IssueError> {
    let acquired_at = set_mpr(module, rank, true, now)?;
    let expires_at = acquired_at.checked_add(window).unwrap_or(Tick::MAX);
    module.set_ndp_deadline(rank, expires_at);
    Ok(Lease {
        rank,
        acquired_at,
        expires_at,
    })
}

/// Extends an existing lease by `window` from `now` without a release /
/// re-grant round trip: the MPR bit is re-asserted (a level, so this is
/// idempotent) and the deadline pushed out. Returns when the renewal became
/// effective.
///
/// # Errors
/// Propagates mode-register issue errors; the lease deadline is unchanged
/// on failure.
pub fn renew_lease(
    module: &mut DramModule,
    lease: &mut Lease,
    now: Tick,
    window: Tick,
) -> Result<Tick, IssueError> {
    let renewed_at = set_mpr(module, lease.rank, true, now.max(lease.acquired_at))?;
    lease.expires_at = renewed_at.checked_add(window).unwrap_or(Tick::MAX);
    module.set_ndp_deadline(lease.rank, lease.expires_at);
    Ok(renewed_at)
}

/// Releases a previously granted rank. Returns when the release became
/// effective (host traffic may resume). Releasing a stale lease (the rank
/// already handed back) is a harmless no-op state-wise.
///
/// # Errors
/// Propagates mode-register issue errors.
pub fn release_ownership(
    module: &mut DramModule,
    lease: Lease,
    now: Tick,
) -> Result<Tick, IssueError> {
    let released = set_mpr(module, lease.rank, false, now.max(lease.acquired_at))?;
    module.set_ndp_deadline(lease.rank, Tick::MAX);
    Ok(released)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_dram::{AddressMapping, Coord, DramGeometry, DramTiming};

    fn module() -> DramModule {
        DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        )
    }

    #[test]
    fn grant_then_release_round_trip() {
        let mut m = module();
        assert!(!m.rank_owned_by_ndp(0));
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        assert!(m.rank_owned_by_ndp(0));
        assert!(lease.acquired_at >= m.timing().t_mod);
        let released = release_ownership(&mut m, lease, Tick::from_us(1)).unwrap();
        assert!(!m.rank_owned_by_ndp(0));
        assert!(released > Tick::from_us(1));
    }

    #[test]
    fn grant_quiesces_open_rows() {
        let mut m = module();
        // Open a row via a host read.
        m.serve_block(
            Coord {
                rank: 0,
                bank: 0,
                row: 3,
                block: 0,
            },
            false,
            Requester::Host,
            Tick::ZERO,
            None,
        )
        .unwrap();
        let lease = grant_ownership(&mut m, 0, Tick::from_ns(100)).unwrap();
        // The grant had to wait for tRAS before precharging.
        assert!(lease.acquired_at > Tick::from_ns(100));
        assert!(m.rank_owned_by_ndp(0));
        let _ = release_ownership(&mut m, lease, Tick::from_us(1)).unwrap();
    }

    #[test]
    fn grant_runs_due_refreshes_first() {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper(), // refresh on
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::from_us(20)).unwrap();
        assert!(m.stats().refreshes.get() >= 2, "two deadlines passed");
        let _ = release_ownership(&mut m, lease, Tick::from_us(25)).unwrap();
    }

    #[test]
    fn bounded_grant_records_deadline_and_release_clears_it() {
        let mut m = module();
        let lease = grant_ownership_for(&mut m, 0, Tick::ZERO, Tick::from_us(5)).unwrap();
        assert_eq!(lease.expires_at, lease.acquired_at + Tick::from_us(5));
        assert_eq!(m.ndp_deadline(0), lease.expires_at);
        assert!(!lease.is_expired(lease.expires_at - Tick::from_ps(1)));
        assert!(lease.is_expired(lease.expires_at));
        let _ = release_ownership(&mut m, lease, Tick::from_us(10)).unwrap();
        assert_eq!(m.ndp_deadline(0), Tick::MAX, "release clears the deadline");
    }

    #[test]
    fn unbounded_grant_never_expires() {
        let mut m = module();
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        assert_eq!(lease.expires_at, Tick::MAX);
        assert!(!lease.is_expired(Tick::from_ms(10)));
        let _ = release_ownership(&mut m, lease, Tick::from_us(1)).unwrap();
    }

    #[test]
    fn renewal_extends_the_deadline_in_place() {
        let mut m = module();
        let mut lease = grant_ownership_for(&mut m, 0, Tick::ZERO, Tick::from_us(2)).unwrap();
        let old_expiry = lease.expires_at;
        let renewed_at =
            renew_lease(&mut m, &mut lease, Tick::from_us(1), Tick::from_us(2)).unwrap();
        assert_eq!(lease.expires_at, renewed_at + Tick::from_us(2));
        assert!(lease.expires_at > old_expiry);
        assert_eq!(m.ndp_deadline(0), lease.expires_at);
        assert!(m.rank_owned_by_ndp(0), "renewal keeps the rank owned");
        let _ = release_ownership(&mut m, lease, Tick::from_us(10)).unwrap();
    }

    #[test]
    fn independent_ranks() {
        let mut m = module();
        let lease = grant_ownership(&mut m, 1, Tick::ZERO).unwrap();
        assert!(m.rank_owned_by_ndp(1));
        assert!(!m.rank_owned_by_ndp(0));
        let _ = release_ownership(&mut m, lease, Tick::from_us(1)).unwrap();
    }
}
