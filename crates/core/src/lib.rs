//! # jafar-core — the JAFAR device
//!
//! "Just A Filtering Accelerator on Relations": an accelerator mounted on a
//! DRAM DIMM that executes a column-store's select operator directly in
//! memory (§2.2). This crate is the paper's primary contribution,
//! implemented over the substrates in `jafar-dram` (the module JAFAR
//! streams from) and `jafar-accel` (the Aladdin-style model its datapath
//! throughput is derived from):
//!
//! - [`predicate`]: the supported predicates — `=`, `<`, `>`, `≤`, `≥` and
//!   ranges over integer data — compiled to the two-ALU inclusive-range
//!   form the datapath evaluates;
//! - [`regs`]: the memory-mapped accelerator control registers the CPU
//!   programs, and the polled completion flag;
//! - [`device`]: the streaming filter engine: one 64-byte burst per DRAM
//!   access, one 64-bit word per 0.5 ns device cycle (throughput *derived*
//!   from the Aladdin-like schedule of the filter kernel, not hard-coded),
//!   an *n*-bit output buffer written back to DRAM every *n* filter
//!   operations without delaying the filter;
//! - [`api`]: the Figure-2 host API `select_jafar(col_data, range_low,
//!   range_high, out_buf, num_input_rows, num_output_rows)`, invoked once
//!   per virtual-memory page;
//! - [`ownership`]: rank-ownership transfer via the MR3/MPR mechanism,
//!   with bounded (expiring, renewable) leases;
//! - [`driver`]: the resilient host driver — watchdog timeouts, bounded
//!   exponential backoff, lease renewal, a circuit breaker and a CPU-scan
//!   fallback, so queries survive the fault plans `jafar-dram` injects;
//! - the §4 roadmap extensions: [`aggregate`] (sum/min/max/count/avg and
//!   bounded-bucket hash group-by with hierarchical overflow), [`project`]
//!   (position-driven gather in memory), [`rowstore`] (parallel
//!   multi-predicate filters over row-major layouts), [`sort`] (a
//!   fixed-function bitonic network with divide-and-conquer merge
//!   passes), and [`interleave`] (masked bitset writeback for
//!   64-bit-interleaved multi-DIMM systems).

pub mod aggregate;
pub mod api;
pub mod device;
pub mod driver;
pub mod interleave;
pub mod ownership;
pub mod parallel;
pub mod predicate;
pub mod project;
pub mod regs;
pub mod rowstore;
pub mod sort;

pub use api::{
    device_errno, issue_errno, select_jafar, select_jafar_fused, CompletionMode, DriverCosts,
    FusedSelectArgs, FusedSelectOutcome, SelectArgs, SelectOutcome,
};
pub use device::{
    DeviceConfig, DeviceError, FusedSelectJob, FusedSelectRun, JafarDevice, SelectJob, SelectRun,
    MAX_FUSED_LANES,
};
pub use driver::{
    AggregateOutcome, DriverRun, DriverStats, FusedDriverRun, FusedSelectRequest, FusedSession,
    ProjectOutcome, ResilienceConfig, ResilientDriver, SelectRequest,
};
pub use ownership::{grant_ownership, grant_ownership_for, release_ownership, renew_lease, Lease};
pub use parallel::{run_select_parallel, ParallelRun, ShardRun};
pub use predicate::Predicate;
pub use regs::{Reg, RegisterFile};
