//! Multi-DIMM data interleaving (§2.2, "Handling Data Interleaving").
//!
//! With multiple symmetric DIMMs and a multi-channel controller, data may
//! be interleaved across DIMMs at 64-bit granularity. Each DIMM's JAFAR
//! then sees every `ways`-th word of the column: "JAFAR can still perform
//! its filtering operations as usual, but when it writes the output bitset
//! back to main memory, it must only overwrite bits corresponding to rows
//! it has operated on." That means a read-modify-write of each output
//! burst under a phase mask — twice the writeback traffic, and the reason
//! the alternative (the storage engine shuffling columns to be physically
//! contiguous per DIMM) exists.

use crate::device::{DeviceError, JafarDevice};
use crate::predicate::Predicate;
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr, Requester};

/// An interleaved select: this device owns words with
/// `global_row % ways == phase`.
#[derive(Clone, Copy, Debug)]
pub struct InterleavedSelectJob {
    /// 64-byte-aligned base of this DIMM's slice of the column (the words
    /// this device sees, densely packed on its DIMM).
    pub local_col_addr: PhysAddr,
    /// Rows on this DIMM (one per `ways` global rows).
    pub local_rows: u64,
    /// The filter.
    pub predicate: Predicate,
    /// 64-byte-aligned base of the *global* output bitset replica on this
    /// DIMM (all devices write the same logical bitset, each its own bits).
    pub out_addr: PhysAddr,
    /// Interleave factor (number of DIMMs).
    pub ways: u32,
    /// This device's position in the interleave.
    pub phase: u32,
}

/// Result of an interleaved select.
#[derive(Clone, Copy, Debug)]
pub struct InterleavedRun {
    /// Completion tick.
    pub end: Tick,
    /// Matches among this device's rows.
    pub matched: u64,
    /// Input bursts read.
    pub bursts_read: u64,
    /// Output bursts *read* for the read-modify-write merge.
    pub rmw_reads: u64,
    /// Output bursts written.
    pub bursts_written: u64,
}

/// Rows that phase `phase` of a `ways`-way word interleave owns out of
/// `global_rows` — the shard-size arithmetic every interleave-aware
/// scheduler needs. Phases below `global_rows % ways` own one extra row.
/// `ways == 1` is the contiguous case (the phase owns everything), which
/// is why the serving layer's per-channel column placement — a column's
/// stripes land whole on one channel's ranks — sidesteps the §2.2
/// masked-writeback tax entirely: each unit filters `phase_rows(rows, 1,
/// 0)` contiguous rows and writes its bitset slice once.
///
/// # Panics
/// Panics if `phase >= ways` or `ways == 0`.
pub fn phase_rows(global_rows: u64, ways: u32, phase: u32) -> u64 {
    assert!(ways > 0 && phase < ways, "bad interleave spec");
    let ways = u64::from(ways);
    let phase = u64::from(phase);
    global_rows / ways + u64::from(phase < global_rows % ways)
}

/// Shard size that splits `rows` across `shards` workers on `align_rows`
/// boundaries: the smallest multiple of `align_rows` that still covers
/// the column in `shards` pieces. With `align_rows` = 512 (64 bytes of
/// bitset) every shard's output slice starts on an exact 64-byte line —
/// the invariant the serving engine's migration replay and the device's
/// whole-line writeback both rely on. The tail shard absorbs the
/// remainder.
///
/// # Panics
/// Panics if `shards == 0` or `align_rows == 0`.
pub fn aligned_chunk(rows: u64, shards: u64, align_rows: u64) -> u64 {
    assert!(shards > 0 && align_rows > 0, "bad shard spec");
    rows.div_ceil(shards).div_ceil(align_rows) * align_rows
}

/// Merges `local_bits` (one bit per local row of `phase`) into `burst`,
/// overwriting only global bit positions `phase + k*ways` — the §2.2
/// masked writeback. `burst_base_bit` is the global bit index of the
/// burst's first bit.
pub fn merge_masked_bits(
    burst: &mut [u8; 64],
    local_bits: &[bool],
    burst_base_bit: u64,
    ways: u32,
    phase: u32,
) {
    for bit in 0..512u64 {
        let global = burst_base_bit + bit;
        if global % ways as u64 != phase as u64 {
            continue;
        }
        let local_idx = (global / ways as u64) as usize;
        if local_idx >= local_bits.len() {
            continue;
        }
        let byte = (bit / 8) as usize;
        let mask = 1u8 << (bit % 8);
        if local_bits[local_idx] {
            burst[byte] |= mask;
        } else {
            burst[byte] &= !mask;
        }
    }
}

impl JafarDevice {
    /// Executes an interleaved select with masked read-modify-write
    /// writeback.
    ///
    /// # Errors
    /// Same validation as [`JafarDevice::run_select`].
    ///
    /// # Panics
    /// Panics if `phase >= ways` or `ways == 0`.
    pub fn run_select_interleaved(
        &mut self,
        module: &mut DramModule,
        job: InterleavedSelectJob,
        start: Tick,
    ) -> Result<InterleavedRun, DeviceError> {
        assert!(job.ways > 0 && job.phase < job.ways, "bad interleave spec");
        if job.local_col_addr.block_offset() != 0 || job.out_addr.block_offset() != 0 {
            return Err(DeviceError::Misaligned);
        }
        let rank = module.decoder().decode(job.local_col_addr).rank;
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        let (lo, hi) = job.predicate.bounds();
        let t = *module.timing();
        let cas_pipeline = t.cl + t.t_burst;
        let ps_per_word = self.ps_per_word();

        // Pass 1: filter the local slice (dense stream, as usual).
        let mut issue_cursor = start;
        let mut proc_free = start;
        let mut bursts_read = 0u64;
        let mut matched = 0u64;
        let mut local_bits: Vec<bool> = Vec::with_capacity(job.local_rows as usize);
        let total_bursts = job.local_rows.div_ceil(8);
        for burst in 0..total_bursts {
            let access = module
                .serve_addr(
                    PhysAddr(job.local_col_addr.0 + burst * 64),
                    false,
                    Requester::Ndp,
                    issue_cursor,
                    None,
                )
                .map_err(|_| DeviceError::NotOwned)?;
            bursts_read += 1;
            let cas_at = access.data_ready.saturating_sub(cas_pipeline);
            issue_cursor = cas_at.max(issue_cursor) + t.bus_clock.period();
            proc_free = proc_free.max(access.data_ready);
            let data = access.data.expect("read");
            let words = (job.local_rows - burst * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                let hit = lo <= v && v <= hi;
                matched += u64::from(hit);
                local_bits.push(hit);
            }
            proc_free += Tick::from_ps(words * ps_per_word);
        }

        // Pass 2: masked read-modify-write of every global output burst
        // that contains one of our bits.
        let global_rows = job.local_rows * job.ways as u64;
        let out_bursts = global_rows.div_ceil(512);
        let mut rmw_reads = 0u64;
        let mut bursts_written = 0u64;
        for ob in 0..out_bursts {
            let addr = PhysAddr(job.out_addr.0 + ob * 64);
            let access = module
                .serve_addr(addr, false, Requester::Ndp, proc_free, None)
                .map_err(|_| DeviceError::NotOwned)?;
            rmw_reads += 1;
            proc_free = proc_free.max(access.data_ready);
            let mut burst = access.data.expect("read");
            merge_masked_bits(&mut burst, &local_bits, ob * 512, job.ways, job.phase);
            module
                .serve_addr(addr, true, Requester::Ndp, proc_free, Some(&burst))
                .expect("rank validated");
            bursts_written += 1;
            proc_free += t.t_burst;
        }

        Ok(InterleavedRun {
            end: proc_free,
            matched,
            bursts_read,
            rmw_reads,
            bursts_written,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SelectJob;
    use crate::ownership::grant_ownership;
    use jafar_common::bitset::BitSet;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    fn setup() -> (JafarDevice, DramModule, Tick) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        let t0 = lease.acquired_at;

        (JafarDevice::paper_default(), m, t0)
    }

    #[test]
    fn phase_rows_partitions_the_column_exactly() {
        for rows in [0u64, 1, 7, 512, 513, 1_000_003] {
            for ways in [1u32, 2, 3, 4, 8] {
                let total: u64 = (0..ways).map(|p| phase_rows(rows, ways, p)).sum();
                assert_eq!(total, rows, "rows {rows} ways {ways}");
                // No phase owns more than one row over its siblings.
                let max = (0..ways).map(|p| phase_rows(rows, ways, p)).max().unwrap();
                let min = (0..ways).map(|p| phase_rows(rows, ways, p)).min().unwrap();
                assert!(max - min <= 1);
            }
        }
        assert_eq!(phase_rows(10, 1, 0), 10, "contiguous placement owns all");
    }

    #[test]
    fn aligned_chunk_covers_and_aligns() {
        for rows in [1u64, 511, 512, 513, 2048, 99_999] {
            for shards in [1u64, 2, 3, 4, 7] {
                let chunk = aligned_chunk(rows, shards, 512);
                assert_eq!(chunk % 512, 0, "rows {rows} shards {shards}");
                assert!(chunk * shards >= rows, "covers the column");
                // Minimal: one alignment quantum smaller could not cover
                // the column with the same shard count.
                assert!(chunk == 512 || (chunk - 512) * shards < rows);
            }
        }
    }

    #[test]
    fn merge_masked_bits_only_touches_own_phase() {
        let mut burst = [0xFFu8; 64];
        // Phase 0 of 2: even global bits; all local bits false → clear
        // every even bit, leave odd bits set.
        let local = vec![false; 256];
        merge_masked_bits(&mut burst, &local, 0, 2, 0);
        for byte in burst {
            assert_eq!(byte, 0b1010_1010);
        }
    }

    #[test]
    fn two_phases_reconstruct_global_bitset() {
        // Simulate 2-way interleaving: global column split into even/odd
        // words on two "DIMMs" (here: two regions of one module, filtered
        // in two passes with the two phases).
        let (mut d, mut m, t0) = setup();
        let mut rng = SplitMix64::new(77);
        let global_rows = 1024u64;
        let global: Vec<i64> = (0..global_rows)
            .map(|_| rng.next_range_inclusive(0, 99))
            .collect();
        let even: Vec<i64> = global.iter().copied().step_by(2).collect();
        let odd: Vec<i64> = global.iter().copied().skip(1).step_by(2).collect();
        for (i, v) in even.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(i as u64 * 8), *v);
        }
        for (i, v) in odd.iter().enumerate() {
            m.data_mut()
                .write_i64(PhysAddr(32 * 1024 + i as u64 * 8), *v);
        }
        let out_addr = 64 * 1024u64;
        let r0 = d
            .run_select_interleaved(
                &mut m,
                InterleavedSelectJob {
                    local_col_addr: PhysAddr(0),
                    local_rows: even.len() as u64,
                    predicate: Predicate::Lt(50),
                    out_addr: PhysAddr(out_addr),
                    ways: 2,
                    phase: 0,
                },
                t0,
            )
            .unwrap();
        let r1 = d
            .run_select_interleaved(
                &mut m,
                InterleavedSelectJob {
                    local_col_addr: PhysAddr(32 * 1024),
                    local_rows: odd.len() as u64,
                    predicate: Predicate::Lt(50),
                    out_addr: PhysAddr(out_addr),
                    ways: 2,
                    phase: 1,
                },
                r0.end,
            )
            .unwrap();
        let expect: Vec<u32> = global
            .iter()
            .enumerate()
            .filter(|(_, &v)| v < 50)
            .map(|(i, _)| i as u32)
            .collect();
        let mut bytes = vec![0u8; (global_rows as usize).div_ceil(8)];
        m.data().read(PhysAddr(out_addr), &mut bytes);
        let got = BitSet::from_bytes(&bytes, global_rows as usize);
        assert_eq!(got.to_positions(), expect);
        assert_eq!(r0.matched + r1.matched, expect.len() as u64);
    }

    #[test]
    fn interleaved_writeback_costs_rmw() {
        // Contiguous layout (the paper's alternative) writes each output
        // burst once; interleaved pays a read + a write per output burst.
        let (mut d, mut m, t0) = setup();
        let rows = 2048u64;
        let values: Vec<i64> = (0..rows as i64).collect();
        for (i, v) in values.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(i as u64 * 8), *v);
        }
        let inter = d
            .run_select_interleaved(
                &mut m,
                InterleavedSelectJob {
                    local_col_addr: PhysAddr(0),
                    local_rows: rows,
                    predicate: Predicate::Lt(100),
                    out_addr: PhysAddr(64 * 1024),
                    ways: 2,
                    phase: 0,
                },
                t0,
            )
            .unwrap();
        let plain = d
            .run_select(
                &mut m,
                SelectJob {
                    col_addr: PhysAddr(0),
                    rows,
                    predicate: Predicate::Lt(100),
                    out_addr: PhysAddr(96 * 1024),
                },
                inter.end,
            )
            .unwrap();
        assert!(inter.rmw_reads > 0);
        // Interleaved global bitset covers ways× rows → at least as many
        // writebacks, plus the RMW reads the contiguous path never pays.
        assert!(inter.bursts_written >= plain.bursts_written);
        assert_eq!(inter.rmw_reads, inter.bursts_written);
    }

    #[test]
    #[should_panic(expected = "bad interleave spec")]
    fn phase_out_of_range_panics() {
        let (mut d, mut m, t0) = setup();
        let _ = d.run_select_interleaved(
            &mut m,
            InterleavedSelectJob {
                local_col_addr: PhysAddr(0),
                local_rows: 8,
                predicate: Predicate::Lt(1),
                out_addr: PhysAddr(1024),
                ways: 2,
                phase: 2,
            },
            t0,
        );
    }
}
