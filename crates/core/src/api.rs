//! The host-facing API of Figure 2.
//!
//! ```c
//! int errno = select_jafar(
//!     void*    col_data,
//!     int      range_low,
//!     int      range_high,
//!     uint8_t* out_buf,
//!     size_t   num_input_rows,
//!     size_t*  num_output_rows);
//! ```
//!
//! "The API is designed so that this function must be called for every page
//! in the column, since JAFAR must rely on the CPU to provide memory
//! translation services" (§2.2). The reproduction keeps the errno-style
//! contract: [`select_jafar`] programs the control registers, starts the
//! device, and reports the match count; the caller (the column-store's
//! pushdown path, or `jafar-sim`'s driver which also charges the
//! register-write and polling time) iterates pages.

use crate::device::{
    DeviceError, FusedSelectJob, FusedSelectRun, JafarDevice, SelectJob, SelectRun,
};
use crate::predicate::Predicate;
use crate::regs::Reg;
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr};

/// POSIX-flavoured error codes for the Figure-2 contract.
///
/// Every [`DeviceError`] and [`jafar_dram::IssueError`] variant maps to a
/// *distinct* code (see [`device_errno`] / [`issue_errno`]) so a host-side
/// log line pins down exactly what failed; the resilient driver keys its
/// recovery policy off these values.
pub mod errno {
    /// Success.
    pub const OK: i32 = 0;
    /// Operation not permitted: an NDP command targeted an unowned rank.
    pub const EPERM: i32 = 1;
    /// Argument list too long: a fused job named zero or more than
    /// [`crate::device::MAX_FUSED_LANES`] predicate lanes (or mismatched
    /// predicate/output counts).
    pub const E2BIG: i32 = 7;
    /// I/O error: uncorrectable (double-bit) ECC failure in a read burst.
    pub const EIO: i32 = 5;
    /// No such device or address: command illegal in the bank's state.
    pub const ENXIO: i32 = 6;
    /// Try again: the command is legal but may not issue yet.
    pub const EAGAIN: i32 = 11;
    /// Permission denied: the rank is not owned by the device.
    pub const EACCES: i32 = 13;
    /// Bad address: the job spans ranks.
    pub const EFAULT: i32 = 14;
    /// Device busy: a host data command hit an NDP-owned rank.
    pub const EBUSY: i32 = 16;
    /// Invalid argument: misalignment.
    pub const EINVAL: i32 = 22;
    /// Not empty: REFRESH/MRS targeted a rank with open rows.
    pub const ENOTEMPTY: i32 = 39;
    /// Protocol error: a ModeRegisterSet was transiently ignored (retry).
    pub const EPROTO: i32 = 71;
    /// Bad message: uncorrectable ECC surfaced at the command layer.
    pub const EBADMSG: i32 = 74;
    /// Timed out: the driver's watchdog fired before completion.
    pub const ETIMEDOUT: i32 = 110;
    /// Interrupted: the DRAM stream was preempted mid-job by a transient
    /// rank-level condition (e.g. a refresh storm) — retry the page.
    pub const ERESTART: i32 = 85;
    /// Key expired: the job was admitted after the lease deadline.
    pub const EKEYEXPIRED: i32 = 127;
}

/// Maps a device-level rejection to its errno. Total and injective: every
/// variant gets its own code, distinct from every [`issue_errno`] code.
pub fn device_errno(e: DeviceError) -> i32 {
    match e {
        DeviceError::NotOwned => errno::EACCES,
        DeviceError::Misaligned => errno::EINVAL,
        DeviceError::SpansRanks => errno::EFAULT,
        DeviceError::LeaseExpired => errno::EKEYEXPIRED,
        DeviceError::Uncorrectable => errno::EIO,
        DeviceError::Interrupted => errno::ERESTART,
        DeviceError::LaneOverflow => errno::E2BIG,
    }
}

/// Maps a DRAM command-layer rejection to its errno. Total and injective
/// across the union with [`device_errno`].
pub fn issue_errno(e: jafar_dram::IssueError) -> i32 {
    use jafar_dram::IssueError;
    match e {
        IssueError::RankOwnedByNdp => errno::EBUSY,
        IssueError::NdpWithoutOwnership => errno::EPERM,
        IssueError::WrongState(_) => errno::ENXIO,
        IssueError::TooEarly(_) => errno::EAGAIN,
        IssueError::RanksNotQuiesced => errno::ENOTEMPTY,
        IssueError::Uncorrectable => errno::EBADMSG,
        IssueError::MrsGlitch => errno::EPROTO,
    }
}

/// Arguments of one `select_jafar` call (one page of the column).
#[derive(Clone, Copy, Debug)]
pub struct SelectArgs {
    /// Physical base of the page's column data.
    pub col_data: PhysAddr,
    /// Inclusive lower bound.
    pub range_low: i64,
    /// Inclusive upper bound.
    pub range_high: i64,
    /// Physical base of the page's slice of the output bitset.
    pub out_buf: PhysAddr,
    /// Rows in this page.
    pub num_input_rows: u64,
}

/// Result of one call.
#[derive(Clone, Copy, Debug)]
pub struct SelectOutcome {
    /// 0 on success, else an `errno` value.
    pub errno: i32,
    /// Rows that passed (the `*num_output_rows` out-parameter).
    pub num_output_rows: u64,
    /// Device-side timing, when the call succeeded.
    pub run: Option<SelectRun>,
}

/// How the host learns a device operation finished.
///
/// §2.2: the CPU "is currently notified of JAFAR operation completion by
/// polling a shared memory location (CPU utilization in a complete system
/// can be improved by using hardware interrupts)". Both mechanisms are
/// modelled: polling discovers completion at the next poll edge and burns
/// the CPU meanwhile; an interrupt frees the CPU but adds delivery +
/// handler latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionMode {
    /// Spin on the shared completion word every `gap`.
    Polling {
        /// Poll interval.
        gap: Tick,
    },
    /// Hardware interrupt with delivery + handler `latency`.
    Interrupt {
        /// Interrupt delivery and handling latency.
        latency: Tick,
    },
}

impl CompletionMode {
    /// When the host observes a device run that finished at `done`, having
    /// started waiting at `wait_from`. Also returns the CPU time burned
    /// waiting (the §2.2 utilization cost of polling).
    pub fn observe(self, wait_from: Tick, done: Tick) -> (Tick, Tick) {
        match self {
            CompletionMode::Polling { gap } => {
                let busy = done.saturating_sub(wait_from);
                let polls = busy.as_ps().div_ceil(gap.as_ps().max(1));
                let observed = wait_from + Tick::from_ps(polls * gap.as_ps());
                (observed, observed - wait_from)
            }
            CompletionMode::Interrupt { latency } => (done + latency, Tick::ZERO),
        }
    }
}

/// Per-invocation host driver costs (charged by the simulation layer).
#[derive(Clone, Copy, Debug)]
pub struct DriverCosts {
    /// Programming the control registers + the start kick (uncached MMIO
    /// stores, write-combined).
    pub setup: Tick,
    /// Completion discovery mechanism.
    pub completion: CompletionMode,
}

impl Default for DriverCosts {
    fn default() -> Self {
        DriverCosts {
            setup: Tick::from_ns(60),
            completion: CompletionMode::Polling {
                gap: Tick::from_ns(100),
            },
        }
    }
}

/// The Figure-2 entry point: programs the registers, runs the device,
/// returns errno + match count.
pub fn select_jafar(
    device: &mut JafarDevice,
    module: &mut DramModule,
    args: SelectArgs,
    at: Tick,
) -> SelectOutcome {
    // Program the memory-mapped registers the way the driver would.
    let regs = device.regs_mut();
    regs.write(Reg::ColAddr, args.col_data.0);
    regs.write(Reg::NumRows, args.num_input_rows);
    regs.write(Reg::RangeLo, args.range_low as u64);
    regs.write(Reg::RangeHi, args.range_high as u64);
    regs.write(Reg::OutAddr, args.out_buf.0);

    let job = SelectJob {
        col_addr: args.col_data,
        rows: args.num_input_rows,
        predicate: Predicate::Between(args.range_low, args.range_high),
        out_addr: args.out_buf,
    };
    match device.run_select(module, job, at) {
        Ok(run) => SelectOutcome {
            errno: errno::OK,
            num_output_rows: run.matched,
            run: Some(run),
        },
        Err(e) => SelectOutcome {
            errno: device_errno(e),
            num_output_rows: 0,
            run: None,
        },
    }
}

/// Arguments of one fused `select_jafar_fused` call: `k` predicates over
/// one page of the column, one output bitset slice per lane.
#[derive(Clone, Debug)]
pub struct FusedSelectArgs {
    /// Physical base of the page's column data.
    pub col_data: PhysAddr,
    /// Per-lane inclusive `(low, high)` bounds.
    pub ranges: Vec<(i64, i64)>,
    /// Per-lane physical bases of the page's output bitset slices.
    pub out_bufs: Vec<PhysAddr>,
    /// Rows in this page.
    pub num_input_rows: u64,
}

/// Result of one fused call.
#[derive(Clone, Debug)]
pub struct FusedSelectOutcome {
    /// 0 on success, else an `errno` value.
    pub errno: i32,
    /// Per-lane rows that passed.
    pub num_output_rows: Vec<u64>,
    /// Device-side timing, when the call succeeded.
    pub run: Option<FusedSelectRun>,
}

/// The fused entry point: one register-programming pass per lane (the
/// lane-indexed register window), one device pass over the page for all
/// lanes. The driver charges the same per-invocation `setup` cost as the
/// solo call — the lane registers are written in the same write-combined
/// MMIO burst.
pub fn select_jafar_fused(
    device: &mut JafarDevice,
    module: &mut DramModule,
    args: &FusedSelectArgs,
    at: Tick,
) -> FusedSelectOutcome {
    let regs = device.regs_mut();
    regs.write(Reg::ColAddr, args.col_data.0);
    regs.write(Reg::NumRows, args.num_input_rows);
    for (&(lo, hi), out) in args.ranges.iter().zip(&args.out_bufs) {
        regs.write(Reg::RangeLo, lo as u64);
        regs.write(Reg::RangeHi, hi as u64);
        regs.write(Reg::OutAddr, out.0);
    }

    let job = FusedSelectJob {
        col_addr: args.col_data,
        rows: args.num_input_rows,
        predicates: args
            .ranges
            .iter()
            .map(|&(lo, hi)| Predicate::Between(lo, hi))
            .collect(),
        out_addrs: args.out_bufs.clone(),
    };
    match device.run_select_fused(module, &job, at) {
        Ok(run) => FusedSelectOutcome {
            errno: errno::OK,
            num_output_rows: run.matched.clone(),
            run: Some(run),
        },
        Err(e) => FusedSelectOutcome {
            errno: device_errno(e),
            num_output_rows: vec![],
            run: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ownership::grant_ownership;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    fn setup() -> (JafarDevice, DramModule, Tick) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        let t0 = lease.acquired_at;

        (JafarDevice::paper_default(), m, t0)
    }

    #[test]
    fn successful_call_reports_count() {
        let (mut d, mut m, t0) = setup();
        for i in 0..100i64 {
            m.data_mut().write_i64(PhysAddr(i as u64 * 8), i);
        }
        let out = select_jafar(
            &mut d,
            &mut m,
            SelectArgs {
                col_data: PhysAddr(0),
                range_low: 10,
                range_high: 19,
                out_buf: PhysAddr(64 * 1024),
                num_input_rows: 100,
            },
            t0,
        );
        assert_eq!(out.errno, errno::OK);
        assert_eq!(out.num_output_rows, 10);
        assert!(out.run.is_some());
        // Registers reflect the programmed call.
        assert_eq!(d.regs().read(Reg::NumRows), 100);
        assert_eq!(d.regs().read(Reg::OutCount), 10);
    }

    #[test]
    fn errno_mapping() {
        let (mut d, mut m, t0) = setup();
        // Misaligned input.
        let out = select_jafar(
            &mut d,
            &mut m,
            SelectArgs {
                col_data: PhysAddr(4),
                range_low: 0,
                range_high: 1,
                out_buf: PhysAddr(64 * 1024),
                num_input_rows: 8,
            },
            t0,
        );
        assert_eq!(out.errno, errno::EINVAL);
        // Unowned rank (rank 1 under RankRowBankBlock starts at half).
        let half = DramGeometry::tiny().rank_bytes();
        let out = select_jafar(
            &mut d,
            &mut m,
            SelectArgs {
                col_data: PhysAddr(half),
                range_low: 0,
                range_high: 1,
                out_buf: PhysAddr(half + 4096),
                num_input_rows: 8,
            },
            t0,
        );
        assert_eq!(out.errno, errno::EACCES);
        assert_eq!(out.num_output_rows, 0);
    }

    #[test]
    fn per_page_iteration_covers_column() {
        // The API contract: one call per page; bitset slices concatenate.
        let (mut d, mut m, t0) = setup();
        let rows_total = 1024u64;
        let mut expect = 0u64;
        for i in 0..rows_total {
            let v = (i % 10) as i64;
            m.data_mut().write_i64(PhysAddr(i * 8), v);
            expect += u64::from((0..=4).contains(&v));
        }
        let page_bytes = 4096u64;
        let rows_per_page = page_bytes / 8;
        let out_base = 128 * 1024u64;
        let mut at = t0;
        let mut total = 0;
        for page in 0..rows_total / rows_per_page {
            let out = select_jafar(
                &mut d,
                &mut m,
                SelectArgs {
                    col_data: PhysAddr(page * page_bytes),
                    range_low: 0,
                    range_high: 4,
                    out_buf: PhysAddr(out_base + page * rows_per_page / 8),
                    num_input_rows: rows_per_page,
                },
                at,
            );
            assert_eq!(out.errno, errno::OK);
            total += out.num_output_rows;
            at = out.run.unwrap().end;
        }
        assert_eq!(total, expect, "digits 0–4 of (i % 10)");
    }

    #[test]
    fn errno_mapping_is_total_and_injective() {
        use jafar_dram::IssueError;
        // Every variant of both error enums, exhaustively. A new variant
        // extends one of these arrays or the match in its mapping fails to
        // compile — either way this test stays honest.
        let device = [
            DeviceError::NotOwned,
            DeviceError::Misaligned,
            DeviceError::SpansRanks,
            DeviceError::LeaseExpired,
            DeviceError::Uncorrectable,
            DeviceError::Interrupted,
            DeviceError::LaneOverflow,
        ];
        let issue = [
            IssueError::RankOwnedByNdp,
            IssueError::NdpWithoutOwnership,
            IssueError::WrongState("x"),
            IssueError::TooEarly(Tick::ZERO),
            IssueError::RanksNotQuiesced,
            IssueError::Uncorrectable,
            IssueError::MrsGlitch,
        ];
        let mut codes: Vec<i32> = device
            .iter()
            .map(|&e| device_errno(e))
            .chain(issue.iter().map(|&e| issue_errno(e)))
            .collect();
        for &c in &codes {
            assert_ne!(c, errno::OK, "an error never maps to success");
            assert!(c > 0, "errno values are positive");
        }
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(
            codes.len(),
            n,
            "distinct errno per variant across the union"
        );
    }

    #[test]
    fn driver_cost_defaults() {
        let c = DriverCosts::default();
        assert!(c.setup > Tick::ZERO);
        assert!(matches!(c.completion, CompletionMode::Polling { .. }));
    }

    #[test]
    fn completion_mode_semantics() {
        let polling = CompletionMode::Polling {
            gap: Tick::from_ns(100),
        };
        // Device finishes at 250 ns after waiting began → observed at the
        // 300 ns poll; the CPU spun for all 300 ns.
        let (seen, burned) = polling.observe(Tick::ZERO, Tick::from_ns(250));
        assert_eq!(seen, Tick::from_ns(300));
        assert_eq!(burned, Tick::from_ns(300));
        // Exact multiple: observed on the edge itself.
        let (seen, _) = polling.observe(Tick::ZERO, Tick::from_ns(200));
        assert_eq!(seen, Tick::from_ns(200));

        let interrupt = CompletionMode::Interrupt {
            latency: Tick::from_ns(500),
        };
        let (seen, burned) = interrupt.observe(Tick::ZERO, Tick::from_ns(250));
        assert_eq!(seen, Tick::from_ns(750), "interrupt adds latency...");
        assert_eq!(burned, Tick::ZERO, "...but frees the CPU");
    }
}
