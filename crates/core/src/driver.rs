//! The resilient host driver: `select_jafar` with a recovery policy.
//!
//! [`select_jafar`] is the Figure-2 primitive — one page, one errno. This
//! module wraps it in the machinery a production host would run it under,
//! so a query survives the fault classes `jafar-dram`'s injector models:
//!
//! - **Expiring leases.** Ownership is granted for a bounded window
//!   ([`crate::ownership::grant_ownership_for`]) — §2.2 hands the rank over
//!   "knowing that JAFAR will finish its allotted work in that amount of
//!   time". Between pages the driver renews the lease whenever the
//!   remaining window is thinner than [`ResilienceConfig::renew_margin`].
//! - **Watchdog.** A page whose completion is not observed within
//!   [`ResilienceConfig::watchdog`] plus
//!   [`ResilienceConfig::watchdog_per_row`]·rows of its invocation is
//!   abandoned at the timeout (the stalled transfer keeps the DIMM busy,
//!   but the host stops waiting) and retried.
//! - **Bounded exponential backoff.** Transient failures — MRS glitches,
//!   uncorrectable ECC reads, watchdog timeouts, lease expiry races — are
//!   retried up to [`ResilienceConfig::max_retries`] times with delay
//!   `min(backoff_base · 2^attempt, backoff_max)`.
//! - **CPU-scan fallback.** A page that exhausts its retries is scanned by
//!   the host instead: the lease is released, the page is streamed over
//!   timed host reads and the bitset slice written back — bit-identical to
//!   what the device would have produced. If even the release fails, the
//!   driver degrades to functional reads with a modelled per-line cost, so
//!   the *result* is always correct and only the *cost* varies.
//! - **Circuit breaker.** After [`ResilienceConfig::breaker_threshold`]
//!   consecutive page failures the driver stops attempting pushdown and
//!   finishes the query entirely on the CPU path.
//!
//! Every recovery action is counted in [`DriverStats`], surfaced as a
//! [`Scoreboard`] so the simulator's run report can say what the faults
//! cost. Under an empty fault plan the driver's timing is identical to the
//! bare per-page loop (`jafar-sim`'s `run_select_jafar`).

use crate::aggregate::{AggOp, AggregateJob};
use crate::api::{
    errno, issue_errno, select_jafar, select_jafar_fused, DriverCosts, FusedSelectArgs, SelectArgs,
};
use crate::device::{DeviceError, JafarDevice};
use crate::ownership::{grant_ownership_for, release_ownership, renew_lease, Lease};
use crate::project::ProjectJob;
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::stats::{Counter, Scoreboard};
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr, Requester};

/// Knobs of the recovery policy.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceConfig {
    /// Per-invocation host costs (register programming, completion
    /// discovery) — identical in meaning to the bare driver's.
    pub costs: DriverCosts,
    /// Watchdog budget, fixed part. A page whose completion is not
    /// observed within `watchdog + watchdog_per_row · page_rows` of its
    /// invocation is abandoned and retried.
    pub watchdog: Tick,
    /// Watchdog budget, per-row part — scales the timeout with the page
    /// size so huge pages get a proportionally longer window. The default
    /// (10 ns/row) is ~10× the clean per-row streaming time, so a healthy
    /// page never trips it while a stalled burst still does.
    pub watchdog_per_row: Tick,
    /// Retries per page beyond the first attempt before falling back.
    pub max_retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Tick,
    /// Backoff ceiling.
    pub backoff_max: Tick,
    /// Consecutive page failures before the breaker trips and the rest of
    /// the query runs on the CPU.
    pub breaker_threshold: u32,
    /// Ownership window per grant/renewal (`Tick::MAX` = non-expiring).
    pub lease_window: Tick,
    /// Renew the lease before invoking a page if less than this remains.
    pub renew_margin: Tick,
    /// Bytes per `select_jafar` invocation (the Figure-2 page).
    pub page_bytes: u64,
    /// CPU fallback: predicate cost per 64-bit word.
    pub cpu_word_cost: Tick,
    /// CPU fallback: modelled cost per 64-byte line when the timed host
    /// path is unavailable (rank still owned) and the driver degrades to
    /// functional reads.
    pub degraded_line_cost: Tick,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            costs: DriverCosts::default(),
            watchdog: Tick::from_us(20),
            watchdog_per_row: Tick::from_ns(10),
            max_retries: 3,
            backoff_base: Tick::from_ns(200),
            backoff_max: Tick::from_us(10),
            breaker_threshold: 2,
            lease_window: Tick::MAX,
            renew_margin: Tick::from_us(2),
            page_bytes: 4096,
            cpu_word_cost: Tick::from_ps(500),
            degraded_line_cost: Tick::from_ns(100),
        }
    }
}

/// What the recovery machinery did during one or more runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Pages processed in total.
    pub pages: Counter,
    /// Pages completed on the device.
    pub pages_jafar: Counter,
    /// Pages completed by the CPU fallback scan.
    pub pages_cpu: Counter,
    /// Page attempts repeated after a transient failure.
    pub retries: Counter,
    /// Ownership grants (initial and re-grants after fallback).
    pub lease_grants: Counter,
    /// In-place lease renewals between pages.
    pub lease_renewals: Counter,
    /// Jobs rejected with `EKEYEXPIRED` (the renewal raced the deadline).
    pub lease_expiries: Counter,
    /// Pages abandoned at the watchdog timeout.
    pub watchdog_fires: Counter,
    /// Mode-register commands retried after a transient glitch.
    pub mrs_retries: Counter,
    /// Pages aborted by an uncorrectable ECC read (`EIO`).
    pub uncorrectable: Counter,
    /// Times the circuit breaker tripped to all-CPU execution.
    pub breaker_trips: Counter,
    /// 64-byte lines read functionally because the timed host path was
    /// unavailable during a fallback scan.
    pub degraded_lines: Counter,
    /// One-shot kernels (aggregate / projection) finished by the host scan
    /// after the device path exhausted its retries.
    pub kernel_fallbacks: Counter,
}

impl DriverStats {
    /// Sum of every recovery event — zero iff the run was undisturbed.
    pub fn recovery_total(&self) -> u64 {
        self.retries.get()
            + self.lease_renewals.get()
            + self.lease_expiries.get()
            + self.watchdog_fires.get()
            + self.mrs_retries.get()
            + self.uncorrectable.get()
            + self.breaker_trips.get()
            + self.pages_cpu.get()
            + self.degraded_lines.get()
            + self.kernel_fallbacks.get()
    }

    /// The counters as a named scoreboard for run reports.
    pub fn scoreboard(&self) -> Scoreboard {
        let mut s = Scoreboard::new();
        s.add("pages", self.pages.get());
        s.add("pages_jafar", self.pages_jafar.get());
        s.add("pages_cpu", self.pages_cpu.get());
        s.add("retries", self.retries.get());
        s.add("lease_grants", self.lease_grants.get());
        s.add("lease_renewals", self.lease_renewals.get());
        s.add("lease_expiries", self.lease_expiries.get());
        s.add("watchdog_fires", self.watchdog_fires.get());
        s.add("mrs_retries", self.mrs_retries.get());
        s.add("uncorrectable", self.uncorrectable.get());
        s.add("breaker_trips", self.breaker_trips.get());
        s.add("degraded_lines", self.degraded_lines.get());
        s.add("kernel_fallbacks", self.kernel_fallbacks.get());
        s
    }
}

/// One full-column select request.
#[derive(Clone, Copy, Debug)]
pub struct SelectRequest {
    /// 64-byte-aligned base of the packed `i64` column.
    pub col_addr: PhysAddr,
    /// Rows in the column.
    pub rows: u64,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// 64-byte-aligned base of the output bitset.
    pub out_addr: PhysAddr,
}

/// One full-column *fused* select request: `k` range predicates over the
/// same column, each with its own output bitset region
/// (1 ≤ k ≤ [`crate::device::MAX_FUSED_LANES`]).
#[derive(Clone, Debug)]
pub struct FusedSelectRequest {
    /// 64-byte-aligned base of the packed `i64` column.
    pub col_addr: PhysAddr,
    /// Rows in the column.
    pub rows: u64,
    /// Per-lane inclusive `(lo, hi)` bounds.
    pub preds: Vec<(i64, i64)>,
    /// Per-lane 64-byte-aligned bases of the output bitsets.
    pub out_addrs: Vec<PhysAddr>,
}

/// Outcome of one resilient fused run.
#[derive(Clone, Debug)]
pub struct FusedDriverRun {
    /// End of the run (ownership released or final fallback write done).
    pub end: Tick,
    /// Per-lane matching rows.
    pub matched: Vec<u64>,
    /// Pages processed (the column is paged once for all lanes).
    pub pages: u64,
    /// CPU time burned spin-waiting on device completions.
    pub cpu_wait: Tick,
    /// Time inside device page runs (successful invocations only).
    pub device: Tick,
    /// Host driver time: setup, completion discovery, backoff waits.
    pub driver: Tick,
}

/// Outcome of one resilient run.
#[derive(Clone, Copy, Debug)]
pub struct DriverRun {
    /// End of the run (ownership released or final fallback write done).
    pub end: Tick,
    /// Matching rows.
    pub matched: u64,
    /// Pages processed.
    pub pages: u64,
    /// CPU time burned spin-waiting on device completions.
    pub cpu_wait: Tick,
    /// Time inside device page runs (successful invocations only).
    pub device: Tick,
    /// Host driver time: setup, completion discovery, backoff waits.
    pub driver: Tick,
}

/// Outcome of one resilient one-shot aggregation.
#[derive(Clone, Copy, Debug)]
pub struct AggregateOutcome {
    /// Completion tick (device run observed, or fallback fold done).
    pub end: Tick,
    /// The folded scalar, with the device kernel's exact semantics: sum for
    /// `Sum`/`Avg`, extremum for `Min`/`Max` (`None` when no row
    /// qualified), count for `Count` — identical whichever path produced
    /// it.
    pub value: Option<i64>,
    /// Qualifying rows.
    pub count: u64,
    /// False when the host fallback fold produced the value.
    pub on_device: bool,
}

/// Outcome of one resilient projection pass.
#[derive(Clone, Copy, Debug)]
pub struct ProjectOutcome {
    /// Completion tick (device run observed, or fallback writeback done).
    pub end: Tick,
    /// Values packed to `out_addr` — identical whichever path ran.
    pub emitted: u64,
    /// False when the host fallback packed the output.
    pub on_device: bool,
}

enum PageVerdict {
    /// The device finished the page; match count inside.
    Done(u64),
    /// Give up on the device for this page (retries exhausted or a
    /// permanent rejection) — fall back to the CPU scan.
    GiveUp,
}

/// A select in progress, steppable one page at a time.
///
/// [`ResilientDriver::run_select`] is simply `start_session` + `step_page`
/// until done; the rank-parallel scheduler ([`crate::parallel`]) instead
/// holds one session per rank and always steps the one whose simulated
/// clock is furthest behind, interleaving the per-rank timelines without
/// any shard ever observing another's future.
pub struct SelectSession {
    req: SelectRequest,
    rank: u32,
    row: u64,
    t: Tick,
    matched: u64,
    pages: u64,
    cpu_wait: Tick,
    device_time: Tick,
    driver_time: Tick,
    done: bool,
    parked: bool,
}

impl SelectSession {
    /// The session's simulated clock: everything this shard has done so
    /// far happened at or before this tick.
    pub fn cursor(&self) -> Tick {
        self.t
    }

    /// True once the final page completed and the lease was released.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True when a fail-fast step gave up on the device without falling
    /// back to the CPU scan: the session is frozen at a page boundary
    /// ([`SelectSession::next_row`] rows complete,
    /// [`SelectSession::matched`] matches banked) so a healthy rank can
    /// resume it via [`ResilientDriver::resume_session`].
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Matches banked so far (complete up to [`SelectSession::next_row`]).
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// The rank this session's column lives on.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The next unprocessed row (page-granular progress).
    pub fn next_row(&self) -> u64 {
        self.row
    }

    /// Folds the finished session into a [`DriverRun`].
    ///
    /// # Panics
    /// Panics if the session is not done yet.
    pub fn into_run(self) -> DriverRun {
        assert!(self.done, "session still has pages to run");
        DriverRun {
            end: self.t,
            matched: self.matched,
            pages: self.pages,
            cpu_wait: self.cpu_wait,
            device: self.device_time,
            driver: self.driver_time,
        }
    }
}

/// A fused select in progress, steppable one page at a time — the
/// `k`-lane sibling of [`SelectSession`]. One page step streams the page
/// once and advances every lane together; parking freezes all `k` lanes
/// at the same page boundary, so a migration salvages `k` bitset
/// prefixes of identical length.
pub struct FusedSession {
    req: FusedSelectRequest,
    rank: u32,
    row: u64,
    t: Tick,
    matched: Vec<u64>,
    pages: u64,
    cpu_wait: Tick,
    device_time: Tick,
    driver_time: Tick,
    done: bool,
    parked: bool,
}

impl FusedSession {
    /// The session's simulated clock.
    pub fn cursor(&self) -> Tick {
        self.t
    }

    /// True once the final page completed and the lease was released.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True when a fail-fast step parked the session at a page boundary
    /// (see [`SelectSession::is_parked`]): all `k` lanes are frozen at
    /// [`FusedSession::next_row`] rows complete.
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Per-lane matches banked so far (complete up to
    /// [`FusedSession::next_row`]).
    pub fn matched(&self) -> &[u64] {
        &self.matched
    }

    /// The rank this session's column lives on.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The next unprocessed row (page-granular progress, shared by every
    /// lane).
    pub fn next_row(&self) -> u64 {
        self.row
    }

    /// Number of fused predicate lanes.
    pub fn lanes(&self) -> usize {
        self.req.preds.len()
    }

    /// Folds the finished session into a [`FusedDriverRun`].
    ///
    /// # Panics
    /// Panics if the session is not done yet.
    pub fn into_run(self) -> FusedDriverRun {
        assert!(self.done, "fused session still has pages to run");
        FusedDriverRun {
            end: self.t,
            matched: self.matched,
            pages: self.pages,
            cpu_wait: self.cpu_wait,
            device: self.device_time,
            driver: self.driver_time,
        }
    }
}

/// The resilient driver. Owns the recovery policy, the current lease and
/// the circuit-breaker state; accumulates [`DriverStats`] across runs.
pub struct ResilientDriver {
    cfg: ResilienceConfig,
    stats: DriverStats,
    lease: Option<Lease>,
    consecutive_failures: u32,
    breaker_open: bool,
    tracer: SharedTracer,
}

impl ResilientDriver {
    /// A driver with the given policy.
    pub fn new(cfg: ResilienceConfig) -> Self {
        ResilientDriver {
            cfg,
            stats: DriverStats::default(),
            lease: None,
            consecutive_failures: 0,
            breaker_open: false,
            tracer: SharedTracer::disabled(),
        }
    }

    /// Attaches an event tracer: lease transitions, retries, watchdog and
    /// breaker events are emitted into it. Purely observational.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = tracer;
    }

    /// The policy.
    pub fn config(&self) -> &ResilienceConfig {
        &self.cfg
    }

    /// Accumulated recovery statistics.
    pub fn stats(&self) -> &DriverStats {
        &self.stats
    }

    /// Whether the breaker has tripped to all-CPU execution.
    pub fn breaker_open(&self) -> bool {
        self.breaker_open
    }

    /// Resets the breaker (e.g. between queries, after the operator
    /// decides the device is healthy again).
    pub fn reset_breaker(&mut self) {
        self.breaker_open = false;
        self.consecutive_failures = 0;
    }

    fn backoff(&self, attempt: u32) -> Tick {
        let mult = 1u64 << attempt.min(20);
        let ps = self
            .cfg
            .backoff_base
            .as_ps()
            .saturating_mul(mult)
            .min(self.cfg.backoff_max.as_ps());
        Tick::from_ps(ps)
    }

    /// Runs the full select, page by page, recovering from injected faults
    /// as configured. The result bitset at `req.out_addr` always equals the
    /// software reference; [`DriverStats`] records what that cost.
    pub fn run_select(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        req: SelectRequest,
        start: Tick,
    ) -> DriverRun {
        let mut session = self.start_session(module, req, start);
        while !session.is_done() {
            self.step_page(device, module, &mut session);
        }
        session.into_run()
    }

    /// Opens a steppable session for `req`. Pair with
    /// [`ResilientDriver::step_page`]; [`ResilientDriver::run_select`] is
    /// the convenience loop over the two.
    pub fn start_session(
        &self,
        module: &DramModule,
        req: SelectRequest,
        start: Tick,
    ) -> SelectSession {
        SelectSession {
            rank: module.decoder().decode(req.col_addr).rank,
            req,
            row: 0,
            t: start,
            matched: 0,
            pages: 0,
            cpu_wait: Tick::ZERO,
            device_time: Tick::ZERO,
            driver_time: Tick::ZERO,
            done: false,
            parked: false,
        }
    }

    /// Reopens a session for `req` that a previous rank left parked: the
    /// first `rows_done` rows are already complete (their bitset bytes
    /// salvaged by the caller) with `matched` matches banked, and this
    /// driver's rank continues from that page boundary at `start` under a
    /// fresh lease. Time accounting restarts at zero — the migrated
    /// session reports only the work done on the new rank.
    pub fn resume_session(
        &self,
        module: &DramModule,
        req: SelectRequest,
        rows_done: u64,
        matched: u64,
        start: Tick,
    ) -> SelectSession {
        SelectSession {
            rank: module.decoder().decode(req.col_addr).rank,
            req,
            row: rows_done,
            t: start,
            matched,
            pages: 0,
            cpu_wait: Tick::ZERO,
            device_time: Tick::ZERO,
            driver_time: Tick::ZERO,
            done: false,
            parked: false,
        }
    }

    /// Advances `session` by one page (device attempt with full recovery,
    /// or CPU fallback), or — once every page is processed — releases the
    /// lease and marks the session done. No-op on a done session.
    pub fn step_page(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        session: &mut SelectSession,
    ) {
        self.step_page_inner(device, module, session, false);
    }

    /// Like [`ResilientDriver::step_page`], but a page that exhausts the
    /// device ladder *parks* the session at its current page boundary
    /// instead of crawling through the CPU scan: `session.is_parked()`
    /// turns true, the row cursor does not advance, and the caller decides
    /// what happens next (typically migrating the shard to a healthy rank
    /// via [`ResilientDriver::resume_session`]). Breaker accounting is
    /// identical to the fallback path.
    pub fn step_page_failfast(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        session: &mut SelectSession,
    ) {
        self.step_page_inner(device, module, session, true);
    }

    /// Runs a full fused select, page by page, recovering from injected
    /// faults as configured: the `k`-lane sibling of
    /// [`ResilientDriver::run_select`]. Every lane's bitset at its
    /// `out_addr` equals the software reference — and is byte-identical
    /// to `k` solo [`ResilientDriver::run_select`] runs of the same
    /// predicates — whichever rung produced each page.
    pub fn run_select_fused(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        req: FusedSelectRequest,
        start: Tick,
    ) -> FusedDriverRun {
        let mut session = self.start_fused_session(module, req, start);
        while !session.is_done() {
            self.step_fused_page(device, module, &mut session);
        }
        session.into_run()
    }

    /// Opens a steppable fused session for `req`.
    pub fn start_fused_session(
        &self,
        module: &DramModule,
        req: FusedSelectRequest,
        start: Tick,
    ) -> FusedSession {
        let lanes = req.preds.len();
        FusedSession {
            rank: module.decoder().decode(req.col_addr).rank,
            req,
            row: 0,
            t: start,
            matched: vec![0; lanes],
            pages: 0,
            cpu_wait: Tick::ZERO,
            device_time: Tick::ZERO,
            driver_time: Tick::ZERO,
            done: false,
            parked: false,
        }
    }

    /// Reopens a fused session that a previous rank left parked: the
    /// first `rows_done` rows of *every* lane are complete (their bitset
    /// prefixes salvaged by the caller) with `matched[lane]` matches
    /// banked, and this driver's rank continues from that shared page
    /// boundary at `start` under a fresh lease. Time accounting restarts
    /// at zero, as in [`ResilientDriver::resume_session`].
    pub fn resume_fused_session(
        &self,
        module: &DramModule,
        req: FusedSelectRequest,
        rows_done: u64,
        matched: Vec<u64>,
        start: Tick,
    ) -> FusedSession {
        debug_assert_eq!(matched.len(), req.preds.len());
        FusedSession {
            rank: module.decoder().decode(req.col_addr).rank,
            req,
            row: rows_done,
            t: start,
            matched,
            pages: 0,
            cpu_wait: Tick::ZERO,
            device_time: Tick::ZERO,
            driver_time: Tick::ZERO,
            done: false,
            parked: false,
        }
    }

    /// Advances a fused session by one page (device attempt with the full
    /// recovery ladder, or the `k`-lane CPU fallback), or — once every
    /// page is processed — releases the lease and marks the session done.
    pub fn step_fused_page(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        session: &mut FusedSession,
    ) {
        self.step_fused_page_inner(device, module, session, false);
    }

    /// Like [`ResilientDriver::step_fused_page`], but a page that
    /// exhausts the device ladder *parks* the session at its page
    /// boundary — all lanes together — instead of crawling through the
    /// CPU scan. See [`ResilientDriver::step_page_failfast`].
    pub fn step_fused_page_failfast(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        session: &mut FusedSession,
    ) {
        self.step_fused_page_inner(device, module, session, true);
    }

    fn step_fused_page_inner(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        session: &mut FusedSession,
        failfast: bool,
    ) {
        if session.done || session.parked {
            return;
        }
        if session.row >= session.req.rows {
            if self.lease.is_some() {
                self.release_current(module, &mut session.t);
            }
            session.done = true;
            return;
        }
        let rows_per_page = self.cfg.page_bytes / 8;
        let page_rows = rows_per_page.min(session.req.rows - session.row);
        let args = FusedSelectArgs {
            col_data: PhysAddr(session.req.col_addr.0 + session.row * 8),
            ranges: session.req.preds.clone(),
            out_bufs: session
                .req
                .out_addrs
                .iter()
                .map(|a| PhysAddr(a.0 + session.row / 8))
                .collect(),
            num_input_rows: page_rows,
        };
        self.stats.pages.inc();
        let per_lane = if self.breaker_open {
            None
        } else {
            self.run_page_ladder(
                module,
                session.rank,
                page_rows,
                args.col_data.0,
                &mut session.t,
                &mut session.cpu_wait,
                &mut session.device_time,
                &mut session.driver_time,
                |m, at| {
                    let out = select_jafar_fused(device, m, &args, at);
                    let run = out.run.as_ref().map(|r| (r.end, r.matched.clone()));
                    (out.errno, run)
                },
            )
        };
        match per_lane {
            Some(counts) => {
                for (banked, n) in session.matched.iter_mut().zip(&counts) {
                    *banked += n;
                }
                self.stats.pages_jafar.inc();
                self.consecutive_failures = 0;
            }
            None => {
                if !self.breaker_open {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.cfg.breaker_threshold {
                        self.breaker_open = true;
                        self.stats.breaker_trips.inc();
                        self.tracer
                            .emit(session.t, EventKind::BreakerTransition { open: true });
                    }
                }
                if failfast {
                    // Freeze at the page boundary: rows [0, session.row)
                    // are complete in every lane and their bitset bytes
                    // are in DRAM; the caller re-dispatches the remainder
                    // elsewhere, salvaging one prefix per lane.
                    session.parked = true;
                    return;
                }
                self.tracer.emit(
                    session.t,
                    EventKind::CpuFallback {
                        page: session.pages,
                    },
                );
                let counts = self.run_fused_page_cpu(module, &args, &mut session.t);
                for (banked, n) in session.matched.iter_mut().zip(&counts) {
                    *banked += n;
                }
                self.stats.pages_cpu.inc();
            }
        }
        session.row += page_rows;
        session.pages += 1;
    }

    /// The `k`-lane CPU fallback: release the lease if held, stream the
    /// page once over timed host reads, evaluate every predicate lane in
    /// software and write each lane's bitset slice back — byte-identical
    /// to what the fused device pass would have produced per lane (and
    /// hence to `k` solo fallbacks). The CPU has no parallel comparator
    /// array, so predicate evaluation is charged per lane.
    fn run_fused_page_cpu(
        &mut self,
        module: &mut DramModule,
        args: &FusedSelectArgs,
        t: &mut Tick,
    ) -> Vec<u64> {
        if self.lease.is_some() {
            self.release_current(module, t);
        }
        let k = args.ranges.len();
        let page_rows = args.num_input_rows;
        let bursts = page_rows.div_ceil(8);
        let nbytes = page_rows.div_ceil(8) as usize;
        let mut out_bytes = vec![vec![0u8; nbytes]; k];
        let mut matched = vec![0u64; k];
        let mut cursor = *t;
        for b in 0..bursts {
            let addr = PhysAddr(args.col_data.0 + b * 64);
            let data = self.read_line(module, addr, &mut cursor);
            let words = (page_rows - b * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                for (lane, &(lo, hi)) in args.ranges.iter().enumerate() {
                    if lo <= v && v <= hi {
                        matched[lane] += 1;
                        let bit = b * 8 + w;
                        out_bytes[lane][(bit / 8) as usize] |= 1 << (bit % 8);
                    }
                }
            }
            cursor += self.cfg.cpu_word_cost * (words * k as u64);
        }
        // Write each lane's slice back as whole 64-byte lines (zero-padded
        // tail), matching the device's writeback footprint exactly.
        for (lane, bytes) in out_bytes.iter().enumerate() {
            for (i, chunk) in bytes.chunks(64).enumerate() {
                let mut line = [0u8; 64];
                line[..chunk.len()].copy_from_slice(chunk);
                let addr = PhysAddr((args.out_bufs[lane].0 + i as u64 * 64) & !63);
                match module.serve_addr(addr, true, Requester::Host, cursor, Some(&line)) {
                    Ok(access) => cursor = access.data_ready,
                    Err(_) => {
                        self.stats.degraded_lines.inc();
                        module.data_mut().write(addr, &line);
                        cursor += self.cfg.degraded_line_cost;
                    }
                }
            }
        }
        *t = cursor;
        matched
    }

    fn step_page_inner(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        session: &mut SelectSession,
        failfast: bool,
    ) {
        if session.done || session.parked {
            return;
        }
        if session.row >= session.req.rows {
            // Hand the rank back so host traffic resumes.
            if self.lease.is_some() {
                self.release_current(module, &mut session.t);
            }
            session.done = true;
            return;
        }
        let rows_per_page = self.cfg.page_bytes / 8;
        let page_rows = rows_per_page.min(session.req.rows - session.row);
        let args = SelectArgs {
            col_data: PhysAddr(session.req.col_addr.0 + session.row * 8),
            range_low: session.req.lo,
            range_high: session.req.hi,
            out_buf: PhysAddr(session.req.out_addr.0 + session.row / 8),
            num_input_rows: page_rows,
        };
        self.stats.pages.inc();
        let verdict = if self.breaker_open {
            PageVerdict::GiveUp
        } else {
            self.run_page_jafar(
                device,
                module,
                session.rank,
                args,
                &mut session.t,
                &mut session.cpu_wait,
                &mut session.device_time,
                &mut session.driver_time,
            )
        };
        match verdict {
            PageVerdict::Done(n) => {
                session.matched += n;
                self.stats.pages_jafar.inc();
                self.consecutive_failures = 0;
            }
            PageVerdict::GiveUp => {
                if !self.breaker_open {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.cfg.breaker_threshold {
                        self.breaker_open = true;
                        self.stats.breaker_trips.inc();
                        self.tracer
                            .emit(session.t, EventKind::BreakerTransition { open: true });
                    }
                }
                if failfast {
                    // Freeze at the page boundary: rows [0, session.row)
                    // are complete and their bitset bytes are in DRAM;
                    // the caller re-dispatches the remainder elsewhere.
                    session.parked = true;
                    return;
                }
                self.tracer.emit(
                    session.t,
                    EventKind::CpuFallback {
                        page: session.pages,
                    },
                );
                session.matched += self.run_page_cpu(module, args, &mut session.t);
                self.stats.pages_cpu.inc();
            }
        }
        session.row += page_rows;
        session.pages += 1;
    }

    /// One page on the device: lease upkeep, invocation, watchdog, bounded
    /// retries.
    #[allow(clippy::too_many_arguments)]
    fn run_page_jafar(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        rank: u32,
        args: SelectArgs,
        t: &mut Tick,
        cpu_wait: &mut Tick,
        device_time: &mut Tick,
        driver_time: &mut Tick,
    ) -> PageVerdict {
        let verdict = self.run_page_ladder(
            module,
            rank,
            args.num_input_rows,
            args.col_data.0,
            t,
            cpu_wait,
            device_time,
            driver_time,
            |m, at| {
                let out = select_jafar(device, m, args, at);
                (out.errno, out.run.map(|r| (r.end, r.matched)))
            },
        );
        match verdict {
            Some(matched) => PageVerdict::Done(matched),
            None => PageVerdict::GiveUp,
        }
    }

    /// The page-granular recovery ladder shared by the solo and fused
    /// select paths: lease upkeep (grant / renew inside the margin),
    /// invocation through `invoke`, watchdog on the observed completion,
    /// bounded backoff retries, errno-keyed recovery. `invoke` returns the
    /// call's errno plus `(device_end, result)` on success; `tag`
    /// identifies the page in trace events. `None` means the device path
    /// is exhausted for this page.
    #[allow(clippy::too_many_arguments)]
    fn run_page_ladder<R>(
        &mut self,
        module: &mut DramModule,
        rank: u32,
        rows: u64,
        tag: u64,
        t: &mut Tick,
        cpu_wait: &mut Tick,
        device_time: &mut Tick,
        driver_time: &mut Tick,
        mut invoke: impl FnMut(&mut DramModule, Tick) -> (i32, Option<(Tick, R)>),
    ) -> Option<R> {
        let mut attempt = 0u32;
        loop {
            // Lease upkeep: acquire if absent, renew if the remaining
            // window would not cover this invocation plus the margin.
            if self.lease.is_none() {
                match grant_ownership_for(module, rank, *t, self.cfg.lease_window) {
                    Ok(lease) => {
                        self.stats.lease_grants.inc();
                        self.tracer.emit(
                            lease.acquired_at,
                            EventKind::LeaseGrant {
                                rank,
                                until: lease.expires_at,
                            },
                        );
                        *t = lease.acquired_at;
                        self.lease = Some(lease);
                    }
                    Err(e) => {
                        // Glitched MRS or a refresh storm preempting the
                        // quiesce — both transient; retry with backoff.
                        let code = issue_errno(e);
                        if code == errno::EPROTO {
                            self.stats.mrs_retries.inc();
                        }
                        if !self.note_failure(&mut attempt, t, driver_time, code) {
                            return None;
                        }
                        continue;
                    }
                }
            } else {
                let horizon = *t + self.cfg.costs.setup + self.cfg.renew_margin;
                let needs_renewal = self
                    .lease
                    .as_ref()
                    .is_some_and(|lease| horizon >= lease.expires_at);
                if needs_renewal {
                    let mut renewed = self.lease.take().expect("checked above");
                    match renew_lease(module, &mut renewed, *t, self.cfg.lease_window) {
                        Ok(renewed_at) => {
                            self.stats.lease_renewals.inc();
                            self.tracer.emit(
                                renewed_at,
                                EventKind::LeaseRenew {
                                    rank,
                                    until: renewed.expires_at,
                                },
                            );
                            *t = renewed_at;
                            self.lease = Some(renewed);
                        }
                        Err(e) => {
                            self.lease = Some(renewed); // deadline unchanged
                            let code = issue_errno(e);
                            if code == errno::EPROTO {
                                self.stats.mrs_retries.inc();
                            }
                            if !self.note_failure(&mut attempt, t, driver_time, code) {
                                return None;
                            }
                            continue;
                        }
                    }
                }
            }

            let invoke_at = *t + self.cfg.costs.setup;
            let (code, run) = invoke(module, invoke_at);
            match code {
                x if x == errno::OK => {
                    let (end, result) = run.expect("success carries a run");
                    let (observed, burned) = self.cfg.costs.completion.observe(invoke_at, end);
                    let budget = self.cfg.watchdog + self.cfg.watchdog_per_row * rows;
                    let deadline = invoke_at + budget;
                    if observed > deadline {
                        // The completion never showed inside the window:
                        // the host abandons the wait at the timeout.
                        self.stats.watchdog_fires.inc();
                        self.tracer
                            .emit(deadline, EventKind::WatchdogFire { page: tag });
                        *cpu_wait += budget;
                        *t = deadline;
                        if !self.note_failure(&mut attempt, t, driver_time, errno::ETIMEDOUT) {
                            return None;
                        }
                    } else {
                        *cpu_wait += burned;
                        *device_time += end - invoke_at;
                        *driver_time += observed.saturating_sub(end) + self.cfg.costs.setup;
                        *t = observed.max(end);
                        return Some(result);
                    }
                }
                x if x == errno::EKEYEXPIRED => {
                    // The deadline raced past during a backoff; the device
                    // refused admission cheaply. Renew on the next attempt.
                    self.stats.lease_expiries.inc();
                    self.tracer.emit(invoke_at, EventKind::LeaseExpire { rank });
                    *t = invoke_at;
                    if !self.note_failure(&mut attempt, t, driver_time, x) {
                        return None;
                    }
                }
                x if x == errno::EACCES => {
                    // Ownership vanished under us (revoked externally):
                    // drop the stale lease and re-grant.
                    self.lease = None;
                    *t = invoke_at;
                    if !self.note_failure(&mut attempt, t, driver_time, x) {
                        return None;
                    }
                }
                x if x == errno::EIO => {
                    // Uncorrectable ECC mid-stream. The functional store is
                    // intact; a retry re-reads clean data.
                    self.stats.uncorrectable.inc();
                    *t = invoke_at;
                    if !self.note_failure(&mut attempt, t, driver_time, x) {
                        return None;
                    }
                }
                x if x == errno::ERESTART => {
                    // The DRAM stream was preempted mid-job (e.g. a refresh
                    // storm collided with a due refresh). Transient by
                    // construction — the storm was consumed — so retry.
                    *t = invoke_at;
                    if !self.note_failure(&mut attempt, t, driver_time, x) {
                        return None;
                    }
                }
                _ => {
                    // Misalignment / rank-spanning / lane overflow:
                    // permanent for this request shape; retrying cannot
                    // help.
                    return None;
                }
            }
        }
    }

    /// Books one failed attempt: counts the retry, waits out the backoff.
    /// False means the attempt budget is exhausted. `cause` is the errno of
    /// the failed attempt (for the trace record).
    fn note_failure(
        &mut self,
        attempt: &mut u32,
        t: &mut Tick,
        driver_time: &mut Tick,
        cause: i32,
    ) -> bool {
        if *attempt >= self.cfg.max_retries {
            return false;
        }
        let pause = self.backoff(*attempt);
        *t += pause;
        *driver_time += pause;
        *attempt += 1;
        self.stats.retries.inc();
        self.tracer.emit(
            *t,
            EventKind::DriverRetry {
                attempt: *attempt,
                errno: cause,
            },
        );
        true
    }

    /// The CPU fallback: release the lease if held, stream the page over
    /// timed host reads, evaluate the predicate in software and write the
    /// bitset slice back — bit-identical to the device's output.
    fn run_page_cpu(&mut self, module: &mut DramModule, args: SelectArgs, t: &mut Tick) -> u64 {
        if self.lease.is_some() {
            self.release_current(module, t);
        }
        let page_rows = args.num_input_rows;
        let bursts = page_rows.div_ceil(8);
        let mut out_bytes = vec![0u8; page_rows.div_ceil(8) as usize];
        let mut matched = 0u64;
        let mut cursor = *t;
        for b in 0..bursts {
            let addr = PhysAddr(args.col_data.0 + b * 64);
            let data = match module.serve_addr(addr, false, Requester::Host, cursor, None) {
                Ok(access) => {
                    cursor = access.data_ready;
                    access.data.expect("read returns data")
                }
                Err(_) => {
                    // Rank still owned (release failed) or the read burst
                    // was uncorrectable: degrade to a functional read at a
                    // modelled cost. Correctness is preserved — only the
                    // timing fidelity drops.
                    self.stats.degraded_lines.inc();
                    let mut buf = [0u8; 64];
                    module.data().read(addr, &mut buf);
                    cursor += self.cfg.degraded_line_cost;
                    buf
                }
            };
            let words = (page_rows - b * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                if args.range_low <= v && v <= args.range_high {
                    matched += 1;
                    let bit = b * 8 + w;
                    out_bytes[(bit / 8) as usize] |= 1 << (bit % 8);
                }
            }
            cursor += self.cfg.cpu_word_cost * words;
        }
        // Write the slice back as whole 64-byte lines (zero-padded tail),
        // matching the device's writeback footprint exactly.
        for (i, chunk) in out_bytes.chunks(64).enumerate() {
            let mut line = [0u8; 64];
            line[..chunk.len()].copy_from_slice(chunk);
            let addr = PhysAddr((args.out_buf.0 + i as u64 * 64) & !63);
            match module.serve_addr(addr, true, Requester::Host, cursor, Some(&line)) {
                Ok(access) => cursor = access.data_ready,
                Err(_) => {
                    self.stats.degraded_lines.inc();
                    module.data_mut().write(addr, &line);
                    cursor += self.cfg.degraded_line_cost;
                }
            }
        }
        *t = cursor;
        matched
    }

    /// Releases the held lease, retrying transient MRS glitches. If the
    /// release cannot land within the retry budget the lease is dropped
    /// anyway (the rank stays device-owned; fallback reads degrade).
    fn release_current(&mut self, module: &mut DramModule, t: &mut Tick) {
        let Some(lease) = self.lease.take() else {
            return;
        };
        let rank = lease.rank;
        let acquired_at = lease.acquired_at;
        let mut pending = lease;
        for attempt in 0..=self.cfg.max_retries {
            match release_ownership(module, pending, *t) {
                Ok(released) => {
                    *t = released;
                    return;
                }
                Err(e) => {
                    // A glitched MRS or a refresh storm preempting the
                    // quiesce; both transient.
                    if issue_errno(e) == errno::EPROTO {
                        self.stats.mrs_retries.inc();
                    }
                    *t += self.backoff(attempt);
                    pending = Lease {
                        rank,
                        acquired_at,
                        expires_at: Tick::MAX,
                    };
                }
            }
        }
    }

    /// Runs one scalar aggregation with the full recovery ladder: device
    /// kernel under lease upkeep / watchdog / bounded retries, then — when
    /// the device path is exhausted or the breaker is open — a host
    /// fallback that streams the column over timed reads and folds in
    /// software. The scalar is identical whichever path produced it; only
    /// the cost differs. No DRAM writeback: the value travels in the
    /// returned [`AggregateOutcome`].
    pub fn run_aggregate(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        job: AggregateJob,
        start: Tick,
    ) -> AggregateOutcome {
        match self.try_run_aggregate(device, module, job, start) {
            Ok(out) => out,
            Err(mut t) => {
                self.note_kernel_fallback(t, job.col_addr.0);
                let (value, count) = self.fallback_aggregate(module, job, &mut t);
                AggregateOutcome {
                    end: t,
                    value,
                    count,
                    on_device: false,
                }
            }
        }
    }

    /// The fallible half of [`ResilientDriver::run_aggregate`]: the device
    /// kernel under the full ladder, but when the device path is exhausted
    /// the job is handed *back* instead of folded on the host —
    /// `Err(tick)` carries the time the ladder gave up, breaker accounting
    /// already booked. The serving tier uses this to re-dispatch the shard
    /// onto a healthy rank rather than crawl through a host fold here.
    pub fn try_run_aggregate(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        job: AggregateJob,
        start: Tick,
    ) -> Result<AggregateOutcome, Tick> {
        let rank = module.decoder().decode(job.col_addr).rank;
        let mut t = start;
        let run = if self.breaker_open {
            None
        } else {
            self.run_kernel(module, rank, job.rows, job.col_addr.0, &mut t, |m, at| {
                device.run_aggregate(m, job, at).map(|r| (r.end, r))
            })
        };
        match run {
            Some(r) => Ok(AggregateOutcome {
                end: t,
                value: r.value,
                count: r.count,
                on_device: true,
            }),
            None => {
                self.note_kernel_failure(t);
                Err(t)
            }
        }
    }

    /// Runs one projection pass with the full recovery ladder. The fallback
    /// reads the selection bitset functionally (it is host-visible whether
    /// the select ran on the device or the CPU rung), streams the column
    /// over timed host reads, packs qualifying values densely and writes
    /// them back as whole 64-byte lines — byte-identical to the device's
    /// packed output over the emitted range.
    pub fn run_project(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        job: ProjectJob,
        start: Tick,
    ) -> ProjectOutcome {
        match self.try_run_project(device, module, job, start) {
            Ok(out) => out,
            Err(mut t) => {
                self.note_kernel_fallback(t, job.col_addr.0);
                let emitted = self.fallback_project(module, job, &mut t);
                ProjectOutcome {
                    end: t,
                    emitted,
                    on_device: false,
                }
            }
        }
    }

    /// The fallible half of [`ResilientDriver::run_project`], mirroring
    /// [`ResilientDriver::try_run_aggregate`]: `Err(tick)` means the
    /// device path is exhausted and the caller owns the fallback decision.
    pub fn try_run_project(
        &mut self,
        device: &mut JafarDevice,
        module: &mut DramModule,
        job: ProjectJob,
        start: Tick,
    ) -> Result<ProjectOutcome, Tick> {
        let rank = module.decoder().decode(job.col_addr).rank;
        let mut t = start;
        let run = if self.breaker_open {
            None
        } else {
            self.run_kernel(module, rank, job.rows, job.col_addr.0, &mut t, |m, at| {
                device.run_project(m, job, at).map(|r| (r.end, r))
            })
        };
        match run {
            Some(r) => Ok(ProjectOutcome {
                end: t,
                emitted: r.emitted,
                on_device: true,
            }),
            None => {
                self.note_kernel_failure(t);
                Err(t)
            }
        }
    }

    /// One one-shot kernel on the device: the same lease upkeep, watchdog
    /// and bounded-retry policy as [`ResilientDriver::step_page`], shared
    /// by every kernel shape via the `invoke` closure. `tag` identifies the
    /// job in trace events (its column address). `None` means the device
    /// path is exhausted — the caller falls back to the host.
    fn run_kernel<R>(
        &mut self,
        module: &mut DramModule,
        rank: u32,
        rows: u64,
        tag: u64,
        t: &mut Tick,
        mut invoke: impl FnMut(&mut DramModule, Tick) -> Result<(Tick, R), DeviceError>,
    ) -> Option<R> {
        let mut attempt = 0u32;
        // One-shot kernels do not report the per-session time breakdown.
        let mut sink = Tick::ZERO;
        loop {
            if self.lease.is_none() {
                match grant_ownership_for(module, rank, *t, self.cfg.lease_window) {
                    Ok(lease) => {
                        self.stats.lease_grants.inc();
                        self.tracer.emit(
                            lease.acquired_at,
                            EventKind::LeaseGrant {
                                rank,
                                until: lease.expires_at,
                            },
                        );
                        *t = lease.acquired_at;
                        self.lease = Some(lease);
                    }
                    Err(e) => {
                        let code = issue_errno(e);
                        if code == errno::EPROTO {
                            self.stats.mrs_retries.inc();
                        }
                        if !self.note_failure(&mut attempt, t, &mut sink, code) {
                            return None;
                        }
                        continue;
                    }
                }
            } else {
                let horizon = *t + self.cfg.costs.setup + self.cfg.renew_margin;
                let needs_renewal = self
                    .lease
                    .as_ref()
                    .is_some_and(|lease| horizon >= lease.expires_at);
                if needs_renewal {
                    let mut renewed = self.lease.take().expect("checked above");
                    match renew_lease(module, &mut renewed, *t, self.cfg.lease_window) {
                        Ok(renewed_at) => {
                            self.stats.lease_renewals.inc();
                            self.tracer.emit(
                                renewed_at,
                                EventKind::LeaseRenew {
                                    rank,
                                    until: renewed.expires_at,
                                },
                            );
                            *t = renewed_at;
                            self.lease = Some(renewed);
                        }
                        Err(e) => {
                            self.lease = Some(renewed); // deadline unchanged
                            let code = issue_errno(e);
                            if code == errno::EPROTO {
                                self.stats.mrs_retries.inc();
                            }
                            if !self.note_failure(&mut attempt, t, &mut sink, code) {
                                return None;
                            }
                            continue;
                        }
                    }
                }
            }

            let invoke_at = *t + self.cfg.costs.setup;
            match invoke(module, invoke_at) {
                Ok((end, result)) => {
                    let (observed, _burned) = self.cfg.costs.completion.observe(invoke_at, end);
                    let budget = self.cfg.watchdog + self.cfg.watchdog_per_row * rows;
                    let deadline = invoke_at + budget;
                    if observed > deadline {
                        self.stats.watchdog_fires.inc();
                        self.tracer
                            .emit(deadline, EventKind::WatchdogFire { page: tag });
                        *t = deadline;
                        if !self.note_failure(&mut attempt, t, &mut sink, errno::ETIMEDOUT) {
                            return None;
                        }
                    } else {
                        *t = observed.max(end);
                        self.consecutive_failures = 0;
                        return Some(result);
                    }
                }
                Err(DeviceError::Misaligned)
                | Err(DeviceError::SpansRanks)
                | Err(DeviceError::LaneOverflow) => {
                    // Permanent for this job shape; retrying cannot help.
                    return None;
                }
                Err(e) => {
                    let code = match e {
                        DeviceError::NotOwned => {
                            // Ownership vanished under us: drop the stale
                            // lease and re-grant on the next attempt.
                            self.lease = None;
                            errno::EACCES
                        }
                        DeviceError::LeaseExpired => {
                            self.stats.lease_expiries.inc();
                            errno::EKEYEXPIRED
                        }
                        DeviceError::Uncorrectable => {
                            self.stats.uncorrectable.inc();
                            errno::EIO
                        }
                        _ => errno::ERESTART,
                    };
                    *t = invoke_at;
                    if !self.note_failure(&mut attempt, t, &mut sink, code) {
                        return None;
                    }
                }
            }
        }
    }

    /// Books one abandoned one-shot kernel attempt: breaker accounting
    /// identical to the select page path. No fallback is implied — the
    /// caller may re-dispatch the job elsewhere instead.
    fn note_kernel_failure(&mut self, t: Tick) {
        if !self.breaker_open {
            self.consecutive_failures += 1;
            if self.consecutive_failures >= self.cfg.breaker_threshold {
                self.breaker_open = true;
                self.stats.breaker_trips.inc();
                self.tracer
                    .emit(t, EventKind::BreakerTransition { open: true });
            }
        }
    }

    /// Books the host-fallback half of an abandoned kernel: the dedicated
    /// counter plus the trace event. Breaker accounting already happened in
    /// [`ResilientDriver::note_kernel_failure`].
    fn note_kernel_fallback(&mut self, t: Tick, tag: u64) {
        self.stats.kernel_fallbacks.inc();
        self.tracer.emit(t, EventKind::CpuFallback { page: tag });
    }

    /// Host fallback for an aggregation: release the lease, stream the
    /// column over timed reads, fold in software with the device kernel's
    /// exact semantics (wrapping sum, `None` extremum when nothing
    /// qualifies).
    fn fallback_aggregate(
        &mut self,
        module: &mut DramModule,
        job: AggregateJob,
        t: &mut Tick,
    ) -> (Option<i64>, u64) {
        if self.lease.is_some() {
            self.release_current(module, t);
        }
        let bounds = job.filter.map(crate::predicate::Predicate::bounds);
        let mut cursor = *t;
        let mut count = 0u64;
        let mut acc: Option<i64> = None;
        for b in 0..job.rows.div_ceil(8) {
            let addr = PhysAddr(job.col_addr.0 + b * 64);
            let data = self.read_line(module, addr, &mut cursor);
            let words = (job.rows - b * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                if bounds.is_none_or(|(lo, hi)| lo <= v && v <= hi) {
                    count += 1;
                    acc = Some(match (job.op, acc) {
                        (AggOp::Sum | AggOp::Avg | AggOp::Count, prev) => {
                            prev.unwrap_or(0).wrapping_add(match job.op {
                                AggOp::Count => 1,
                                _ => v,
                            })
                        }
                        (AggOp::Min, None) => v,
                        (AggOp::Min, Some(p)) => p.min(v),
                        (AggOp::Max, None) => v,
                        (AggOp::Max, Some(p)) => p.max(v),
                    });
                }
            }
            cursor += self.cfg.cpu_word_cost * words;
        }
        *t = cursor;
        let value = match job.op {
            AggOp::Count => Some(count as i64),
            _ => acc,
        };
        (value, count)
    }

    /// Host fallback for a projection: release the lease, read the
    /// selection bitset functionally, stream the column over timed reads,
    /// pack qualifying values and write them back as whole 64-byte lines.
    fn fallback_project(&mut self, module: &mut DramModule, job: ProjectJob, t: &mut Tick) -> u64 {
        if self.lease.is_some() {
            self.release_current(module, t);
        }
        let mut bits = vec![0u8; job.rows.div_ceil(8) as usize];
        module.data().read(job.bitset_addr, &mut bits);
        let mut cursor = *t;
        let mut out = Vec::new();
        for b in 0..job.rows.div_ceil(8) {
            let addr = PhysAddr(job.col_addr.0 + b * 64);
            let data = self.read_line(module, addr, &mut cursor);
            let words = (job.rows - b * 8).min(8);
            for w in 0..words {
                let bit = b * 8 + w;
                if bits[(bit / 8) as usize] >> (bit % 8) & 1 == 1 {
                    let off = (w * 8) as usize;
                    out.extend_from_slice(&data[off..off + 8]);
                }
            }
            cursor += self.cfg.cpu_word_cost * words;
        }
        for (i, chunk) in out.chunks(64).enumerate() {
            let mut line = [0u8; 64];
            line[..chunk.len()].copy_from_slice(chunk);
            let addr = PhysAddr(job.out_addr.0 + i as u64 * 64);
            match module.serve_addr(addr, true, Requester::Host, cursor, Some(&line)) {
                Ok(access) => cursor = access.data_ready,
                Err(_) => {
                    self.stats.degraded_lines.inc();
                    module.data_mut().write(addr, &line);
                    cursor += self.cfg.degraded_line_cost;
                }
            }
        }
        *t = cursor;
        (out.len() / 8) as u64
    }

    /// One 64-byte line over the timed host path, degrading to a
    /// functional read at a modelled cost when the timed path is
    /// unavailable (rank still owned, or the burst was uncorrectable).
    fn read_line(
        &mut self,
        module: &mut DramModule,
        addr: PhysAddr,
        cursor: &mut Tick,
    ) -> [u8; 64] {
        match module.serve_addr(addr, false, Requester::Host, *cursor, None) {
            Ok(access) => {
                *cursor = access.data_ready;
                access.data.expect("read returns data")
            }
            Err(_) => {
                self.stats.degraded_lines.inc();
                let mut buf = [0u8; 64];
                module.data().read(addr, &mut buf);
                *cursor += self.cfg.degraded_line_cost;
                buf
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_common::bitset::BitSet;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming, FaultInjector, FaultPlan};

    const OUT: PhysAddr = PhysAddr(64 * 1024);

    fn module_with_column(rows: u64, seed: u64) -> (DramModule, Vec<i64>) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let mut rng = SplitMix64::new(seed);
        let values: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        for (i, v) in values.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(i as u64 * 8), *v);
        }
        (m, values)
    }

    fn reference(values: &[i64], lo: i64, hi: i64) -> Vec<u32> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| lo <= v && v <= hi)
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn bitset_at(m: &DramModule, addr: PhysAddr, rows: u64) -> Vec<u32> {
        let mut bytes = vec![0u8; rows.div_ceil(8) as usize];
        m.data().read(addr, &mut bytes);
        BitSet::from_bytes(&bytes, rows as usize).to_positions()
    }

    fn request(rows: u64, lo: i64, hi: i64) -> SelectRequest {
        SelectRequest {
            col_addr: PhysAddr(0),
            rows,
            lo,
            hi,
            out_addr: OUT,
        }
    }

    #[test]
    fn clean_run_touches_no_recovery_machinery() {
        let (mut m, values) = module_with_column(2048, 11);
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        let run = driver.run_select(&mut device, &mut m, request(2048, 100, 499), Tick::ZERO);
        let expect = reference(&values, 100, 499);
        assert_eq!(run.matched as usize, expect.len());
        assert_eq!(bitset_at(&m, OUT, 2048), expect);
        let s = driver.stats();
        assert_eq!(s.pages_jafar.get(), run.pages);
        assert_eq!(s.pages_cpu.get(), 0);
        assert_eq!(s.recovery_total(), 0, "no faults, no recovery");
        assert_eq!(s.lease_grants.get(), 1);
        assert!(!m.rank_owned_by_ndp(0), "lease released at the end");
    }

    #[test]
    fn stuck_completion_trips_watchdog_then_cpu_fallback() {
        let (mut m, values) = module_with_column(2048, 12);
        // Pages are 512 rows = 64 bursts. Stall every read burst from the
        // start of page 3 (global index 128 on the device path) onward.
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
            stall_burst_range: Some((128, u64::MAX)),
            ..FaultPlan::none(0)
        })));
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let run = driver.run_select(&mut device, &mut m, request(2048, 100, 499), Tick::ZERO);
        assert_eq!(bitset_at(&m, OUT, 2048), reference(&values, 100, 499));
        assert_eq!(run.matched as usize, reference(&values, 100, 499).len());
        let s = driver.stats();
        assert!(s.watchdog_fires.get() >= 1, "stall must trip the watchdog");
        assert!(s.retries.get() >= 1);
        assert!(s.pages_cpu.get() >= 1, "fallback finished the query");
        assert_eq!(s.breaker_trips.get(), 1);
        assert_eq!(s.pages_jafar.get() + s.pages_cpu.get(), run.pages);
    }

    #[test]
    fn permanent_mrs_glitches_force_all_cpu_and_stay_correct() {
        let (mut m, values) = module_with_column(1536, 13);
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
            mrs_glitch_p: 1.0,
            ..FaultPlan::none(4)
        })));
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        let run = driver.run_select(&mut device, &mut m, request(1536, 0, 249), Tick::ZERO);
        assert_eq!(bitset_at(&m, OUT, 1536), reference(&values, 0, 249));
        let s = driver.stats();
        assert_eq!(s.pages_jafar.get(), 0, "no grant ever lands");
        assert_eq!(s.pages_cpu.get(), run.pages);
        assert!(s.mrs_retries.get() >= 1);
        assert_eq!(s.breaker_trips.get(), 1);
        assert!(!m.rank_owned_by_ndp(0), "ownership never took effect");
    }

    #[test]
    fn short_lease_renews_between_pages() {
        let (mut m, values) = module_with_column(4096, 14);
        let mut device = JafarDevice::paper_default();
        // A page takes roughly 0.5–1 µs end to end; a 2 µs window with a
        // 1 µs margin forces renewals as the run progresses.
        let mut driver = ResilientDriver::new(ResilienceConfig {
            lease_window: Tick::from_us(2),
            renew_margin: Tick::from_us(1),
            ..ResilienceConfig::default()
        });
        let run = driver.run_select(&mut device, &mut m, request(4096, 250, 749), Tick::ZERO);
        assert_eq!(bitset_at(&m, OUT, 4096), reference(&values, 250, 749));
        let s = driver.stats();
        assert!(
            s.lease_renewals.get() >= 1,
            "short window must force at least one renewal (got {})",
            s.lease_renewals.get()
        );
        assert_eq!(s.pages_jafar.get(), run.pages, "renewals avoid expiry");
        assert_eq!(s.pages_cpu.get(), 0);
    }

    #[test]
    fn resilient_aggregate_falls_back_to_the_identical_scalar() {
        let (mut m, values) = module_with_column(2048, 21);
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        let job = AggregateJob {
            col_addr: PhysAddr(0),
            rows: 2048,
            op: AggOp::Sum,
            filter: Some(crate::predicate::Predicate::Between(100, 499)),
        };
        let clean = driver.run_aggregate(&mut device, &mut m, job, Tick::ZERO);
        let expect: i64 = values
            .iter()
            .filter(|&&v| (100..=499).contains(&v))
            .fold(0i64, |a, &v| a.wrapping_add(v));
        assert!(clean.on_device);
        assert_eq!(clean.value, Some(expect));
        assert_eq!(driver.stats().recovery_total(), 0);

        // Stall every burst: the device path must exhaust its retries and
        // the host fold must return the identical scalar.
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
            stall_burst_range: Some((0, u64::MAX)),
            ..FaultPlan::none(0)
        })));
        let mut sick = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let degraded = sick.run_aggregate(&mut device, &mut m, job, Tick::ZERO);
        assert!(!degraded.on_device);
        assert_eq!(degraded.value, Some(expect), "fallback scalar differs");
        assert_eq!(degraded.count, clean.count);
        let s = sick.stats();
        assert!(s.kernel_fallbacks.get() >= 1);
        assert!(s.watchdog_fires.get() >= 1);
        assert!(s.recovery_total() >= 1);
    }

    #[test]
    fn resilient_project_falls_back_to_identical_packed_bytes() {
        const PROJ: PhysAddr = PhysAddr(128 * 1024);
        let (mut m, values) = module_with_column(2048, 22);
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        driver.run_select(&mut device, &mut m, request(2048, 100, 499), Tick::ZERO);
        let job = ProjectJob {
            col_addr: PhysAddr(0),
            rows: 2048,
            bitset_addr: OUT,
            out_addr: PROJ,
        };
        let clean = driver.run_project(&mut device, &mut m, job, Tick::ZERO);
        let expect: Vec<i64> = values
            .iter()
            .copied()
            .filter(|v| (100..=499).contains(v))
            .collect();
        assert!(clean.on_device);
        assert_eq!(clean.emitted as usize, expect.len());
        let packed = |m: &DramModule| -> Vec<i64> {
            (0..expect.len())
                .map(|i| m.data().read_i64(PhysAddr(PROJ.0 + i as u64 * 8)))
                .collect()
        };
        assert_eq!(packed(&m), expect);

        m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
            stall_burst_range: Some((0, u64::MAX)),
            ..FaultPlan::none(0)
        })));
        let mut sick = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let degraded = sick.run_project(&mut device, &mut m, job, Tick::ZERO);
        assert!(!degraded.on_device);
        assert_eq!(degraded.emitted, clean.emitted);
        assert_eq!(packed(&m), expect, "fallback packed bytes differ");
        assert!(sick.stats().kernel_fallbacks.get() >= 1);
    }

    #[test]
    fn failfast_step_parks_at_a_page_boundary() {
        let (mut m, _) = module_with_column(2048, 31);
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let req = request(2048, 100, 499);
        let mut session = driver.start_session(&m, req, Tick::ZERO);
        // Two clean pages, then the rank goes dark mid-query.
        driver.step_page_failfast(&mut device, &mut m, &mut session);
        driver.step_page_failfast(&mut device, &mut m, &mut session);
        assert!(!session.is_parked());
        assert_eq!(session.next_row(), 1024);
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan::none(0).with_outage(
            0,
            Tick::ZERO,
            Tick::MAX,
        ))));
        let banked = session.matched();
        driver.step_page_failfast(&mut device, &mut m, &mut session);
        assert!(session.is_parked(), "dark rank must park the session");
        assert!(!session.is_done());
        assert_eq!(session.next_row(), 1024, "cursor frozen at the boundary");
        assert_eq!(session.matched(), banked, "banked matches frozen too");
        assert_eq!(driver.stats().pages_cpu.get(), 0, "no CPU crawl on park");
        assert!(driver.breaker_open(), "park still books breaker state");
        // A parked session refuses further steps.
        let t = session.cursor();
        driver.step_page_failfast(&mut device, &mut m, &mut session);
        assert!(session.is_parked());
        assert_eq!(session.cursor(), t);
    }

    #[test]
    fn resumed_session_finishes_a_parked_query_bit_identically() {
        let (mut m, values) = module_with_column(2048, 32);
        let mut device = JafarDevice::paper_default();
        let mut sick = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let req = request(2048, 100, 499);
        let mut session = sick.start_session(&m, req, Tick::ZERO);
        sick.step_page_failfast(&mut device, &mut m, &mut session);
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan::none(0).with_outage(
            0,
            Tick::ZERO,
            Tick::MAX,
        ))));
        sick.step_page_failfast(&mut device, &mut m, &mut session);
        assert!(session.is_parked());
        let row = session.next_row();
        let banked = session.matched();
        assert_eq!(row, 512, "one clean page before the outage");

        // The rank repairs; a fresh driver resumes from the boundary under
        // its own lease (the MPR grant is a level, so re-asserting over the
        // stale one is legal) and the final bitset matches the reference.
        m.set_fault_injector(None);
        let mut healthy = ResilientDriver::new(ResilienceConfig::default());
        let mut resumed = healthy.resume_session(&m, req, row, banked, session.cursor());
        assert_eq!(resumed.next_row(), row);
        while !resumed.is_done() {
            healthy.step_page(&mut device, &mut m, &mut resumed);
        }
        let run = resumed.into_run();
        let expect = reference(&values, 100, 499);
        assert_eq!(run.matched as usize, expect.len());
        assert_eq!(bitset_at(&m, OUT, 2048), expect);
        assert_eq!(healthy.stats().pages_cpu.get(), 0, "all-device resume");
        assert!(!m.rank_owned_by_ndp(0), "resumed run releases the rank");
    }

    #[test]
    fn try_run_aggregate_hands_the_job_back_instead_of_folding() {
        let (mut m, values) = module_with_column(2048, 33);
        let mut device = JafarDevice::paper_default();
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan::none(0).with_outage(
            0,
            Tick::ZERO,
            Tick::MAX,
        ))));
        let mut driver = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let job = AggregateJob {
            col_addr: PhysAddr(0),
            rows: 2048,
            op: AggOp::Sum,
            filter: Some(crate::predicate::Predicate::Between(100, 499)),
        };
        let err = driver.try_run_aggregate(&mut device, &mut m, job, Tick::ZERO);
        let t_fail = err.expect_err("dark rank exhausts the device path");
        assert!(t_fail > Tick::ZERO);
        assert!(driver.breaker_open(), "failure still books the breaker");
        assert_eq!(
            driver.stats().kernel_fallbacks.get(),
            0,
            "no fallback implied: the caller owns the decision"
        );

        // The same job re-dispatched on a healthy path folds the same
        // scalar the plain resilient entry point produces.
        m.set_fault_injector(None);
        let mut healthy = ResilientDriver::new(ResilienceConfig::default());
        let out = healthy
            .try_run_aggregate(&mut device, &mut m, job, t_fail)
            .expect("healthy rank serves the retried job");
        let expect: i64 = values
            .iter()
            .filter(|&&v| (100..=499).contains(&v))
            .fold(0i64, |a, &v| a.wrapping_add(v));
        assert!(out.on_device);
        assert_eq!(out.value, Some(expect));
    }

    fn fused_request(rows: u64, preds: &[(i64, i64)]) -> FusedSelectRequest {
        FusedSelectRequest {
            col_addr: PhysAddr(0),
            rows,
            preds: preds.to_vec(),
            out_addrs: (0..preds.len())
                .map(|lane| PhysAddr(OUT.0 + lane as u64 * 4096))
                .collect(),
        }
    }

    #[test]
    fn fused_run_is_byte_identical_to_solo_runs() {
        let preds = [(100, 499), (0, 49), (500, 999), (700, 700)];
        let rows = 2048u64;
        // Solo baselines, each on a fresh module.
        let mut solo: Vec<Vec<u32>> = Vec::new();
        for &(lo, hi) in &preds {
            let (mut m, values) = module_with_column(rows, 41);
            let mut device = JafarDevice::paper_default();
            let mut driver = ResilientDriver::new(ResilienceConfig::default());
            driver.run_select(
                &mut device,
                &mut m,
                SelectRequest {
                    col_addr: PhysAddr(0),
                    rows,
                    lo,
                    hi,
                    out_addr: OUT,
                },
                Tick::ZERO,
            );
            assert_eq!(bitset_at(&m, OUT, rows), reference(&values, lo, hi));
            solo.push(reference(&values, lo, hi));
        }

        let (mut m, _) = module_with_column(rows, 41);
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig::default());
        let req = fused_request(rows, &preds);
        let run = driver.run_select_fused(&mut device, &mut m, req.clone(), Tick::ZERO);
        assert_eq!(run.matched.len(), preds.len());
        for (lane, expect) in solo.iter().enumerate() {
            assert_eq!(run.matched[lane] as usize, expect.len(), "lane {lane}");
            assert_eq!(
                &bitset_at(&m, req.out_addrs[lane], rows),
                expect,
                "lane {lane} bitset"
            );
        }
        let s = driver.stats();
        assert_eq!(s.recovery_total(), 0, "no faults, no recovery");
        assert_eq!(
            s.pages_jafar.get(),
            run.pages,
            "one paged pass for all lanes"
        );
        assert!(!m.rank_owned_by_ndp(0), "lease released at the end");
    }

    #[test]
    fn fused_cpu_fallback_reproduces_device_bytes_per_lane() {
        let preds = [(100, 499), (0, 49), (500, 999)];
        let rows = 2048u64;
        let (mut m, values) = module_with_column(rows, 42);
        // Stall every burst from page 2 onward; the remaining pages crawl
        // through the k-lane CPU fallback and must still land the exact
        // solo bytes in every lane.
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan {
            stall_burst_range: Some((128, u64::MAX)),
            ..FaultPlan::none(0)
        })));
        let mut device = JafarDevice::paper_default();
        let mut driver = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let req = fused_request(rows, &preds);
        let run = driver.run_select_fused(&mut device, &mut m, req.clone(), Tick::ZERO);
        for (lane, &(lo, hi)) in preds.iter().enumerate() {
            let expect = reference(&values, lo, hi);
            assert_eq!(run.matched[lane] as usize, expect.len(), "lane {lane}");
            assert_eq!(
                bitset_at(&m, req.out_addrs[lane], rows),
                expect,
                "lane {lane} fallback bytes"
            );
        }
        let s = driver.stats();
        assert!(s.watchdog_fires.get() >= 1);
        assert!(s.pages_cpu.get() >= 1, "fallback finished the fused run");
    }

    #[test]
    fn parked_fused_session_resumes_all_lanes_bit_identically() {
        let preds = [(100, 499), (0, 249)];
        let rows = 2048u64;
        let (mut m, values) = module_with_column(rows, 43);
        let mut device = JafarDevice::paper_default();
        let mut sick = ResilientDriver::new(ResilienceConfig {
            max_retries: 1,
            breaker_threshold: 1,
            ..ResilienceConfig::default()
        });
        let req = fused_request(rows, &preds);
        let mut session = sick.start_fused_session(&m, req.clone(), Tick::ZERO);
        sick.step_fused_page_failfast(&mut device, &mut m, &mut session);
        assert!(!session.is_parked());
        m.set_fault_injector(Some(FaultInjector::new(FaultPlan::none(0).with_outage(
            0,
            Tick::ZERO,
            Tick::MAX,
        ))));
        sick.step_fused_page_failfast(&mut device, &mut m, &mut session);
        assert!(session.is_parked(), "dark rank parks every lane together");
        assert_eq!(session.next_row(), 512, "one clean page before the outage");
        let banked = session.matched().to_vec();
        assert_eq!(banked.len(), 2);

        m.set_fault_injector(None);
        let healthy_driver = ResilientDriver::new(ResilienceConfig::default());
        let mut healthy = healthy_driver;
        let mut resumed =
            healthy.resume_fused_session(&m, req.clone(), 512, banked, session.cursor());
        while !resumed.is_done() {
            healthy.step_fused_page(&mut device, &mut m, &mut resumed);
        }
        let run = resumed.into_run();
        for (lane, &(lo, hi)) in preds.iter().enumerate() {
            let expect = reference(&values, lo, hi);
            assert_eq!(run.matched[lane] as usize, expect.len(), "lane {lane}");
            assert_eq!(
                bitset_at(&m, req.out_addrs[lane], rows),
                expect,
                "lane {lane} resumed bytes"
            );
        }
        assert_eq!(healthy.stats().pages_cpu.get(), 0, "all-device resume");
    }

    #[test]
    fn forall_fused_lanes_match_solo_runs_even_through_outages() {
        use jafar_common::check::forall;
        // Seeded sweep: k ∈ 1..=MAX_FUSED_LANES random same-column
        // predicates, fused bitsets byte-identical to k independent solo
        // device runs — on a clean module AND through a unit-scoped
        // outage that opens at a random instant mid-scan, where the
        // ladder salvages what the device finished and the CPU fallback
        // must reproduce the exact device semantics in every lane.
        forall("fused-lane-identity", 10, |rng| {
            let rows = 2048u64;
            let k = rng.next_range_inclusive(1, crate::device::MAX_FUSED_LANES as i64) as usize;
            let preds: Vec<(i64, i64)> = (0..k)
                .map(|_| {
                    let lo = rng.next_range_inclusive(0, 900);
                    (lo, rng.next_range_inclusive(lo, 999))
                })
                .collect();
            let seed = rng.next_u64();
            let expect: Vec<Vec<u32>> = {
                let (_, values) = module_with_column(rows, seed);
                preds
                    .iter()
                    .map(|&(lo, hi)| reference(&values, lo, hi))
                    .collect()
            };
            // Solo device baselines, one fresh module per predicate.
            for (lane, &(lo, hi)) in preds.iter().enumerate() {
                let (mut m, _) = module_with_column(rows, seed);
                let mut device = JafarDevice::paper_default();
                let mut driver = ResilientDriver::new(ResilienceConfig::default());
                let run = driver.run_select(
                    &mut device,
                    &mut m,
                    SelectRequest {
                        col_addr: PhysAddr(0),
                        rows,
                        lo,
                        hi,
                        out_addr: OUT,
                    },
                    Tick::ZERO,
                );
                assert_eq!(run.matched as usize, expect[lane].len(), "solo lane {lane}");
                assert_eq!(bitset_at(&m, OUT, rows), expect[lane], "solo lane {lane}");
            }
            let req = fused_request(rows, &preds);
            // Clean fused pass.
            {
                let (mut m, _) = module_with_column(rows, seed);
                let mut device = JafarDevice::paper_default();
                let mut driver = ResilientDriver::new(ResilienceConfig::default());
                let run = driver.run_select_fused(&mut device, &mut m, req.clone(), Tick::ZERO);
                for (lane, expect) in expect.iter().enumerate() {
                    assert_eq!(
                        run.matched[lane] as usize,
                        expect.len(),
                        "clean lane {lane}"
                    );
                    assert_eq!(
                        &bitset_at(&m, req.out_addrs[lane], rows),
                        expect,
                        "clean lane {lane} bitset"
                    );
                }
            }
            // Fused pass through a unit outage opening mid-scan.
            {
                let (mut m, _) = module_with_column(rows, seed);
                let dark_from = Tick::from_ns(rng.next_range_inclusive(0, 2000) as u64);
                m.set_fault_injector(Some(FaultInjector::new(FaultPlan::none(seed).with_outage(
                    0,
                    dark_from,
                    Tick::MAX,
                ))));
                let mut device = JafarDevice::paper_default();
                let mut driver = ResilientDriver::new(ResilienceConfig {
                    max_retries: 1,
                    breaker_threshold: 1,
                    ..ResilienceConfig::default()
                });
                let run = driver.run_select_fused(&mut device, &mut m, req.clone(), Tick::ZERO);
                for (lane, expect) in expect.iter().enumerate() {
                    assert_eq!(
                        run.matched[lane] as usize,
                        expect.len(),
                        "outage lane {lane} (dark from {dark_from})"
                    );
                    assert_eq!(
                        &bitset_at(&m, req.out_addrs[lane], rows),
                        expect,
                        "outage lane {lane} bitset (dark from {dark_from})"
                    );
                }
            }
        });
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let driver = ResilientDriver::new(ResilienceConfig {
            backoff_base: Tick::from_ns(100),
            backoff_max: Tick::from_ns(350),
            ..ResilienceConfig::default()
        });
        assert_eq!(driver.backoff(0), Tick::from_ns(100));
        assert_eq!(driver.backoff(1), Tick::from_ns(200));
        assert_eq!(driver.backoff(2), Tick::from_ns(350), "capped");
        assert_eq!(driver.backoff(63), Tick::from_ns(350), "no overflow");
    }
}
