//! NDP filters for row-stores and column-group hybrids (§4).
//!
//! "Near-data processing for row-stores or hybrids that store data as
//! column-groups can be achieved by slightly altering the design of JAFAR
//! to be able to apply in parallel different filtering operations to
//! different attributes and record the result of the collective filter
//! accordingly." The device streams whole fixed-width rows (so it moves
//! `row_bytes` per tuple instead of 8), applies every column predicate in
//! parallel ALU pairs, ANDs the outcomes, and emits the same bitset a
//! columnar select would.

use crate::device::{DeviceError, JafarDevice};
use crate::predicate::Predicate;
use jafar_common::bitset::FixedBitBuf;
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr, Requester};

/// One attribute predicate within a row filter.
#[derive(Clone, Copy, Debug)]
pub struct ColPredicate {
    /// Byte offset of the 8-byte attribute within the row.
    pub offset: u32,
    /// The predicate.
    pub predicate: Predicate,
}

/// A conjunctive multi-attribute filter over a row-major table.
#[derive(Clone, Debug)]
pub struct RowFilterJob {
    /// 64-byte-aligned base of the row-major data.
    pub base: PhysAddr,
    /// Row stride in bytes (multiple of 8; rows must not straddle bursts,
    /// so 64 must be a multiple of the stride or vice versa).
    pub row_bytes: u32,
    /// Number of rows.
    pub rows: u64,
    /// The attribute predicates (ANDed).
    pub predicates: Vec<ColPredicate>,
    /// 64-byte-aligned output bitset base.
    pub out_addr: PhysAddr,
}

/// Result of a row filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowFilterRun {
    /// Completion tick.
    pub end: Tick,
    /// Rows passing the conjunction.
    pub matched: u64,
    /// Bursts read — `row_bytes/8 ×` more than a columnar select would
    /// move for the same predicate set applied to one column.
    pub bursts_read: u64,
    /// Output bursts written.
    pub bursts_written: u64,
}

impl JafarDevice {
    /// Executes a conjunctive row filter over an owned rank.
    ///
    /// # Errors
    /// Same validation rules as [`JafarDevice::run_select`], plus stride
    /// checks.
    pub fn run_row_filter(
        &mut self,
        module: &mut DramModule,
        job: &RowFilterJob,
        start: Tick,
    ) -> Result<RowFilterRun, DeviceError> {
        if job.base.block_offset() != 0
            || job.out_addr.block_offset() != 0
            || job.row_bytes == 0
            || !job.row_bytes.is_multiple_of(8)
            || (job.row_bytes < 64 && 64 % job.row_bytes != 0)
            || (job.row_bytes > 64 && !job.row_bytes.is_multiple_of(64))
        {
            return Err(DeviceError::Misaligned);
        }
        for p in &job.predicates {
            if p.offset % 8 != 0 || p.offset + 8 > job.row_bytes.max(8) {
                return Err(DeviceError::Misaligned);
            }
        }
        let rank = module.decoder().decode(job.base).rank;
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        let t = *module.timing();
        let cas_pipeline = t.cl + t.t_burst;
        // Parallel predicate pairs: each predicate costs one ALU pair per
        // word-time; with `alus/2` pairs available, rows with more
        // predicates than pairs serialise.
        let pairs = (self.config().resources.alus / 2).max(1) as u64;
        let waves = (job.predicates.len() as u64).div_ceil(pairs).max(1);
        let ps_per_row = self.ps_per_word() * waves;

        let total_bytes = job.rows * job.row_bytes as u64;
        let total_bursts = total_bytes.div_ceil(64);
        let mut out_buf = FixedBitBuf::new(self.config().out_buf_bits);
        let mut issue_cursor = start;
        let mut proc_free = start;
        let mut bursts_read = 0u64;
        let mut bursts_written = 0u64;
        let mut out_cursor = job.out_addr.0;
        let mut matched = 0u64;
        let mut row = 0u64;

        // Stream burst by burst; evaluate any rows fully contained in the
        // data streamed so far. Rows never straddle bursts by the stride
        // precondition (row_bytes divides 64 or is a multiple of it).
        let mut pending: Vec<u8> = Vec::with_capacity(job.row_bytes as usize);
        for burst in 0..total_bursts {
            let access = module
                .serve_addr(
                    PhysAddr(job.base.0 + burst * 64),
                    false,
                    Requester::Ndp,
                    issue_cursor,
                    None,
                )
                .map_err(|_| DeviceError::NotOwned)?;
            bursts_read += 1;
            let cas_at = access.data_ready.saturating_sub(cas_pipeline);
            issue_cursor = cas_at.max(issue_cursor) + t.bus_clock.period();
            proc_free = proc_free.max(access.data_ready);
            pending.extend_from_slice(&access.data.expect("read"));

            let stride = job.row_bytes as usize;
            let mut consumed = 0usize;
            while row < job.rows && pending.len() - consumed >= stride {
                let row_bytes = &pending[consumed..consumed + stride];
                let hit = job.predicates.iter().all(|p| {
                    let off = p.offset as usize;
                    let v =
                        i64::from_le_bytes(row_bytes[off..off + 8].try_into().expect("8 bytes"));
                    p.predicate.eval(v)
                });
                matched += u64::from(hit);
                out_buf.push(hit);
                if out_buf.is_full() {
                    let bytes = out_buf.drain_bytes();
                    for chunk in bytes.chunks(64) {
                        let mut b = [0u8; 64];
                        b[..chunk.len()].copy_from_slice(chunk);
                        module
                            .serve_addr(
                                PhysAddr(out_cursor & !63),
                                true,
                                Requester::Ndp,
                                proc_free,
                                Some(&b),
                            )
                            .expect("rank validated");
                        bursts_written += 1;
                        out_cursor += chunk.len() as u64;
                    }
                }
                proc_free += Tick::from_ps(ps_per_row);
                consumed += stride;
                row += 1;
            }
            pending.drain(..consumed);
        }
        if !out_buf.is_empty() {
            let bytes = out_buf.drain_bytes();
            for chunk in bytes.chunks(64) {
                let mut b = [0u8; 64];
                b[..chunk.len()].copy_from_slice(chunk);
                module
                    .serve_addr(
                        PhysAddr(out_cursor & !63),
                        true,
                        Requester::Ndp,
                        proc_free,
                        Some(&b),
                    )
                    .expect("rank validated");
                bursts_written += 1;
                out_cursor += chunk.len() as u64;
            }
        }

        Ok(RowFilterRun {
            end: proc_free,
            matched,
            bursts_read,
            bursts_written,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SelectJob;
    use crate::ownership::grant_ownership;
    use jafar_common::bitset::BitSet;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    fn setup() -> (JafarDevice, DramModule, Tick) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        let t0 = lease.acquired_at;

        (JafarDevice::paper_default(), m, t0)
    }

    /// Writes a row-major table with `width` i64 attributes per row.
    fn put_rows(m: &mut DramModule, base: u64, rows: &[Vec<i64>]) {
        let width = rows[0].len();
        for (r, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                m.data_mut()
                    .write_i64(PhysAddr(base + (r * width + c) as u64 * 8), *v);
            }
        }
    }

    #[test]
    fn conjunctive_filter_matches_reference() {
        let (mut d, mut m, t0) = setup();
        let mut rng = SplitMix64::new(8);
        let rows: Vec<Vec<i64>> = (0..600)
            .map(|_| {
                (0..4)
                    .map(|_| rng.next_range_inclusive(0, 9))
                    .collect::<Vec<i64>>()
            })
            .collect();
        put_rows(&mut m, 0, &rows);
        let job = RowFilterJob {
            base: PhysAddr(0),
            row_bytes: 32,
            rows: 600,
            predicates: vec![
                ColPredicate {
                    offset: 0,
                    predicate: Predicate::Le(4),
                },
                ColPredicate {
                    offset: 16,
                    predicate: Predicate::Ge(5),
                },
            ],
            out_addr: PhysAddr(64 * 1024),
        };
        let run = d.run_row_filter(&mut m, &job, t0).unwrap();
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r[0] <= 4 && r[2] >= 5)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(run.matched as usize, expect.len());
        let mut bytes = vec![0u8; 600usize.div_ceil(8)];
        m.data().read(job.out_addr, &mut bytes);
        assert_eq!(BitSet::from_bytes(&bytes, 600).to_positions(), expect);
    }

    #[test]
    fn rowstore_moves_more_data_than_columnar() {
        // The §4 trade-off: filtering one attribute of a 32-byte row moves
        // 4× the data of a columnar select over the same attribute.
        let (mut d, mut m, t0) = setup();
        let rows: Vec<Vec<i64>> = (0..512).map(|i| vec![i, 0, 0, 0]).collect();
        put_rows(&mut m, 0, &rows);
        let row_run = d
            .run_row_filter(
                &mut m,
                &RowFilterJob {
                    base: PhysAddr(0),
                    row_bytes: 32,
                    rows: 512,
                    predicates: vec![ColPredicate {
                        offset: 0,
                        predicate: Predicate::Lt(100),
                    }],
                    out_addr: PhysAddr(64 * 1024),
                },
                t0,
            )
            .unwrap();
        // Columnar layout of the same attribute.
        let col: Vec<i64> = (0..512).collect();
        for (i, v) in col.iter().enumerate() {
            m.data_mut()
                .write_i64(PhysAddr(96 * 1024 + i as u64 * 8), *v);
        }
        let col_run = d
            .run_select(
                &mut m,
                SelectJob {
                    col_addr: PhysAddr(96 * 1024),
                    rows: 512,
                    predicate: Predicate::Lt(100),
                    out_addr: PhysAddr(128 * 1024),
                },
                row_run.end,
            )
            .unwrap();
        assert_eq!(row_run.matched, col_run.matched);
        assert_eq!(row_run.bursts_read, col_run.bursts_read * 4);
    }

    #[test]
    fn narrow_rows_pack_into_bursts() {
        // 16-byte rows: 4 per burst.
        let (mut d, mut m, t0) = setup();
        let rows: Vec<Vec<i64>> = (0..256).map(|i| vec![i, i * 2]).collect();
        put_rows(&mut m, 0, &rows);
        let run = d
            .run_row_filter(
                &mut m,
                &RowFilterJob {
                    base: PhysAddr(0),
                    row_bytes: 16,
                    rows: 256,
                    predicates: vec![ColPredicate {
                        offset: 8,
                        predicate: Predicate::Lt(100),
                    }],
                    out_addr: PhysAddr(64 * 1024),
                },
                t0,
            )
            .unwrap();
        assert_eq!(run.bursts_read, 256 * 16 / 64);
        assert_eq!(run.matched, 50, "i*2 < 100 for i < 50");
    }

    #[test]
    fn bad_stride_rejected() {
        let (mut d, mut m, t0) = setup();
        let job = RowFilterJob {
            base: PhysAddr(0),
            row_bytes: 24, // 64 % 24 != 0 — rows would straddle bursts
            rows: 8,
            predicates: vec![],
            out_addr: PhysAddr(64 * 1024),
        };
        assert_eq!(
            d.run_row_filter(&mut m, &job, t0),
            Err(DeviceError::Misaligned)
        );
    }

    #[test]
    fn many_predicates_serialise_on_alu_pairs() {
        // 1 predicate vs 4 predicates on the default 2-ALU (1 pair) device:
        // 4 predicates need 4 waves → slower per row.
        let (mut d, mut m, t0) = setup();
        let rows: Vec<Vec<i64>> = (0..512).map(|i| vec![i, i, i, i, i, i, i, i]).collect();
        put_rows(&mut m, 0, &rows);
        let mk_job = |n_preds: usize| RowFilterJob {
            base: PhysAddr(0),
            row_bytes: 64,
            rows: 512,
            predicates: (0..n_preds)
                .map(|i| ColPredicate {
                    offset: (i * 8) as u32,
                    predicate: Predicate::Lt(1000),
                })
                .collect(),
            out_addr: PhysAddr(96 * 1024),
        };
        let one = d.run_row_filter(&mut m, &mk_job(1), t0).unwrap();
        let four = d.run_row_filter(&mut m, &mk_job(4), one.end).unwrap();
        assert!(four.end - one.end > one.end - t0, "4 waves must be slower");
        assert_eq!(one.matched, 512);
        assert_eq!(four.matched, 512);
    }
}
