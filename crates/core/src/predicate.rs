//! Predicates.
//!
//! §2.2: "Our current design supports the following predicates: =, <, >,
//! ≤, and ≥ and works over integer data." The datapath evaluates an
//! inclusive range with two parallel ALUs, so every supported predicate is
//! compiled to `[lo, hi]` bounds; single-sided predicates pin the other
//! bound at the integer extreme.

/// A select predicate over 64-bit integers.
///
/// ```
/// use jafar_core::Predicate;
///
/// // Every predicate compiles to the inclusive range the two ALUs check.
/// assert_eq!(Predicate::Le(10).bounds(), (i64::MIN, 10));
/// assert_eq!(Predicate::Between(5, 9).bounds(), (5, 9));
/// assert!(Predicate::Gt(100).eval(101));
/// assert!(!Predicate::Gt(100).eval(100));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// `v = x`
    Eq(i64),
    /// `v < x`
    Lt(i64),
    /// `v > x`
    Gt(i64),
    /// `v ≤ x`
    Le(i64),
    /// `v ≥ x`
    Ge(i64),
    /// `lo ≤ v ≤ hi` (the two-ALU range filter of Figure 1(b)).
    Between(i64, i64),
}

impl Predicate {
    /// Compiles to the inclusive `[lo, hi]` bounds the hardware evaluates.
    /// Predicates that match nothing compile to the canonical empty range
    /// `(MAX, MIN)`.
    pub fn bounds(self) -> (i64, i64) {
        match self {
            Predicate::Eq(x) => (x, x),
            Predicate::Lt(i64::MIN) => (i64::MAX, i64::MIN),
            Predicate::Lt(x) => (i64::MIN, x - 1),
            Predicate::Gt(i64::MAX) => (i64::MAX, i64::MIN),
            Predicate::Gt(x) => (x + 1, i64::MAX),
            Predicate::Le(x) => (i64::MIN, x),
            Predicate::Ge(x) => (x, i64::MAX),
            Predicate::Between(lo, hi) => (lo, hi),
        }
    }

    /// Software-reference evaluation.
    pub fn eval(self, v: i64) -> bool {
        let (lo, hi) = self.bounds();
        lo <= v && v <= hi
    }

    /// True if the compiled range is empty (matches nothing).
    pub fn is_empty(self) -> bool {
        let (lo, hi) = self.bounds();
        lo > hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_compilation() {
        assert_eq!(Predicate::Eq(5).bounds(), (5, 5));
        assert_eq!(Predicate::Lt(5).bounds(), (i64::MIN, 4));
        assert_eq!(Predicate::Gt(5).bounds(), (6, i64::MAX));
        assert_eq!(Predicate::Le(5).bounds(), (i64::MIN, 5));
        assert_eq!(Predicate::Ge(5).bounds(), (5, i64::MAX));
        assert_eq!(Predicate::Between(2, 9).bounds(), (2, 9));
    }

    #[test]
    fn eval_agrees_with_semantics() {
        for v in -10..=10i64 {
            assert_eq!(Predicate::Eq(3).eval(v), v == 3);
            assert_eq!(Predicate::Lt(3).eval(v), v < 3);
            assert_eq!(Predicate::Gt(3).eval(v), v > 3);
            assert_eq!(Predicate::Le(3).eval(v), v <= 3);
            assert_eq!(Predicate::Ge(3).eval(v), v >= 3);
            assert_eq!(Predicate::Between(-2, 4).eval(v), (-2..=4).contains(&v));
        }
    }

    #[test]
    fn extreme_operands_saturate() {
        // Lt(i64::MIN) matches nothing; Gt(i64::MAX) matches nothing —
        // saturation must not wrap around.
        assert!(Predicate::Lt(i64::MIN).is_empty());
        assert!(Predicate::Gt(i64::MAX).is_empty());
        assert!(!Predicate::Le(i64::MIN).is_empty());
        assert!(Predicate::Le(i64::MIN).eval(i64::MIN));
        assert!(Predicate::Ge(i64::MAX).eval(i64::MAX));
    }

    #[test]
    fn inverted_range_is_empty() {
        let p = Predicate::Between(10, 5);
        assert!(p.is_empty());
        for v in 0..20 {
            assert!(!p.eval(v));
        }
    }
}
