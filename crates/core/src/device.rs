//! The JAFAR device: the in-DIMM streaming filter engine.
//!
//! Operation per §2.2:
//!
//! - JAFAR "requests data from DRAM in the same way that a CPU would",
//!   issuing read bursts against its owned rank and receiving 64-byte
//!   bursts from the module IO buffer;
//! - it processes **one 64-bit word per device cycle**; the device clock is
//!   2× the data-bus clock ("rather than building ALUs and latches for a
//!   dual-pumped clock, JAFAR generates its own clock that is twice as fast
//!   as the data bus clock"). The per-word rate is *derived* from the
//!   Aladdin-style schedule of the filter kernel under the two-ALU
//!   provisioning, not hard-coded;
//! - filter outcomes accumulate in an *n*-bit output buffer; "every n
//!   cycles, the output buffer is fully filled and its contents are written
//!   back to DRAM at a pre-programmed location" — the write does not stall
//!   the filter pipeline (it contends for DRAM banks/bus naturally);
//! - completion is signalled through the STATUS register, which the host
//!   polls.

use crate::predicate::Predicate;
use crate::regs::RegisterFile;
use jafar_accel::ir::jafar_filter_kernel;
use jafar_accel::schedule::{Resources, Schedule};
use jafar_common::bitset::FixedBitBuf;
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::stats::Counter;
use jafar_common::time::{ClockDomain, Tick};
use jafar_dram::{DramModule, IssueError, PhysAddr, Requester};

/// Device configuration.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Device clock (2 GHz: twice the 1 GHz data-bus clock, §2.2).
    pub clock: ClockDomain,
    /// Output buffer size in bits (*n*); written back every *n* filter
    /// operations. 512 bits = one 64-byte burst per writeback.
    pub out_buf_bits: usize,
    /// Datapath provisioning for the Aladdin-style throughput derivation.
    pub resources: Resources,
    /// Loop unrolling applied to the filter kernel datapath.
    pub unroll: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            clock: ClockDomain::from_ghz(2),
            out_buf_bits: 512,
            resources: Resources::jafar_default(),
            unroll: 8,
        }
    }
}

/// Why the device rejected a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// The target rank is not owned (MPR not enabled) — acquire ownership
    /// first (§2.2's MR3 handoff).
    NotOwned,
    /// Input and output must be 64-byte aligned (burst granularity).
    Misaligned,
    /// The job's data spans more than one rank; JAFAR "can only process
    /// data that is resident on its DIMM" (§4, Memory Management) — and in
    /// this design, on its owned rank.
    SpansRanks,
    /// The job was admitted at or after the lease's expiry deadline. §2.2's
    /// contract is that JAFAR "will finish its allotted work" inside the
    /// granted window, so expiry is enforced at *admission*: a job admitted
    /// one tick before the deadline runs to completion, a job admitted at
    /// the deadline is refused. Renew the lease and retry.
    LeaseExpired,
    /// A read burst failed SECDED ECC with a double-bit error (injected by
    /// the DRAM fault layer). The job aborted mid-stream; the output region
    /// is partially written. Retrying the page is safe — the functional
    /// store was never corrupted.
    Uncorrectable,
    /// The DRAM stream was preempted mid-job by a transient rank-level
    /// condition (e.g. an injected refresh storm colliding with a due
    /// refresh). The output region may be partially written; retrying the
    /// page is safe.
    Interrupted,
    /// A fused job named zero predicates, more than
    /// [`MAX_FUSED_LANES`], or mismatched predicate/output counts. The
    /// comparator array is a fixed hardware resource; the host must split
    /// wider batches itself.
    LaneOverflow,
}

/// Ceiling on fused predicate lanes per pass.
///
/// The fused datapath provisions one comparator lane per word of the
/// 64-byte burst it is already latching, so up to eight range predicates
/// evaluate against each streamed word in the same device cycle — the
/// Taurus/Farview-style shared-scan extension. Beyond eight lanes the
/// comparator array would need another register file port; the host
/// splits wider batches instead.
pub const MAX_FUSED_LANES: usize = 8;

/// One select invocation (one page worth, in the Figure-2 API).
#[derive(Clone, Copy, Debug)]
pub struct SelectJob {
    /// 64-byte-aligned base of the packed `i64` column segment.
    pub col_addr: PhysAddr,
    /// Rows in this segment.
    pub rows: u64,
    /// The filter predicate.
    pub predicate: Predicate,
    /// 64-byte-aligned base of the output bitset region.
    pub out_addr: PhysAddr,
}

/// One fused select invocation: `k` range predicates evaluated against
/// the *same* column stream in a single pass, each lane filling its own
/// bitset region (1 ≤ k ≤ [`MAX_FUSED_LANES`]).
#[derive(Clone, Debug)]
pub struct FusedSelectJob {
    /// 64-byte-aligned base of the packed `i64` column segment.
    pub col_addr: PhysAddr,
    /// Rows in this segment.
    pub rows: u64,
    /// Per-lane filter predicates.
    pub predicates: Vec<Predicate>,
    /// Per-lane 64-byte-aligned bases of the output bitset regions. Must
    /// be the same length as `predicates` and on the column's rank.
    pub out_addrs: Vec<PhysAddr>,
}

/// Outcome and timing of one fused select invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusedSelectRun {
    /// First device activity.
    pub start: Tick,
    /// Filter complete, all writebacks issued, STATUS = DONE.
    pub end: Tick,
    /// Per-lane rows that passed the filter.
    pub matched: Vec<u64>,
    /// Input bursts read from DRAM (the column is streamed once).
    pub bursts_read: u64,
    /// Output bursts written to DRAM across all lanes.
    pub bursts_written: u64,
    /// Time the datapath sat waiting for DRAM data.
    pub dram_wait: Tick,
}

/// Outcome and timing of one select invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectRun {
    /// First device activity.
    pub start: Tick,
    /// Filter complete, all writebacks issued, STATUS = DONE.
    pub end: Tick,
    /// Rows that passed the filter.
    pub matched: u64,
    /// Input bursts read from DRAM.
    pub bursts_read: u64,
    /// Output bursts written to DRAM.
    pub bursts_written: u64,
    /// Time the datapath sat waiting for DRAM data.
    pub dram_wait: Tick,
}

/// Accumulated device statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceStats {
    /// Select jobs executed.
    pub jobs: Counter,
    /// Words filtered.
    pub words: Counter,
    /// Input bursts read.
    pub bursts_read: Counter,
    /// Output bursts written.
    pub bursts_written: Counter,
}

/// Pre-opens the row containing `addr` (precharge + activate as needed) so
/// a later sequential access finds it open — the device's row lookahead
/// for its strictly sequential stream. Best-effort: a blocked command
/// (e.g. tRAS not yet satisfied) simply skips the lookahead and the access
/// pays the row switch itself.
pub(crate) fn preopen_row(module: &mut DramModule, addr: PhysAddr, now: Tick) {
    let coord = module.decoder().decode(addr.block_base());
    let open = module.bank(coord.rank, coord.bank).open_row();
    if open == Some(coord.row) {
        return;
    }
    if open.is_some() {
        let pre = jafar_dram::DramCommand::precharge(coord);
        let Ok(at) = module.earliest_issue(pre, Requester::Ndp, now) else {
            return;
        };
        if module.issue(pre, Requester::Ndp, at, None).is_err() {
            return;
        }
    }
    let act = jafar_dram::DramCommand::activate(coord);
    if let Ok(at) = module.earliest_issue(act, Requester::Ndp, now) {
        let _ = module.issue(act, Requester::Ndp, at, None);
    }
}

/// The device.
pub struct JafarDevice {
    config: DeviceConfig,
    regs: RegisterFile,
    /// Picoseconds per filtered word, derived from the kernel schedule.
    ps_per_word: u64,
    stats: DeviceStats,
    tracer: SharedTracer,
}

impl JafarDevice {
    /// Builds a device, deriving its per-word throughput from the
    /// Aladdin-style schedule of the filter kernel.
    pub fn new(config: DeviceConfig) -> Self {
        let ii =
            Schedule::steady_state_ii(&jafar_filter_kernel(), &config.resources, config.unroll);
        let ps_per_word = (ii * config.clock.period().as_ps() as f64).round() as u64;
        assert!(ps_per_word > 0, "degenerate device throughput");
        JafarDevice {
            config,
            regs: RegisterFile::new(),
            ps_per_word,
            stats: DeviceStats::default(),
            tracer: SharedTracer::disabled(),
        }
    }

    /// Attaches an event tracer: pipeline stages and bitset write-backs are
    /// emitted into it. Purely observational — no timing changes.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = tracer;
    }

    /// A device with the paper's §2.2 parameters (2 GHz, two ALUs, 512-bit
    /// output buffer). Asserts the derived rate is the paper's one word
    /// per 0.5 ns cycle.
    pub fn paper_default() -> Self {
        let d = JafarDevice::new(DeviceConfig::default());
        debug_assert_eq!(d.ps_per_word, 500, "§2.2: one word per 2 GHz cycle");
        d
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Derived datapath rate: picoseconds per 64-bit word.
    pub fn ps_per_word(&self) -> u64 {
        self.ps_per_word
    }

    /// The control register block (host-visible).
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable register access (the memory-mapped write path).
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn validate(
        &self,
        module: &DramModule,
        job: &SelectJob,
        start: Tick,
    ) -> Result<u32, DeviceError> {
        if job.col_addr.block_offset() != 0 || job.out_addr.block_offset() != 0 {
            return Err(DeviceError::Misaligned);
        }
        if job.rows == 0 {
            // Trivially valid; rank check on the first block only.
        }
        let first = module.decoder().decode(job.col_addr);
        let rank = first.rank;
        if job.rows > 0 {
            let last_in = PhysAddr(job.col_addr.0 + (job.rows - 1) * 8);
            let out_bytes = job.rows.div_ceil(8);
            let last_out = PhysAddr(job.out_addr.0 + out_bytes.saturating_sub(1));
            for probe in [last_in, job.out_addr, last_out] {
                if module.decoder().decode(probe).rank != rank {
                    return Err(DeviceError::SpansRanks);
                }
            }
        }
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        if start >= module.ndp_deadline(rank) {
            return Err(DeviceError::LeaseExpired);
        }
        Ok(rank)
    }

    /// Executes one select job against `module`, starting no earlier than
    /// `start`. The rank holding the data must already be owned (see
    /// [`crate::ownership`]).
    ///
    /// # Errors
    /// Returns a [`DeviceError`] (and latches STATUS.ERROR) without
    /// touching DRAM if the job is invalid.
    pub fn run_select(
        &mut self,
        module: &mut DramModule,
        job: SelectJob,
        start: Tick,
    ) -> Result<SelectRun, DeviceError> {
        let _rank = self.validate(module, &job, start).inspect_err(|_| {
            self.regs.set_error();
        })?;
        self.regs.set_busy();
        self.tracer.emit(
            start,
            EventKind::AccelStage {
                stage: "select-start",
                page: job.col_addr.0,
            },
        );
        let (lo, hi) = job.predicate.bounds();
        let t = *module.timing();
        let cas_pipeline = t.cl + t.t_burst;

        let mut out_buf = FixedBitBuf::new(self.config.out_buf_bits);
        let mut issue_cursor = start; // when the next read may be requested
        let mut proc_free = start; // when the datapath frees up
        let mut dram_wait = Tick::ZERO;
        let mut matched = 0u64;
        let mut bursts_read = 0u64;
        let mut bursts_written = 0u64;
        let mut out_cursor = job.out_addr.0;

        let bursts_per_row = module.geometry().bursts_per_row() as u64;
        let total_bursts = job.rows.div_ceil(8);
        for burst in 0..total_bursts {
            let addr = PhysAddr(job.col_addr.0 + burst * 64);
            // Hardware row lookahead: on entering each row group, open the
            // *next* group's row so the row switch hides under the current
            // group's streaming (the device knows its access pattern is
            // strictly sequential). Row groups are address-space-absolute —
            // `SimAlloc` only guarantees 64-byte alignment, so the job may
            // start mid-group and the crossings must be computed from the
            // absolute block index, not the job-relative burst count.
            let abs_block = job.col_addr.0 / 64 + burst;
            if burst == 0 || abs_block.is_multiple_of(bursts_per_row) {
                let next_block = (abs_block / bursts_per_row + 1) * bursts_per_row;
                let next_burst = next_block - job.col_addr.0 / 64;
                if next_burst < total_bursts {
                    preopen_row(module, PhysAddr(next_block * 64), issue_cursor);
                }
            }
            let access = match module.serve_addr(addr, false, Requester::Ndp, issue_cursor, None) {
                Ok(a) => a,
                Err(e) => {
                    self.regs.set_error();
                    return Err(match e {
                        IssueError::NdpWithoutOwnership => DeviceError::NotOwned,
                        IssueError::Uncorrectable => DeviceError::Uncorrectable,
                        _ => DeviceError::Interrupted,
                    });
                }
            };
            bursts_read += 1;
            // Pipelined command issue: the next read may be requested one
            // bus cycle after this one's CAS went out.
            let cas_at = access.data_ready.saturating_sub(cas_pipeline);
            issue_cursor = cas_at.max(issue_cursor) + t.bus_clock.period();

            let data = access.data.expect("read returns data");
            let ready = access.data_ready;
            if ready > proc_free {
                dram_wait += ready - proc_free;
                proc_free = ready;
            }
            let words = (job.rows - burst * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                let hit = lo <= v && v <= hi;
                matched += u64::from(hit);
                out_buf.push(hit);
                if out_buf.is_full() {
                    let bytes = out_buf.drain_bytes();
                    out_cursor = self.write_bitset_chunk(
                        module,
                        out_cursor,
                        &bytes,
                        proc_free,
                        &mut bursts_written,
                    )?;
                }
            }
            proc_free += Tick::from_ps(words * self.ps_per_word);
        }
        // Final partial flush.
        if !out_buf.is_empty() {
            let bytes = out_buf.drain_bytes();
            self.write_bitset_chunk(module, out_cursor, &bytes, proc_free, &mut bursts_written)?;
        }

        self.regs.set_done(matched);
        self.tracer.emit(
            proc_free,
            EventKind::AccelStage {
                stage: "select-done",
                page: job.col_addr.0,
            },
        );
        self.stats.jobs.inc();
        self.stats.words.add(job.rows);
        self.stats.bursts_read.add(bursts_read);
        self.stats.bursts_written.add(bursts_written);
        Ok(SelectRun {
            start,
            end: proc_free,
            matched,
            bursts_read,
            bursts_written,
            dram_wait,
        })
    }

    fn validate_fused(
        &self,
        module: &DramModule,
        job: &FusedSelectJob,
        start: Tick,
    ) -> Result<u32, DeviceError> {
        let k = job.predicates.len();
        if k == 0 || k > MAX_FUSED_LANES || job.out_addrs.len() != k {
            return Err(DeviceError::LaneOverflow);
        }
        if job.col_addr.block_offset() != 0 || job.out_addrs.iter().any(|a| a.block_offset() != 0) {
            return Err(DeviceError::Misaligned);
        }
        let rank = module.decoder().decode(job.col_addr).rank;
        if job.rows > 0 {
            let last_in = PhysAddr(job.col_addr.0 + (job.rows - 1) * 8);
            let out_bytes = job.rows.div_ceil(8);
            if module.decoder().decode(last_in).rank != rank {
                return Err(DeviceError::SpansRanks);
            }
            for out in &job.out_addrs {
                let last_out = PhysAddr(out.0 + out_bytes.saturating_sub(1));
                for probe in [*out, last_out] {
                    if module.decoder().decode(probe).rank != rank {
                        return Err(DeviceError::SpansRanks);
                    }
                }
            }
        }
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        if start >= module.ndp_deadline(rank) {
            return Err(DeviceError::LeaseExpired);
        }
        Ok(rank)
    }

    /// Executes one *fused* select job: the column is streamed from DRAM
    /// exactly once and every word is evaluated against all `k` predicate
    /// lanes in the same device cycle, each lane accumulating into its own
    /// output buffer and draining to its own bitset region. Per-word time
    /// is unchanged from [`Self::run_select`] — the comparator lanes run
    /// in parallel — so one pass serves `k` queries for one scan's worth
    /// of DRAM traffic and datapath time.
    ///
    /// Each lane's bitset bytes are byte-identical to a solo
    /// [`Self::run_select`] of the same predicate over the same segment:
    /// the lanes push through the same [`FixedBitBuf`] drain cadence and
    /// the same line-split writeback path, only the wall-clock stamps of
    /// the writebacks differ.
    ///
    /// # Errors
    /// Returns a [`DeviceError`] (and latches STATUS.ERROR) without
    /// touching DRAM if the job is invalid.
    pub fn run_select_fused(
        &mut self,
        module: &mut DramModule,
        job: &FusedSelectJob,
        start: Tick,
    ) -> Result<FusedSelectRun, DeviceError> {
        let _rank = self.validate_fused(module, job, start).inspect_err(|_| {
            self.regs.set_error();
        })?;
        let k = job.predicates.len();
        self.regs.set_busy();
        self.tracer.emit(
            start,
            EventKind::AccelStage {
                stage: "select-fused-start",
                page: job.col_addr.0,
            },
        );
        let bounds: Vec<(i64, i64)> = job.predicates.iter().map(|p| p.bounds()).collect();
        let t = *module.timing();
        let cas_pipeline = t.cl + t.t_burst;

        let mut out_bufs: Vec<FixedBitBuf> = (0..k)
            .map(|_| FixedBitBuf::new(self.config.out_buf_bits))
            .collect();
        let mut out_cursors: Vec<u64> = job.out_addrs.iter().map(|a| a.0).collect();
        let mut issue_cursor = start;
        let mut proc_free = start;
        let mut dram_wait = Tick::ZERO;
        let mut matched = vec![0u64; k];
        let mut bursts_read = 0u64;
        let mut bursts_written = 0u64;

        let bursts_per_row = module.geometry().bursts_per_row() as u64;
        let total_bursts = job.rows.div_ceil(8);
        for burst in 0..total_bursts {
            let addr = PhysAddr(job.col_addr.0 + burst * 64);
            // Same absolute-block row lookahead as the solo path.
            let abs_block = job.col_addr.0 / 64 + burst;
            if burst == 0 || abs_block.is_multiple_of(bursts_per_row) {
                let next_block = (abs_block / bursts_per_row + 1) * bursts_per_row;
                let next_burst = next_block - job.col_addr.0 / 64;
                if next_burst < total_bursts {
                    preopen_row(module, PhysAddr(next_block * 64), issue_cursor);
                }
            }
            let access = match module.serve_addr(addr, false, Requester::Ndp, issue_cursor, None) {
                Ok(a) => a,
                Err(e) => {
                    self.regs.set_error();
                    return Err(match e {
                        IssueError::NdpWithoutOwnership => DeviceError::NotOwned,
                        IssueError::Uncorrectable => DeviceError::Uncorrectable,
                        _ => DeviceError::Interrupted,
                    });
                }
            };
            bursts_read += 1;
            let cas_at = access.data_ready.saturating_sub(cas_pipeline);
            issue_cursor = cas_at.max(issue_cursor) + t.bus_clock.period();

            let data = access.data.expect("read returns data");
            let ready = access.data_ready;
            if ready > proc_free {
                dram_wait += ready - proc_free;
                proc_free = ready;
            }
            let words = (job.rows - burst * 8).min(8);
            for w in 0..words {
                let off = (w * 8) as usize;
                let v = i64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"));
                for lane in 0..k {
                    let (lo, hi) = bounds[lane];
                    let hit = lo <= v && v <= hi;
                    matched[lane] += u64::from(hit);
                    out_bufs[lane].push(hit);
                    if out_bufs[lane].is_full() {
                        let bytes = out_bufs[lane].drain_bytes();
                        out_cursors[lane] = self.write_bitset_chunk(
                            module,
                            out_cursors[lane],
                            &bytes,
                            proc_free,
                            &mut bursts_written,
                        )?;
                    }
                }
            }
            proc_free += Tick::from_ps(words * self.ps_per_word);
        }
        // Final partial flush per lane.
        for lane in 0..k {
            if !out_bufs[lane].is_empty() {
                let bytes = out_bufs[lane].drain_bytes();
                self.write_bitset_chunk(
                    module,
                    out_cursors[lane],
                    &bytes,
                    proc_free,
                    &mut bursts_written,
                )?;
            }
        }

        let total_matched: u64 = matched.iter().sum();
        self.regs.set_done(total_matched);
        self.tracer.emit(
            proc_free,
            EventKind::AccelStage {
                stage: "select-fused-done",
                page: job.col_addr.0,
            },
        );
        self.stats.jobs.inc();
        self.stats.words.add(job.rows);
        self.stats.bursts_read.add(bursts_read);
        self.stats.bursts_written.add(bursts_written);
        Ok(FusedSelectRun {
            start,
            end: proc_free,
            matched,
            bursts_read,
            bursts_written,
            dram_wait,
        })
    }

    /// Writes a drained output-buffer chunk back to DRAM as whole bursts.
    /// Chunks are split on 64-byte line boundaries *relative to the
    /// cursor*: a partial line (cursor mid-burst, or a short tail) is
    /// read-modified-written so neighbouring bitset bytes written by
    /// earlier flushes survive, while full lines are written outright.
    /// Returns the advanced output cursor.
    fn write_bitset_chunk(
        &mut self,
        module: &mut DramModule,
        out_cursor: u64,
        bytes: &[u8],
        at: Tick,
        bursts_written: &mut u64,
    ) -> Result<u64, DeviceError> {
        let mut cursor = out_cursor;
        let mut remaining = bytes;
        while !remaining.is_empty() {
            let line_base = cursor & !63;
            let off = (cursor - line_base) as usize;
            let take = (64 - off).min(remaining.len());
            let mut burst = [0u8; 64];
            if off != 0 || take != 64 {
                // Partial line: merge into the existing contents. The read
                // is functional only — the hardware holds the line in its
                // writeback buffer, so no extra DRAM traffic is modelled.
                module.data().read(PhysAddr(line_base), &mut burst);
            }
            burst[off..off + take].copy_from_slice(&remaining[..take]);
            let served =
                module.serve_addr(PhysAddr(line_base), true, Requester::Ndp, at, Some(&burst));
            if let Err(e) = served {
                self.regs.set_error();
                return Err(match e {
                    IssueError::NdpWithoutOwnership => DeviceError::NotOwned,
                    IssueError::Uncorrectable => DeviceError::Uncorrectable,
                    _ => DeviceError::Interrupted,
                });
            }
            *bursts_written += 1;
            self.tracer.emit(
                at,
                EventKind::BitsetWriteback {
                    addr: line_base,
                    bytes: take as u32,
                },
            );
            cursor += take as u64;
            remaining = &remaining[take..];
        }
        Ok(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ownership::grant_ownership;
    use jafar_common::bitset::BitSet;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    fn owned_module() -> (DramModule, Tick) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).expect("fresh module");
        let t0 = lease.acquired_at;
        (m, t0)
    }

    fn put_column(m: &mut DramModule, addr: u64, values: &[i64]) {
        for (i, v) in values.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(addr + i as u64 * 8), *v);
        }
    }

    fn job(rows: u64, lo: i64, hi: i64) -> SelectJob {
        SelectJob {
            col_addr: PhysAddr(0),
            rows,
            predicate: Predicate::Between(lo, hi),
            out_addr: PhysAddr(128 * 1024), // rank 0 under tiny/RankRowBankBlock
        }
    }

    #[test]
    fn paper_throughput_derivation() {
        let d = JafarDevice::paper_default();
        // §2.2: "JAFAR can process one [word] per clock cycle (0.5ns) for a
        // total of 4ns" per 8-word access.
        assert_eq!(d.ps_per_word(), 500);
        assert_eq!(Tick::from_ps(8 * d.ps_per_word()), Tick::from_ns(4));
    }

    #[test]
    fn bitset_matches_software_reference() {
        let (mut m, t0) = owned_module();
        let mut rng = SplitMix64::new(99);
        let values: Vec<i64> = (0..2000)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::paper_default();
        let j = job(2000, 100, 499);
        let run = d.run_select(&mut m, j, t0).unwrap();

        let expect: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (100..=499).contains(&v))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(run.matched as usize, expect.len());
        // Read the bitset back out of DRAM.
        let nbytes = 2000usize.div_ceil(8);
        let mut bytes = vec![0u8; nbytes];
        m.data().read(j.out_addr, &mut bytes);
        let got = BitSet::from_bytes(&bytes, 2000);
        assert_eq!(got.to_positions(), expect);
        assert!(d.regs().done());
        assert_eq!(d.regs().read(crate::regs::Reg::OutCount), run.matched);
    }

    #[test]
    fn runtime_is_selectivity_independent() {
        // §3.2: "JAFAR has constant execution time irrespective of the
        // query selectivity."
        let run_with = |hi: i64| {
            let (mut m, t0) = owned_module();
            let mut rng = SplitMix64::new(5);
            let values: Vec<i64> = (0..4000)
                .map(|_| rng.next_range_inclusive(0, 999))
                .collect();
            put_column(&mut m, 0, &values);
            let mut d = JafarDevice::paper_default();
            d.run_select(&mut m, job(4000, 0, hi), t0).unwrap()
        };
        let none = run_with(-1);
        let all = run_with(999);
        assert_eq!(none.matched, 0);
        assert_eq!(all.matched, 4000);
        let delta = all.end.as_ps().abs_diff(none.end.as_ps());
        // Identical burst counts; any difference is noise (there is none —
        // the writeback schedule is selectivity-independent too).
        assert_eq!(delta, 0, "none={:?} all={:?}", none.end, all.end);
        assert_eq!(none.bursts_written, all.bursts_written);
    }

    #[test]
    fn streaming_rate_matches_paper_arithmetic() {
        // Streaming from an owned rank: DRAM delivers one 64-byte burst per
        // 4 ns (row hits) and the datapath consumes it in exactly 4 ns —
        // the 9-of-13-ns-waiting arithmetic of §2.2 applies per access, but
        // pipelined accesses sustain one burst per tBURST.
        let (mut m, t0) = owned_module();
        let rows = 64 * 1024 / 8; // one full rank row-pass in tiny geometry
        let values: Vec<i64> = (0..rows as i64).collect();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::paper_default();
        let run = d
            .run_select(&mut m, job(rows as u64, 0, i64::MAX), t0)
            .unwrap();
        let span = run.end - run.start;
        let ns_per_burst = span.as_ns_f64() / run.bursts_read as f64;
        assert!(
            (3.9..5.5).contains(&ns_per_burst),
            "ns/burst = {ns_per_burst} (span {span}, {} bursts)",
            run.bursts_read
        );
    }

    #[test]
    fn writeback_cadence_every_n_bits() {
        let (mut m, t0) = owned_module();
        let values: Vec<i64> = (0..1536).collect();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::paper_default();
        // 1536 rows / 512-bit buffer = 3 full writebacks, no partial.
        let run = d.run_select(&mut m, job(1536, 0, i64::MAX), t0).unwrap();
        assert_eq!(run.bursts_written, 3);
        // 1537 rows → 3 full + 1 partial.
        let (mut m2, t0b) = owned_module();
        let values2: Vec<i64> = (0..1537).collect();
        put_column(&mut m2, 0, &values2);
        let mut d2 = JafarDevice::paper_default();
        let run2 = d2.run_select(&mut m2, job(1537, 0, i64::MAX), t0b).unwrap();
        assert_eq!(run2.bursts_written, 4);
    }

    #[test]
    fn unaligned_column_preopen_hides_row_switch() {
        // tiny geometry: 16 bursts per (bank,row) group. `SimAlloc` only
        // guarantees 64-byte alignment, so a column may start mid-group; a
        // 16-burst job based 8 blocks into a group crosses into the next
        // group at burst 8, and the lookahead must hide that switch.
        //
        // Baseline: an aligned 32-burst job, whose single group crossing
        // (at burst 16) is hidden by the same lookahead, and which issues
        // the same single preopen before its first access. Perfect
        // streaming means the datapath only ever waits for DRAM during the
        // shared startup (preopen + first activate + first CAS), so the
        // two runs must report *identical* dram_wait.
        let bursts_per_row = DramGeometry::tiny().bursts_per_row() as u64;
        let run_at = |col_addr: u64, bursts: u64| {
            let (mut m, t0) = owned_module();
            let rows = bursts * 8;
            let values: Vec<i64> = (0..rows as i64).collect();
            put_column(&mut m, col_addr, &values);
            let mut d = JafarDevice::paper_default();
            let mut j = job(rows, 0, i64::MAX);
            j.col_addr = PhysAddr(col_addr);
            d.run_select(&mut m, j, t0).unwrap()
        };
        let aligned = run_at(0, 2 * bursts_per_row);
        let unaligned = run_at(bursts_per_row / 2 * 64, bursts_per_row);
        assert_eq!(
            unaligned.dram_wait, aligned.dram_wait,
            "the mid-job row switch of an unaligned column must be hidden \
             by the lookahead (aligned wait {:?}, unaligned wait {:?})",
            aligned.dram_wait, unaligned.dram_wait
        );
    }

    #[test]
    fn partial_buffer_writebacks_preserve_earlier_bytes() {
        // A 136-bit output buffer drains 17 bytes at a time, so every
        // writeback after the first lands mid-burst. Each partial burst
        // must read-modify-write its 64-byte line, not clobber the
        // previously written bytes with zero padding.
        let (mut m, t0) = owned_module();
        let mut rng = SplitMix64::new(7);
        let rows = 400u64;
        let values: Vec<i64> = (0..rows).map(|_| rng.next_range_inclusive(0, 99)).collect();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::new(DeviceConfig {
            out_buf_bits: 136,
            ..DeviceConfig::default()
        });
        let j = job(rows, 0, 49);
        let run = d.run_select(&mut m, j, t0).unwrap();

        let mut expect = BitSet::new(rows as usize);
        for (i, &v) in values.iter().enumerate() {
            expect.assign(i, (0..=49).contains(&v));
        }
        let nbytes = (rows as usize).div_ceil(8);
        let mut bytes = vec![0u8; nbytes];
        m.data().read(j.out_addr, &mut bytes);
        let got = BitSet::from_bytes(&bytes, rows as usize);
        assert_eq!(run.matched as usize, expect.count_ones());
        assert_eq!(
            got, expect,
            "device bitset must be bit-identical to the CPU reference"
        );
    }

    fn fused_job(rows: u64, preds: &[(i64, i64)]) -> FusedSelectJob {
        FusedSelectJob {
            col_addr: PhysAddr(0),
            rows,
            predicates: preds
                .iter()
                .map(|&(lo, hi)| Predicate::Between(lo, hi))
                .collect(),
            out_addrs: (0..preds.len())
                .map(|lane| PhysAddr(128 * 1024 + lane as u64 * 4096))
                .collect(),
        }
    }

    #[test]
    fn fused_lanes_are_byte_identical_to_solo_runs() {
        let rows = 2000u64;
        let mut rng = SplitMix64::new(0xF05E);
        let values: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let preds = [(0, 199), (100, 499), (500, 500), (-5, -1), (0, 999)];
        let nbytes = (rows as usize).div_ceil(8);

        // Solo baselines, each on a fresh module.
        let mut solo: Vec<(Vec<u8>, u64)> = Vec::new();
        for &(lo, hi) in &preds {
            let (mut m, t0) = owned_module();
            put_column(&mut m, 0, &values);
            let mut d = JafarDevice::paper_default();
            let run = d.run_select(&mut m, job(rows, lo, hi), t0).unwrap();
            let mut bytes = vec![0u8; nbytes];
            m.data().read(PhysAddr(128 * 1024), &mut bytes);
            solo.push((bytes, run.matched));
        }

        let (mut m, t0) = owned_module();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::paper_default();
        let fj = fused_job(rows, &preds);
        let run = d.run_select_fused(&mut m, &fj, t0).unwrap();
        assert_eq!(run.matched.len(), preds.len());
        for (lane, (bytes, matched)) in solo.iter().enumerate() {
            assert_eq!(run.matched[lane], *matched, "lane {lane} count");
            let mut got = vec![0u8; nbytes];
            m.data().read(fj.out_addrs[lane], &mut got);
            assert_eq!(&got, bytes, "lane {lane} bitset bytes");
        }
    }

    #[test]
    fn fused_pass_costs_one_scan() {
        // One fused pass streams the column once: same input bursts as a
        // single solo select. The span runs somewhat longer than solo —
        // k lanes drain k output buffers into k distinct rows, and those
        // writebacks contend for banks the solo run never touches — but
        // stays far under the k solo scans it replaces.
        let rows = 4096u64;
        let values: Vec<i64> = (0..rows as i64).collect();
        let (mut m, t0) = owned_module();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::paper_default();
        let solo = d.run_select(&mut m, job(rows, 0, 1999), t0).unwrap();

        let (mut m2, t0b) = owned_module();
        put_column(&mut m2, 0, &values);
        let mut d2 = JafarDevice::paper_default();
        let preds = [(0, 1999), (1000, 2999), (0, 4095), (-1, -1)];
        let fused = d2
            .run_select_fused(&mut m2, &fused_job(rows, &preds), t0b)
            .unwrap();
        assert_eq!(
            fused.bursts_read, solo.bursts_read,
            "the column streams once"
        );
        let solo_span = (solo.end - solo.start).as_ps() as f64;
        let fused_span = (fused.end - fused.start).as_ps() as f64;
        assert!(
            fused_span <= solo_span * 1.5,
            "fused span {fused_span} ps must stay near one solo scan ({solo_span} ps)"
        );
        assert!(
            fused_span < solo_span * preds.len() as f64 / 2.0,
            "fused span {fused_span} ps must beat the {} solo scans it replaces",
            preds.len()
        );
    }

    #[test]
    fn fused_lane_overflow_rejected() {
        let (mut m, t0) = owned_module();
        let mut d = JafarDevice::paper_default();
        // Zero lanes.
        let empty = FusedSelectJob {
            col_addr: PhysAddr(0),
            rows: 8,
            predicates: vec![],
            out_addrs: vec![],
        };
        assert_eq!(
            d.run_select_fused(&mut m, &empty, t0),
            Err(DeviceError::LaneOverflow)
        );
        // Nine lanes.
        let preds: Vec<(i64, i64)> = (0..9).map(|i| (0, i)).collect();
        assert_eq!(
            d.run_select_fused(&mut m, &fused_job(8, &preds), t0),
            Err(DeviceError::LaneOverflow)
        );
        // Mismatched predicate/output counts.
        let mut lopsided = fused_job(8, &[(0, 1), (2, 3)]);
        lopsided.out_addrs.pop();
        assert_eq!(
            d.run_select_fused(&mut m, &lopsided, t0),
            Err(DeviceError::LaneOverflow)
        );
        assert!(d.regs().errored());
    }

    #[test]
    fn unowned_rank_rejected() {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let mut d = JafarDevice::paper_default();
        let err = d
            .run_select(&mut m, job(100, 0, 10), Tick::ZERO)
            .unwrap_err();
        assert_eq!(err, DeviceError::NotOwned);
        assert!(d.regs().errored());
    }

    #[test]
    fn misaligned_job_rejected() {
        let (mut m, t0) = owned_module();
        let mut d = JafarDevice::paper_default();
        let mut j = job(8, 0, 10);
        j.col_addr = PhysAddr(8);
        assert_eq!(d.run_select(&mut m, j, t0), Err(DeviceError::Misaligned));
    }

    #[test]
    fn cross_rank_job_rejected() {
        let (mut m, t0) = owned_module();
        let mut d = JafarDevice::paper_default();
        // tiny + RankRowBankBlock: rank 0 is the first 256 KiB. A column
        // ending past that spans ranks.
        let rank_bytes = DramGeometry::tiny().rank_bytes();
        let mut j = job((rank_bytes / 8) + 8, 0, 10);
        j.out_addr = PhysAddr(0); // overlaps, but rank check fires first
        assert_eq!(d.run_select(&mut m, j, t0), Err(DeviceError::SpansRanks));
    }

    #[test]
    fn lease_expiry_is_enforced_at_admission_only() {
        use crate::ownership::{grant_ownership_for, release_ownership};
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership_for(&mut m, 0, Tick::ZERO, Tick::from_us(2)).unwrap();
        let values: Vec<i64> = (0..512).collect();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::paper_default();

        // A job admitted exactly at the deadline is refused.
        let at_deadline = d.run_select(&mut m, job(512, 0, i64::MAX), lease.expires_at);
        assert_eq!(at_deadline, Err(DeviceError::LeaseExpired));
        assert!(d.regs().errored());

        // One tick before the deadline it is admitted — and per the §2.2
        // allotted-work contract it runs to completion even though it
        // finishes after the expiry tick.
        let just_in_time = lease.expires_at - Tick::from_ps(1);
        let run = d
            .run_select(&mut m, job(512, 0, i64::MAX), just_in_time)
            .expect("admitted before expiry");
        assert_eq!(run.matched, 512);
        assert!(run.end > lease.expires_at, "work outlives the lease window");
        let _ = release_ownership(&mut m, lease, run.end).unwrap();
    }

    #[test]
    fn zero_rows_is_a_noop() {
        let (mut m, t0) = owned_module();
        let mut d = JafarDevice::paper_default();
        let run = d.run_select(&mut m, job(0, 0, 10), t0).unwrap();
        assert_eq!(run.matched, 0);
        assert_eq!(run.bursts_read, 0);
        assert_eq!(run.bursts_written, 0);
        assert_eq!(run.end, t0);
    }

    #[test]
    fn stats_accumulate_across_jobs() {
        let (mut m, t0) = owned_module();
        let values: Vec<i64> = (0..512).collect();
        put_column(&mut m, 0, &values);
        let mut d = JafarDevice::paper_default();
        let r1 = d.run_select(&mut m, job(512, 0, 100), t0).unwrap();
        d.run_select(&mut m, job(512, 0, 100), r1.end).unwrap();
        assert_eq!(d.stats().jobs.get(), 2);
        assert_eq!(d.stats().words.get(), 1024);
        assert_eq!(d.stats().bursts_read.get(), 128);
    }
}
