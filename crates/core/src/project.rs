//! NDP projection (§4, "Projections").
//!
//! In a late-materialization column-store, a project (tuple reconstruction)
//! fetches qualifying values of one column given the position list / bitset
//! produced by a select on another column — "every query plan has at least
//! N − 1 project operators where N is the number of columns referenced".
//! The in-memory version here streams the selection bitset and the value
//! column from the owned rank and writes the qualifying values, densely
//! packed, to a pre-allocated output region — none of it crossing the
//! memory bus.

use crate::device::{DeviceError, JafarDevice};
use jafar_common::time::Tick;
use jafar_dram::{DramModule, PhysAddr, Requester};

/// A projection job.
#[derive(Clone, Copy, Debug)]
pub struct ProjectJob {
    /// 64-byte-aligned base of the packed `i64` value column.
    pub col_addr: PhysAddr,
    /// Rows in the column.
    pub rows: u64,
    /// 64-byte-aligned base of the selection bitset (as produced by a
    /// JAFAR select over another column).
    pub bitset_addr: PhysAddr,
    /// 64-byte-aligned base of the packed output region.
    pub out_addr: PhysAddr,
}

/// Result of a projection.
#[derive(Clone, Copy, Debug)]
pub struct ProjectRun {
    /// Completion tick.
    pub end: Tick,
    /// Values emitted.
    pub emitted: u64,
    /// Bursts read (bitset + column).
    pub bursts_read: u64,
    /// Bursts written (packed output).
    pub bursts_written: u64,
}

impl JafarDevice {
    /// Executes an in-memory projection over an owned rank.
    ///
    /// # Errors
    /// Same validation rules as [`JafarDevice::run_select`].
    pub fn run_project(
        &mut self,
        module: &mut DramModule,
        job: ProjectJob,
        start: Tick,
    ) -> Result<ProjectRun, DeviceError> {
        if job.col_addr.block_offset() != 0
            || job.bitset_addr.block_offset() != 0
            || job.out_addr.block_offset() != 0
        {
            return Err(DeviceError::Misaligned);
        }
        let rank = module.decoder().decode(job.col_addr).rank;
        if !module.rank_owned_by_ndp(rank) {
            return Err(DeviceError::NotOwned);
        }
        let t = *module.timing();
        let cas_pipeline = t.cl + t.t_burst;
        let ps_per_word = self.ps_per_word();

        let mut issue_cursor = start;
        let mut proc_free = start;
        let mut bursts_read = 0u64;
        let mut bursts_written = 0u64;
        let mut out_buf = [0u8; 64];
        let mut out_fill = 0usize;
        let mut out_cursor = job.out_addr.0;
        let mut emitted = 0u64;
        // Current bitset burst cache: covers 512 rows.
        let mut bitset_cache: Option<(u64, [u8; 64])> = None;

        let total_bursts = job.rows.div_ceil(8);
        for burst in 0..total_bursts {
            // Bitset burst covering these rows (rows 512*k .. 512*k+511);
            // this data burst covers rows 8*burst .. 8*burst+7.
            let bitset_burst = burst * 8 / 512;
            if bitset_cache.map(|(b, _)| b) != Some(bitset_burst) {
                let access = module
                    .serve_addr(
                        PhysAddr(job.bitset_addr.0 + bitset_burst * 64),
                        false,
                        Requester::Ndp,
                        issue_cursor,
                        None,
                    )
                    .map_err(|_| DeviceError::NotOwned)?;
                bursts_read += 1;
                let cas_at = access.data_ready.saturating_sub(cas_pipeline);
                issue_cursor = cas_at.max(issue_cursor) + t.bus_clock.period();
                proc_free = proc_free.max(access.data_ready);
                bitset_cache = Some((bitset_burst, access.data.expect("read")));
            }
            let access = module
                .serve_addr(
                    PhysAddr(job.col_addr.0 + burst * 64),
                    false,
                    Requester::Ndp,
                    issue_cursor,
                    None,
                )
                .map_err(|_| DeviceError::NotOwned)?;
            bursts_read += 1;
            let cas_at = access.data_ready.saturating_sub(cas_pipeline);
            issue_cursor = cas_at.max(issue_cursor) + t.bus_clock.period();
            proc_free = proc_free.max(access.data_ready);
            let data = access.data.expect("read");
            let (_, bits) = bitset_cache.expect("fetched above");

            let words = (job.rows - burst * 8).min(8);
            for w in 0..words {
                let row = burst * 8 + w;
                let bit_in_cache = (row - bitset_burst * 512) as usize;
                let selected = bits[bit_in_cache / 8] >> (bit_in_cache % 8) & 1 == 1;
                if selected {
                    let off = (w * 8) as usize;
                    out_buf[out_fill..out_fill + 8].copy_from_slice(&data[off..off + 8]);
                    out_fill += 8;
                    emitted += 1;
                    if out_fill == 64 {
                        module
                            .serve_addr(
                                PhysAddr(out_cursor),
                                true,
                                Requester::Ndp,
                                proc_free,
                                Some(&out_buf),
                            )
                            .expect("rank validated");
                        bursts_written += 1;
                        out_cursor += 64;
                        out_fill = 0;
                        out_buf = [0u8; 64];
                    }
                }
            }
            proc_free += Tick::from_ps(words * ps_per_word);
        }
        if out_fill > 0 {
            module
                .serve_addr(
                    PhysAddr(out_cursor),
                    true,
                    Requester::Ndp,
                    proc_free,
                    Some(&out_buf),
                )
                .expect("rank validated");
            bursts_written += 1;
        }

        Ok(ProjectRun {
            end: proc_free,
            emitted,
            bursts_read,
            bursts_written,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SelectJob;
    use crate::ownership::grant_ownership;
    use crate::predicate::Predicate;
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    fn setup() -> (JafarDevice, DramModule, Tick) {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let lease = grant_ownership(&mut m, 0, Tick::ZERO).unwrap();
        let t0 = lease.acquired_at;

        (JafarDevice::paper_default(), m, t0)
    }

    fn put(m: &mut DramModule, addr: u64, values: &[i64]) {
        for (i, v) in values.iter().enumerate() {
            m.data_mut().write_i64(PhysAddr(addr + i as u64 * 8), *v);
        }
    }

    #[test]
    fn select_then_project_reconstructs_tuples() {
        // The canonical late-materialization plan: select on column A,
        // project column B at the qualifying positions — entirely in
        // memory.
        let (mut d, mut m, t0) = setup();
        let mut rng = SplitMix64::new(31);
        let rows = 1500u64;
        let a: Vec<i64> = (0..rows).map(|_| rng.next_range_inclusive(0, 99)).collect();
        let b: Vec<i64> = (0..rows).map(|i| i as i64 * 1000).collect();
        let a_addr = 0u64;
        let b_addr = 32 * 1024u64;
        let bitset_addr = 64 * 1024u64;
        let out_addr = 96 * 1024u64;
        put(&mut m, a_addr, &a);
        put(&mut m, b_addr, &b);

        let sel = d
            .run_select(
                &mut m,
                SelectJob {
                    col_addr: PhysAddr(a_addr),
                    rows,
                    predicate: Predicate::Lt(30),
                    out_addr: PhysAddr(bitset_addr),
                },
                t0,
            )
            .unwrap();
        let proj = d
            .run_project(
                &mut m,
                ProjectJob {
                    col_addr: PhysAddr(b_addr),
                    rows,
                    bitset_addr: PhysAddr(bitset_addr),
                    out_addr: PhysAddr(out_addr),
                },
                sel.end,
            )
            .unwrap();
        assert_eq!(proj.emitted, sel.matched);
        // The packed output equals the reference projection.
        let expect: Vec<i64> = a
            .iter()
            .zip(&b)
            .filter(|(&av, _)| av < 30)
            .map(|(_, &bv)| bv)
            .collect();
        for (i, want) in expect.iter().enumerate() {
            let got = m.data().read_i64(PhysAddr(out_addr + i as u64 * 8));
            assert_eq!(got, *want, "slot {i}");
        }
        assert!(proj.end > sel.end);
    }

    #[test]
    fn empty_selection_projects_nothing() {
        let (mut d, mut m, t0) = setup();
        let rows = 128u64;
        put(&mut m, 0, &vec![5i64; rows as usize]);
        // Bitset region left zeroed → nothing selected.
        let proj = d
            .run_project(
                &mut m,
                ProjectJob {
                    col_addr: PhysAddr(0),
                    rows,
                    bitset_addr: PhysAddr(16 * 1024),
                    out_addr: PhysAddr(32 * 1024),
                },
                t0,
            )
            .unwrap();
        assert_eq!(proj.emitted, 0);
        assert_eq!(proj.bursts_written, 0);
    }

    #[test]
    fn output_traffic_proportional_to_selectivity() {
        let (mut d, mut m, t0) = setup();
        let rows = 4096u64;
        let values: Vec<i64> = (0..rows as i64).collect();
        put(&mut m, 0, &values);
        // Select all.
        let sel = d
            .run_select(
                &mut m,
                SelectJob {
                    col_addr: PhysAddr(0),
                    rows,
                    predicate: Predicate::Ge(i64::MIN),
                    out_addr: PhysAddr(64 * 1024),
                },
                t0,
            )
            .unwrap();
        let proj = d
            .run_project(
                &mut m,
                ProjectJob {
                    col_addr: PhysAddr(0),
                    rows,
                    bitset_addr: PhysAddr(64 * 1024),
                    out_addr: PhysAddr(96 * 1024),
                },
                sel.end,
            )
            .unwrap();
        // All rows selected → output bursts = input column bursts.
        assert_eq!(proj.bursts_written, rows / 8);
        assert_eq!(proj.emitted, rows);
    }

    #[test]
    fn unowned_rejected() {
        let mut m = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let mut d = JafarDevice::paper_default();
        let err = d
            .run_project(
                &mut m,
                ProjectJob {
                    col_addr: PhysAddr(0),
                    rows: 8,
                    bitset_addr: PhysAddr(1024),
                    out_addr: PhysAddr(2048),
                },
                Tick::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, DeviceError::NotOwned);
    }
}
