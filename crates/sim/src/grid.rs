//! A multi-node serving grid over the deterministic cluster fabric.
//!
//! [`cluster::ServeCluster`](crate::cluster::ServeCluster) widens the
//! schedulable pool across memory *channels* inside one box; a
//! [`ServeGrid`] goes the other way and disaggregates it across `N`
//! memory **nodes**, each a self-contained single-DIMM serving machine —
//! its own DRAM module, filter-unit pool, devices, drivers and fault
//! injector — connected to a host frontend by a
//! [`jafar_net::NetFabric`] link and driven by
//! [`jafar_serve::cluster::run_cluster`].
//!
//! Every node replays the **identical node-local allocation sequence**:
//! the column replica, bitset buffer and projection buffer land at the
//! same node-local physical addresses on every node (the grid analogue
//! of `ServeCluster`'s identical channel-local layout). Combined with
//! the fabric's label-split jitter streams, a query served on node `k`
//! of an N-node grid runs byte-for-byte the device program it would run
//! on a single-node grid — which is what lets `tests/cluster_identity.rs`
//! assert per-record byte identity between cluster and solo runs.
//!
//! Fault domains are per node: [`ServeGrid::inject_faults_on_node`]
//! installs a plan on one node's module only, and the cluster report's
//! per-node availability ledgers stay confined to that node.

use crate::alloc::SimAlloc;
use crate::config::SystemConfig;
use jafar_common::obs::{Event, RingTracer, SharedTracer};
use jafar_core::{DriverStats, JafarDevice, ResilienceConfig, ResilientDriver};
use jafar_dram::{DramModule, FaultInjector, FaultPlan, FaultStats, PhysAddr};
use jafar_net::{NetFabric, Placement};
use jafar_serve::cluster::{cluster_fabric, run_cluster, ClusterConfig, ClusterEnv, ClusterReport};
use jafar_serve::engine::{out_lanes, ServeConfig, ServeEnv};
use jafar_serve::{FilterPool, SchedPolicy, SingleDimmPool, Workload};
use std::cell::RefCell;
use std::rc::Rc;

/// Result of a [`ServeGrid::serve`] run: the cluster report plus the
/// per-node recovery and fault counters.
#[derive(Clone, Debug)]
pub struct GridServeRun {
    /// Frontend-side per-query records, per-node summaries and the
    /// network ledger.
    pub report: ClusterReport,
    /// Per-node, per-unit recovery counters of the persistent drivers.
    pub recovery: Vec<Vec<DriverStats>>,
    /// Per-node injector counters (`None` for nodes with no plan).
    pub faults: Vec<Option<FaultStats>>,
}

/// One memory node's machine: a single-DIMM serving box.
struct GridNode {
    module: DramModule,
    pool: SingleDimmPool,
    devices: Vec<JafarDevice>,
    /// Per-unit rank-confined arenas; the allocation sequence is
    /// identical on every node, so node-local addresses replay exactly.
    arenas: Vec<SimAlloc>,
}

/// `N` disaggregated memory nodes served behind one host frontend.
///
/// Built from the same [`SystemConfig`] as a [`crate::System`]: each
/// node gets its own DRAM module with the configured geometry/timing/
/// mapping, and — mirroring the single-DIMM convention — every rank but
/// the last is an NDP filter unit (the last stays CPU-private).
pub struct ServeGrid {
    cfg: SystemConfig,
    nodes: Vec<GridNode>,
    tracer: SharedTracer,
    trace_ring: Option<Rc<RefCell<RingTracer>>>,
}

impl ServeGrid {
    /// Assembles an `nodes`-node grid from `cfg`.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `cfg` has no JAFAR device.
    pub fn new(cfg: SystemConfig, nodes: usize, tracer: SharedTracer) -> Self {
        assert!(nodes > 0, "a grid needs at least one memory node");
        let device = cfg
            .device
            .expect("serving requires a JAFAR device (SystemConfig::device)");
        let rank_bytes = cfg.dram_geometry.rank_bytes();
        let units = (cfg.dram_geometry.ranks as usize).saturating_sub(1).max(1);
        let nodes = (0..nodes)
            .map(|_| GridNode {
                module: DramModule::new(cfg.dram_geometry, cfg.dram_timing, cfg.mapping),
                pool: SingleDimmPool::new(units),
                devices: (0..units).map(|_| JafarDevice::new(device)).collect(),
                arenas: (0..units as u64)
                    .map(|r| SimAlloc::new(PhysAddr(r * rank_bytes), rank_bytes))
                    .collect(),
            })
            .collect();
        ServeGrid {
            cfg,
            nodes,
            tracer,
            trace_ring: None,
        }
    }

    /// [`ServeGrid::new`] with a fresh ring tracer of `capacity` events
    /// attached — the stream carries the frontend's `QueryRouted` /
    /// `NetHop` / `ColumnPulled` events alongside the node engines' own.
    pub fn with_tracing(cfg: SystemConfig, nodes: usize, capacity: usize) -> Self {
        let (tracer, ring) = SharedTracer::ring(capacity);
        let mut grid = Self::new(cfg, nodes, tracer);
        grid.trace_ring = Some(ring);
        grid
    }

    /// Number of memory nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// NDP filter units per node.
    pub fn units_per_node(&self) -> usize {
        self.nodes[0].pool.units()
    }

    /// The standard star fabric for this grid (one datacenter link per
    /// node plus the page-store link), jitter streams rooted at `seed`.
    pub fn fabric(&self, seed: u64) -> NetFabric {
        cluster_fabric(self.nodes.len(), seed)
    }

    /// Snapshot of the recorded trace events, oldest first. Empty unless
    /// built via [`ServeGrid::with_tracing`].
    pub fn trace_events(&self) -> Vec<Event> {
        self.trace_ring
            .as_ref()
            .map(|r| r.borrow().snapshot())
            .unwrap_or_default()
    }

    /// Installs a fault plan on one node's module — the grid's fault
    /// domain is the node, so the plan cannot perturb any other node.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn inject_faults_on_node(&mut self, node: usize, plan: FaultPlan) {
        self.nodes[node]
            .module
            .set_fault_injector(Some(FaultInjector::new(plan)));
    }

    /// Removes every node's fault injector.
    pub fn clear_faults(&mut self) {
        for node in &mut self.nodes {
            node.module.set_fault_injector(None);
        }
    }

    /// Serves `workload` across the grid: the column is replicated into
    /// every *holder* node's units (identical node-local addresses on
    /// every node), one persistent resilient driver is built per unit,
    /// and the frontend routes over `fabric` per `ccfg` while each node
    /// runs its own engine event loop.
    ///
    /// Non-holder nodes still get the replica written (placement is a
    /// routing contract, not a storage optimisation in this model) so a
    /// placement change never changes any node's allocation replay.
    ///
    /// # Panics
    /// Panics if `values` is empty, a unit arena cannot hold a replica
    /// plus its buffers, the placement names a node outside the grid, or
    /// the workload is closed-loop.
    ///
    /// # Errors
    /// Surfaces the first node-engine invariant violation, exactly as
    /// [`jafar_serve::run_serve_checked`] would.
    #[allow(clippy::too_many_arguments)]
    pub fn serve(
        &mut self,
        values: &[i64],
        placement: &Placement,
        fabric: &mut NetFabric,
        workload: &Workload,
        policy: SchedPolicy,
        cfg: &ServeConfig,
        ccfg: &ClusterConfig,
    ) -> GridServeRun {
        self.serve_with_keys(values, &[], placement, fabric, workload, policy, cfg, ccfg)
    }

    /// [`ServeGrid::serve`] with a key column alongside the value
    /// column, for workloads carrying keyed group-by queries. `keys`
    /// must be row-aligned with `values` (or empty when no query
    /// groups).
    #[allow(clippy::too_many_arguments)]
    pub fn serve_with_keys(
        &mut self,
        values: &[i64],
        keys: &[i64],
        placement: &Placement,
        fabric: &mut NetFabric,
        workload: &Workload,
        policy: SchedPolicy,
        cfg: &ServeConfig,
        ccfg: &ClusterConfig,
    ) -> GridServeRun {
        assert!(!values.is_empty(), "cannot serve an empty column");
        let rows = values.len() as u64;
        let rcfg = ResilienceConfig {
            costs: self.cfg.driver,
            page_bytes: self.cfg.page_bytes,
            ..cfg.resilience
        };
        // Pass 1: identical allocation replay + column write on every
        // node; per-node driver banks.
        type NodeLayout = (Vec<PhysAddr>, Vec<PhysAddr>, Vec<PhysAddr>, Vec<PhysAddr>);
        let mut layouts: Vec<NodeLayout> = Vec::new();
        let mut drivers: Vec<Vec<ResilientDriver>> = Vec::new();
        for node in &mut self.nodes {
            let units = node.pool.units();
            let mut replicas = Vec::with_capacity(units);
            let mut outs = Vec::with_capacity(units);
            let mut proj_outs = Vec::with_capacity(units);
            let mut stage_outs = Vec::with_capacity(units);
            for arena in &mut node.arenas {
                let col = arena.alloc_blocks(rows * 8);
                for (i, &v) in values.iter().enumerate() {
                    node.module
                        .data_mut()
                        .write_i64(PhysAddr(col.0 + i as u64 * 8), v);
                }
                replicas.push(col);
                let stride = rows.div_ceil(8).next_multiple_of(64);
                outs.push(arena.alloc_blocks((stride * out_lanes(cfg, workload)).max(64)));
                proj_outs.push(arena.alloc_blocks(rows * 8));
                // Group-by staging: worst case every row lands on this
                // unit, each group padded to a 64-byte kernel boundary.
                stage_outs.push(arena.alloc_blocks(rows * 8 + 64));
            }
            layouts.push((replicas, outs, proj_outs, stage_outs));
            drivers.push(
                (0..units)
                    .map(|_| {
                        let mut d = ResilientDriver::new(rcfg);
                        d.set_tracer(self.tracer.clone());
                        d
                    })
                    .collect(),
            );
        }
        // Pass 2: borrow each node's machine into its ServeEnv and run
        // the cluster frontend over all of them.
        let tracer = &self.tracer;
        let envs: Vec<ServeEnv<'_>> = self
            .nodes
            .iter_mut()
            .zip(drivers.iter_mut())
            .zip(layouts.iter())
            .map(
                |((node, drv), (replicas, outs, proj_outs, stage_outs))| ServeEnv {
                    modules: vec![&mut node.module],
                    pool: &node.pool,
                    devices: &mut node.devices,
                    drivers: drv,
                    replicas,
                    outs,
                    proj_outs,
                    values,
                    keys,
                    stage_outs,
                    tracer,
                },
            )
            .collect();
        let report = run_cluster(
            ClusterEnv {
                nodes: envs,
                placement,
                fabric,
                tracer,
            },
            workload,
            policy,
            cfg,
            ccfg,
        )
        .unwrap_or_else(|inv| panic!("engine invariant violated: {inv}"));
        GridServeRun {
            report,
            recovery: drivers
                .iter()
                .map(|bank| bank.iter().map(|d| *d.stats()).collect())
                .collect(),
            faults: self
                .nodes
                .iter()
                .map(|n| n.module.fault_stats().copied())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_common::rng::SplitMix64;
    use jafar_common::time::Tick;
    use jafar_serve::cluster::{RoutePolicy, Tier};
    use jafar_serve::PredicateMix;

    fn values(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_range_inclusive(0, 999)).collect()
    }

    fn reference_bytes(values: &[i64], lo: i64, hi: i64) -> Vec<u8> {
        let mut bytes = vec![0u8; values.len().div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    #[test]
    fn grid_serves_byte_identically_across_nodes() {
        let vals = values(4096, 77);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 250,
        };
        let workload = Workload::poisson(mix, 8, Tick::from_us(3), 19);
        let mut grid = ServeGrid::new(SystemConfig::test_small(), 2, SharedTracer::disabled());
        assert_eq!(grid.nodes(), 2);
        let mut fabric = grid.fabric(0x91D);
        let run = grid.serve(
            &vals,
            &Placement::hot(2),
            &mut fabric,
            &workload,
            SchedPolicy::Fifo,
            &ServeConfig::default(),
            &ClusterConfig::default(),
        );
        assert_eq!(run.report.completed(), 8);
        assert_eq!(run.report.shed(), 0);
        for q in &run.report.queries {
            let rec = &q.record;
            assert_eq!(rec.bitset, reference_bytes(&vals, rec.lo, rec.hi));
        }
        assert!(run.report.nodes.iter().all(|n| n.routed > 0));
        assert_eq!(run.report.store_link.messages, 0);
        assert_eq!(run.recovery.len(), 2);
    }

    #[test]
    fn node_scoped_outage_is_confined_to_that_node() {
        let vals = values(4096, 31);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 300,
        };
        let workload = Workload::poisson(mix, 6, Tick::from_us(4), 47);
        let mut grid = ServeGrid::new(SystemConfig::test_small(), 2, SharedTracer::disabled());
        // Node 1's only NDP rank is dark for the whole run; blind
        // round-robin keeps routing to it anyway.
        grid.inject_faults_on_node(1, FaultPlan::none(5).with_outage(0, Tick::ZERO, Tick::MAX));
        let mut fabric = grid.fabric(0xDEAD);
        let run = grid.serve(
            &vals,
            &Placement::hot(2),
            &mut fabric,
            &workload,
            SchedPolicy::Fifo,
            &ServeConfig::default(),
            &ClusterConfig {
                route: RoutePolicy::RoundRobin,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(run.report.completed(), 6, "a dark node still answers");
        for q in &run.report.queries {
            assert_eq!(
                q.record.bitset,
                reference_bytes(&vals, q.record.lo, q.record.hi)
            );
        }
        assert!(run.report.nodes[1].availability.disturbed());
        assert!(
            !run.report.nodes[0].availability.disturbed(),
            "node 0 never sees node 1's outage"
        );
        assert!(
            run.report
                .queries
                .iter()
                .filter(|q| q.node == Some(0))
                .all(|q| q.tier == Tier::RemoteNdp),
            "node 0 keeps serving near-data"
        );
        assert!(
            run.faults[1].as_ref().is_some_and(|f| f.total() > 0),
            "node 1's injector rejected commands"
        );
        assert!(run.faults[0].is_none(), "node 0 has no injector");
    }
}
