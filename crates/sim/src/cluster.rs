//! A channels × ranks serving machine over the interleaved multi-channel
//! memory system.
//!
//! [`System::serve`](crate::System::serve) drives the serving engine over
//! one DIMM's rank vector; a [`ServeCluster`] widens the schedulable pool
//! across `C` memory channels (one [`jafar_memctl::MultiChannel`] channel
//! per [`jafar_dram::DramModule`]) behind a
//! [`jafar_serve::ChannelRankPool`]. Every channel carries the *same*
//! channel-local layout — replica, bitset buffer and projection buffer at
//! identical channel-local addresses, contiguous within the channel and
//! never word-interleaved across channels — so each unit's shard run is
//! byte-for-byte the run a single-channel machine would do, and the
//! engine's byte-identity guarantee carries over unchanged (asserted by
//! `tests/pool_identity.rs`).
//!
//! The channel count is validated through the same typed-error path as
//! `MultiChannel` itself: a non-power-of-two count comes back as
//! [`ChannelConfigError`] *and* is reported as an `ErrorSurfaced` trace
//! event on the cluster's tracer — the sim configuration path never
//! panics on bad user input.

use crate::alloc::SimAlloc;
use crate::config::SystemConfig;
use jafar_common::obs::{Event, EventKind, RingTracer, SharedTracer};
use jafar_core::{DriverStats, JafarDevice, ResilienceConfig, ResilientDriver};
use jafar_dram::{DramModule, FaultInjector, FaultPlan, FaultStats, PhysAddr};
use jafar_memctl::controller::MemoryController;
use jafar_memctl::{ChannelConfigError, MultiChannel};
use jafar_serve::engine::{out_lanes, run_serve, ServeConfig, ServeEnv};
use jafar_serve::{ChannelRankPool, FilterPool, SchedPolicy, ServeReport, Workload};
use std::cell::RefCell;
use std::rc::Rc;

/// Result of a [`ServeCluster::serve`] run: the engine's report plus the
/// per-unit recovery counters and per-channel fault counters.
#[derive(Clone, Debug)]
pub struct ClusterServeRun {
    /// Per-query records and latency/throughput aggregates.
    pub report: ServeReport,
    /// Per-unit recovery counters of the persistent drivers, in unit-id
    /// (channel-major) order.
    pub recovery: Vec<DriverStats>,
    /// Per-channel injector counters (`None` for channels with no plan).
    pub faults: Vec<Option<FaultStats>>,
}

/// `C` channels × `R` ranks of JAFAR filter units served as one pool.
///
/// Built from the same [`SystemConfig`] as a [`crate::System`]: each
/// channel gets its own memory controller and DRAM module with the
/// configured geometry/timing/mapping, every rank but the last per
/// channel is an NDP unit (the last stays CPU-private, mirroring the
/// single-DIMM convention), and unit ids are channel-major per
/// [`ChannelRankPool`].
pub struct ServeCluster {
    cfg: SystemConfig,
    mc: MultiChannel,
    pool: ChannelRankPool,
    devices: Vec<JafarDevice>,
    /// Per-unit channel-local arenas; `arenas[u]` allocates within rank
    /// `pool.unit(u).rank` of channel `pool.unit(u).channel`. Identical
    /// allocation sequences per channel keep channel-local addresses
    /// identical across channels.
    arenas: Vec<SimAlloc>,
    tracer: SharedTracer,
    trace_ring: Option<Rc<RefCell<RingTracer>>>,
}

impl ServeCluster {
    /// Assembles a `channels`-channel cluster from `cfg`.
    ///
    /// # Errors
    /// [`ChannelConfigError::ChannelCountNotPow2`] when `channels` is
    /// zero or not a power of two — also reported as an `ErrorSurfaced
    /// { site: "serve-cluster" }` event on `tracer` so misconfigurations
    /// show up in the unified trace stream instead of a panic.
    ///
    /// # Panics
    /// Panics if `cfg` has no JAFAR device: a cluster without filter
    /// units cannot serve.
    pub fn new(
        cfg: SystemConfig,
        channels: usize,
        tracer: SharedTracer,
    ) -> Result<Self, ChannelConfigError> {
        let device = cfg
            .device
            .expect("serving requires a JAFAR device (SystemConfig::device)");
        let controllers: Vec<MemoryController> = (0..channels)
            .map(|_| {
                MemoryController::new(
                    DramModule::new(cfg.dram_geometry, cfg.dram_timing, cfg.mapping),
                    cfg.controller,
                )
            })
            .collect();
        let mc = match MultiChannel::new(controllers) {
            Ok(mc) => mc,
            Err(e) => {
                tracer.emit(
                    jafar_common::time::Tick::ZERO,
                    EventKind::ErrorSurfaced {
                        site: "serve-cluster",
                        detail: "channel-count-not-pow2",
                    },
                );
                return Err(e);
            }
        };
        let rank_bytes = cfg.dram_geometry.rank_bytes();
        let ranks_per_channel = (cfg.dram_geometry.ranks as usize).saturating_sub(1).max(1);
        let pool = ChannelRankPool::new(channels, ranks_per_channel);
        let mut arenas = Vec::with_capacity(pool.units());
        for u in 0..pool.units() {
            let rank = pool.unit(u).rank as u64;
            arenas.push(SimAlloc::new(PhysAddr(rank * rank_bytes), rank_bytes));
        }
        Ok(ServeCluster {
            devices: (0..pool.units())
                .map(|_| JafarDevice::new(device))
                .collect(),
            cfg,
            mc,
            pool,
            arenas,
            tracer,
            trace_ring: None,
        })
    }

    /// [`ServeCluster::new`] with a fresh ring tracer of `capacity`
    /// events attached, for callers that want the trace stream (e.g. to
    /// observe `ErrorSurfaced` / `RankHealth` events).
    pub fn with_tracing(
        cfg: SystemConfig,
        channels: usize,
        capacity: usize,
    ) -> Result<Self, ChannelConfigError> {
        let (tracer, ring) = SharedTracer::ring(capacity);
        let mut cluster = Self::new(cfg, channels, tracer)?;
        cluster.trace_ring = Some(ring);
        Ok(cluster)
    }

    /// The pool topology this cluster schedules over.
    pub fn pool(&self) -> &ChannelRankPool {
        &self.pool
    }

    /// Number of memory channels.
    pub fn channels(&self) -> usize {
        self.mc.num_channels()
    }

    /// Snapshot of the recorded trace events, oldest first. Empty unless
    /// built via [`ServeCluster::with_tracing`].
    pub fn trace_events(&self) -> Vec<Event> {
        self.trace_ring
            .as_ref()
            .map(|r| r.borrow().snapshot())
            .unwrap_or_default()
    }

    /// Installs a fault plan on one channel's module. Rank scopes within
    /// the plan are channel-local, so a rank-scoped fault confines itself
    /// to the single pool unit `{channel, rank}`.
    pub fn inject_faults_on_channel(&mut self, channel: usize, plan: FaultPlan) {
        self.mc
            .channel_mut(channel)
            .module_mut()
            .set_fault_injector(Some(FaultInjector::new(plan)));
    }

    /// Removes every channel's fault injector.
    pub fn clear_faults(&mut self) {
        for ch in 0..self.mc.num_channels() {
            self.mc
                .channel_mut(ch)
                .module_mut()
                .set_fault_injector(None);
        }
    }

    /// Serves `workload` over the full channels × ranks pool: the column
    /// is replicated into every unit's arena (identical channel-local
    /// addresses on every channel), one persistent resilient driver is
    /// built per unit, and the engine schedules across all channels in
    /// one event loop — rescued shards may migrate across channels.
    ///
    /// # Panics
    /// Panics if `values` is empty or a unit arena cannot hold a replica
    /// plus its output buffers.
    pub fn serve(
        &mut self,
        values: &[i64],
        workload: &Workload,
        policy: SchedPolicy,
        cfg: &ServeConfig,
    ) -> ClusterServeRun {
        self.serve_with_keys(values, &[], workload, policy, cfg)
    }

    /// [`ServeCluster::serve`] with a key column alongside the value
    /// column, for workloads carrying keyed group-by queries. `keys`
    /// must be row-aligned with `values` (or empty when no query
    /// groups).
    pub fn serve_with_keys(
        &mut self,
        values: &[i64],
        keys: &[i64],
        workload: &Workload,
        policy: SchedPolicy,
        cfg: &ServeConfig,
    ) -> ClusterServeRun {
        assert!(!values.is_empty(), "cannot serve an empty column");
        let rows = values.len() as u64;
        let nunits = self.pool.units();
        let mut replicas = Vec::with_capacity(nunits);
        let mut outs = Vec::with_capacity(nunits);
        let mut proj_outs = Vec::with_capacity(nunits);
        let mut stage_outs = Vec::with_capacity(nunits);
        {
            let mut modules = self.mc.modules_mut();
            for u in 0..nunits {
                let ch = self.pool.unit(u).channel;
                let col = self.arenas[u].alloc_blocks(rows * 8);
                for (i, &v) in values.iter().enumerate() {
                    modules[ch]
                        .data_mut()
                        .write_i64(PhysAddr(col.0 + i as u64 * 8), v);
                }
                replicas.push(col);
                // One bitset lane per fuse slot — or per semi-join key
                // range, whichever is wider (engine addresses lane `l`
                // at `out + l * stride`); fuse_window=1 with no
                // semi-joins is the historical single-lane size.
                let stride = rows.div_ceil(8).next_multiple_of(64);
                outs.push(self.arenas[u].alloc_blocks((stride * out_lanes(cfg, workload)).max(64)));
                proj_outs.push(self.arenas[u].alloc_blocks(rows * 8));
                // Group-by staging: worst case every row lands on this
                // unit, each group padded to a 64-byte kernel boundary.
                stage_outs.push(self.arenas[u].alloc_blocks(rows * 8 + 64));
            }
        }
        let rcfg = ResilienceConfig {
            costs: self.cfg.driver,
            page_bytes: self.cfg.page_bytes,
            ..cfg.resilience
        };
        let mut drivers: Vec<ResilientDriver> = (0..nunits)
            .map(|_| {
                let mut d = ResilientDriver::new(rcfg);
                d.set_tracer(self.tracer.clone());
                d
            })
            .collect();
        let report = run_serve(
            ServeEnv {
                modules: self.mc.modules_mut(),
                pool: &self.pool,
                devices: &mut self.devices,
                drivers: &mut drivers,
                replicas: &replicas,
                outs: &outs,
                proj_outs: &proj_outs,
                values,
                keys,
                stage_outs: &stage_outs,
                tracer: &self.tracer,
            },
            workload,
            policy,
            cfg,
        );
        ClusterServeRun {
            report,
            recovery: drivers.iter().map(|d| *d.stats()).collect(),
            faults: (0..self.mc.num_channels())
                .map(|ch| self.mc.channel(ch).module().fault_stats().copied())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_common::rng::SplitMix64;
    use jafar_common::time::Tick;
    use jafar_serve::PredicateMix;

    fn values(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_range_inclusive(0, 999)).collect()
    }

    fn reference_bytes(values: &[i64], lo: i64, hi: i64) -> Vec<u8> {
        let mut bytes = vec![0u8; values.len().div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    #[test]
    fn non_pow2_channel_count_is_surfaced_not_panicked() {
        let (tracer, ring) = SharedTracer::ring(16);
        let got = ServeCluster::new(SystemConfig::test_small(), 3, tracer);
        assert!(matches!(
            got,
            Err(ChannelConfigError::ChannelCountNotPow2 { got: 3 })
        ));
        let events = ring.borrow().snapshot();
        assert!(
            events.iter().any(|e| matches!(
                e.kind,
                EventKind::ErrorSurfaced {
                    site: "serve-cluster",
                    ..
                }
            )),
            "the config error must reach the trace stream"
        );
    }

    #[test]
    fn two_channel_cluster_serves_bit_identically() {
        let vals = values(4096, 71);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 250,
        };
        let workload = Workload::poisson(mix, 6, Tick::from_us(2), 13);
        let mut cluster =
            ServeCluster::new(SystemConfig::test_small(), 2, SharedTracer::disabled())
                .expect("2 channels");
        assert_eq!(cluster.channels(), 2);
        let run = cluster.serve(&vals, &workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(run.report.completed(), 6);
        for rec in &run.report.records {
            assert_eq!(rec.bitset, reference_bytes(&vals, rec.lo, rec.hi));
        }
        assert_eq!(
            run.report.availability.units.len(),
            cluster.pool().units(),
            "one availability record per unit"
        );
    }

    #[test]
    fn channel_scoped_fault_confines_to_one_unit() {
        let vals = values(4096, 29);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 300,
        };
        let workload = Workload::poisson(mix, 4, Tick::from_us(3), 43);
        let mut cluster =
            ServeCluster::new(SystemConfig::test_small(), 2, SharedTracer::disabled())
                .expect("2 channels");
        // Kill channel 1's rank 0 — exactly one pool unit.
        let sick = cluster.pool().id_of(1, 0, 0).expect("in-shape unit");
        cluster
            .inject_faults_on_channel(1, FaultPlan::none(7).with_outage(0, Tick::ZERO, Tick::MAX));
        let run = cluster.serve(&vals, &workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(run.report.completed(), 4);
        for rec in &run.report.records {
            assert_eq!(rec.bitset, reference_bytes(&vals, rec.lo, rec.hi));
        }
        let a = &run.report.availability;
        assert!(a.units[sick].quarantines >= 1, "the sick unit quarantined");
        for (u, rec) in a.units.iter().enumerate() {
            if u != sick {
                assert_eq!(rec.quarantines, 0, "unit {u} undisturbed");
            }
        }
        // The serve path hits a dark rank at session setup (the NDP
        // ownership handoff is a ModeRegisterSet), so the outage shows up
        // as MRS rejections rather than read-burst blackouts.
        assert!(
            run.faults[1].as_ref().is_some_and(|f| f.total() > 0),
            "channel 1's outage rejected the unit's commands"
        );
        assert!(run.faults[0].is_none(), "channel 0 has no injector");
    }
}
