//! Platform presets — Table 1 of the paper.
//!
//! | | gem5 simulator | Intel Xeon E7-4820 v2 |
//! |---|---|---|
//! | One out-of-order CPU | Eight 2-way SMT cores |
//! | 1 GHz CPU | 2 GHz CPU |
//! | 1 socket | 4-socket server (32 phys. cores) |
//! | 64 kB L1, 128 kB L2 | 256 kB L1, 2 MB L2, 16 MB L3 |
//! | 2 GB DRAM | 1 TB DDR3 SDRAM |
//!
//! The gem5 column is what Figure 3 runs on ("designed to be fairly simple
//! in order to isolate the raw performance improvement possible with
//! JAFAR"); the Xeon column hosts the Figure-4 profiling. We model one
//! core of each (the paper's workloads are single-threaded scans), with
//! capacities scaled to one core's effective share where Table 1 reports
//! per-socket aggregates.

use jafar_cache::HierarchyConfig;
use jafar_common::time::{ClockDomain, Tick};
use jafar_core::api::DriverCosts;
use jafar_core::device::DeviceConfig;
use jafar_cpu::KernelParams;
use jafar_dram::{AddressMapping, DramGeometry, DramTiming};
use jafar_memctl::controller::ControllerConfig;

/// Full configuration of one simulated platform.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Host core clock.
    pub cpu_clock: ClockDomain,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// DRAM geometry.
    pub dram_geometry: DramGeometry,
    /// DRAM timing.
    pub dram_timing: DramTiming,
    /// Physical address mapping.
    pub mapping: AddressMapping,
    /// Memory-controller queues/policy.
    pub controller: ControllerConfig,
    /// Scan kernel µop costs.
    pub kernel: KernelParams,
    /// The JAFAR device on the DIMM (None = host without NDP).
    pub device: Option<DeviceConfig>,
    /// Host driver costs for device invocation.
    pub driver: DriverCosts,
    /// Stream-prefetcher (streams, degree); None disables prefetch.
    pub prefetcher: Option<(usize, u64)>,
    /// Fixed per-query setup time outside the (accelerated) kernel:
    /// planning, allocation, result finalisation. Charged identically to
    /// both select paths; calibrated so the kernel is ≈93% of the
    /// CPU-only Figure-3 run (§3.1's in-text claim).
    pub query_overhead: Tick,
    /// Virtual-memory page size for the per-page `select_jafar` contract
    /// (2 MiB huge pages — the natural choice for a pinning storage
    /// engine).
    pub page_bytes: u64,
}

impl SystemConfig {
    /// Table 1, left column: the gem5-simulated host Figure 3 uses.
    pub fn gem5_like() -> Self {
        SystemConfig {
            name: "gem5-like (Table 1, left)",
            cpu_clock: ClockDomain::from_ghz(1),
            hierarchy: HierarchyConfig::gem5_like(),
            dram_geometry: DramGeometry::gem5_2gb(),
            dram_timing: DramTiming::ddr3_paper(),
            mapping: AddressMapping::RankRowBankBlock,
            controller: ControllerConfig::default(),
            kernel: KernelParams::default(),
            device: Some(DeviceConfig::default()),
            driver: DriverCosts::default(),
            prefetcher: Some((8, 8)),
            query_overhead: Tick::from_us(1150),
            page_bytes: 2 * 1024 * 1024,
        }
    }

    /// Table 1, right column: the Xeon host used for the Figure-4
    /// profiling (one core modelled).
    pub fn xeon_like() -> Self {
        SystemConfig {
            name: "Xeon E7-4820 v2-like (Table 1, right)",
            cpu_clock: ClockDomain::from_ghz(2),
            hierarchy: HierarchyConfig::xeon_like(),
            dram_geometry: DramGeometry::gem5_2gb(),
            dram_timing: DramTiming::ddr3_paper(),
            mapping: AddressMapping::RankRowBankBlock,
            controller: ControllerConfig::default(),
            kernel: KernelParams::default(),
            device: None,
            driver: DriverCosts::default(),
            prefetcher: Some((16, 8)),
            query_overhead: Tick::from_us(50),
            page_bytes: 2 * 1024 * 1024,
        }
    }

    /// A small, fast configuration for unit tests: tiny DRAM, no refresh.
    pub fn test_small() -> Self {
        SystemConfig {
            name: "test-small",
            cpu_clock: ClockDomain::from_ghz(1),
            hierarchy: HierarchyConfig::gem5_like(),
            dram_geometry: DramGeometry::tiny(),
            dram_timing: DramTiming::ddr3_paper().without_refresh(),
            mapping: AddressMapping::RankRowBankBlock,
            controller: ControllerConfig::default(),
            kernel: KernelParams::default(),
            device: Some(DeviceConfig::default()),
            driver: DriverCosts::default(),
            prefetcher: Some((8, 8)),
            query_overhead: Tick::from_ns(500),
            page_bytes: 4096,
        }
    }

    /// Renders the Table-1 comparison rows: `(spec, gem5 value, xeon value)`.
    pub fn table1() -> Vec<(&'static str, String, String)> {
        let g = SystemConfig::gem5_like();
        let x = SystemConfig::xeon_like();
        let cache = |h: &HierarchyConfig| {
            let mut s = format!(
                "{} L1, {} L2",
                jafar_common::size::fmt_bytes(h.l1.size_bytes),
                jafar_common::size::fmt_bytes(h.l2.size_bytes)
            );
            if let Some(l3) = h.l3 {
                s.push_str(&format!(
                    ", {} L3",
                    jafar_common::size::fmt_bytes(l3.size_bytes)
                ));
            }
            s
        };
        vec![
            (
                "cores",
                "one out-of-order CPU".to_owned(),
                "eight 2-way SMT cores (one modelled)".to_owned(),
            ),
            (
                "clock",
                format!("{} MHz", g.cpu_clock.freq_mhz()),
                format!("{} MHz", x.cpu_clock.freq_mhz()),
            ),
            (
                "sockets",
                "1 socket".to_owned(),
                "4-socket server (one modelled)".to_owned(),
            ),
            ("caches", cache(&g.hierarchy), cache(&x.hierarchy)),
            (
                "DRAM",
                jafar_common::size::fmt_bytes(g.dram_geometry.capacity_bytes()),
                format!(
                    "{} modelled (1 TB in the paper)",
                    jafar_common::size::fmt_bytes(x.dram_geometry.capacity_bytes())
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let g = SystemConfig::gem5_like();
        assert_eq!(g.cpu_clock.freq_mhz(), 1000);
        assert_eq!(g.hierarchy.l1.size_bytes, 64 * 1024);
        assert_eq!(g.hierarchy.l2.size_bytes, 128 * 1024);
        assert!(g.hierarchy.l3.is_none());
        assert_eq!(g.dram_geometry.capacity_bytes(), 2 << 30);
        assert!(g.device.is_some());

        let x = SystemConfig::xeon_like();
        assert_eq!(x.cpu_clock.freq_mhz(), 2000);
        assert!(x.hierarchy.l3.is_some());
    }

    #[test]
    fn table1_rows_render() {
        let rows = SystemConfig::table1();
        assert_eq!(rows.len(), 5);
        assert!(rows
            .iter()
            .any(|(s, g, _)| *s == "caches" && g.contains("64KiB L1")));
        assert!(rows
            .iter()
            .any(|(s, _, x)| *s == "caches" && x.contains("L3")));
    }
}
