//! System-level energy accounting for the select paths.
//!
//! The paper motivates NDP partly through the cost of data movement; its
//! companion literature (NDA \[12\], TOP-PIM \[57\]) quantifies the energy
//! side. This module combines the Aladdin-style device energy from
//! `jafar-accel` with coarse host-side constants to compare the two select
//! paths end to end:
//!
//! - **CPU path**: active core energy for every kernel cycle, plus the
//!   full off-chip transfer energy for every 64-byte burst crossing the
//!   memory bus (the dominant term the paper's data-movement argument is
//!   about);
//! - **JAFAR path**: the device's dynamic + leakage energy from its
//!   scheduled datapath, on-DIMM DRAM access energy *without* the bus I/O
//!   component, and whatever the host core burns spin-waiting (zero under
//!   interrupt completion).
//!
//! Constants are order-of-magnitude figures from the DDR3-era literature,
//! documented per field; the reproduction uses them only for relative
//! comparisons.

use crate::system::{CpuSelectStats, JafarSelectStats};
use jafar_accel::ir::jafar_filter_kernel;
use jafar_accel::power::{EnergyModel as AccelEnergyModel, EnergyReport};
use jafar_accel::schedule::{Resources, Schedule};
use jafar_accel::Dddg;
use jafar_common::time::ClockDomain;

/// Host-side energy constants.
#[derive(Clone, Copy, Debug)]
pub struct HostEnergyModel {
    /// Active core energy per CPU cycle, picojoules (a modest OoO core at
    /// ~0.8 W / 1 GHz).
    pub cpu_pj_per_cycle: f64,
    /// Spin-wait (polling) core energy per cycle — lower than active, the
    /// pipeline mostly stalls on a load.
    pub cpu_idle_pj_per_cycle: f64,
    /// Full off-chip 64-byte transfer: DRAM array access + bus I/O
    /// (~15–20 pJ/bit end to end ⇒ ~8–10 nJ per burst).
    pub bus_burst_pj: f64,
    /// On-DIMM 64-byte access (array + internal IO, no off-chip bus):
    /// roughly 40 % of the full transfer.
    pub dimm_burst_pj: f64,
}

impl Default for HostEnergyModel {
    fn default() -> Self {
        HostEnergyModel {
            cpu_pj_per_cycle: 800.0,
            cpu_idle_pj_per_cycle: 250.0,
            bus_burst_pj: 9_000.0,
            dimm_burst_pj: 3_600.0,
        }
    }
}

/// Energy breakdown of one select run, picojoules.
#[derive(Clone, Copy, Debug)]
pub struct SelectEnergy {
    /// Host core energy.
    pub cpu_pj: f64,
    /// Accelerator datapath energy (zero on the CPU path).
    pub device_pj: f64,
    /// DRAM + data-movement energy.
    pub memory_pj: f64,
}

impl SelectEnergy {
    /// Total picojoules.
    pub fn total_pj(&self) -> f64 {
        self.cpu_pj + self.device_pj + self.memory_pj
    }

    /// Total millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }

    /// Energy of a CPU-only select run: kernel cycles on the core plus
    /// every line over the bus (reads + the output's allocate/writeback
    /// traffic, approximated by the controller's read counter at call
    /// time is the caller's concern — pass total bursts).
    pub fn cpu_path(
        stats: &CpuSelectStats,
        bus_bursts: u64,
        cpu_clock: ClockDomain,
        model: &HostEnergyModel,
    ) -> SelectEnergy {
        let cycles = cpu_clock.ticks_to_cycles(stats.kernel) as f64;
        SelectEnergy {
            cpu_pj: cycles * model.cpu_pj_per_cycle,
            device_pj: 0.0,
            memory_pj: bus_bursts as f64 * model.bus_burst_pj,
        }
    }

    /// Energy of a JAFAR pushdown run: the device's scheduled datapath
    /// energy over the filtered words, on-DIMM access energy for its
    /// bursts, and the host's spin-wait energy.
    pub fn jafar_path(
        stats: &JafarSelectStats,
        rows: u64,
        device_resources: &Resources,
        cpu_clock: ClockDomain,
        model: &HostEnergyModel,
    ) -> SelectEnergy {
        // Datapath energy via the Aladdin-style model: schedule a sample
        // of iterations and scale (energy is per-iteration linear).
        let sample = 4096u64.min(rows.max(1));
        let graph = Dddg::expand(&jafar_filter_kernel(), sample, 8);
        let schedule = Schedule::compute(&graph, device_resources);
        let report =
            EnergyReport::evaluate(&schedule, device_resources, &AccelEnergyModel::default());
        let device_pj = report.total_pj() * rows as f64 / sample as f64;

        let bursts = stats.device_bursts_read + rows.div_ceil(512); // + bitset writebacks
        let wait_cycles = cpu_clock.ticks_to_cycles(stats.cpu_wait) as f64;
        SelectEnergy {
            cpu_pj: wait_cycles * model.cpu_idle_pj_per_cycle,
            device_pj,
            memory_pj: bursts as f64 * model.dimm_burst_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::system::System;
    use jafar_common::rng::SplitMix64;
    use jafar_common::time::Tick;
    use jafar_cpu::ScanVariant;

    #[test]
    fn jafar_path_uses_far_less_energy() {
        let mut cfg = SystemConfig::test_small();
        cfg.query_overhead = Tick::from_ns(500);
        let mut sys = System::new(cfg);
        let mut rng = SplitMix64::new(3);
        let rows = 16_384u64;
        let vals: Vec<i64> = (0..rows)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let col = sys.write_column(&vals);
        sys.begin_measurement();
        let cpu = sys
            .run_select_cpu(col, rows, 0, 499, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let bus_bursts = sys.mc().counters().reads.get() + sys.mc().counters().writes.get();
        let jf = sys.run_select_jafar(col, rows, 0, 499, cpu.end);

        let model = HostEnergyModel::default();
        let clock = sys.config().cpu_clock;
        let resources = sys.config().device.expect("device configured").resources;
        let e_cpu = SelectEnergy::cpu_path(&cpu, bus_bursts, clock, &model);
        let e_jf = SelectEnergy::jafar_path(&jf, rows, &resources, clock, &model);

        assert!(e_cpu.total_pj() > 0.0 && e_jf.total_pj() > 0.0);
        // The headline NDP claim: the pushdown saves both core cycles and
        // bus transfers, so its energy is a small fraction of the CPU's.
        let ratio = e_cpu.total_pj() / e_jf.total_pj();
        assert!(ratio > 3.0, "energy ratio only {ratio}");
        // And the device's own datapath is a minor term next to DRAM.
        assert!(e_jf.device_pj < e_jf.memory_pj);
    }

    #[test]
    fn breakdown_components_consistent() {
        let e = SelectEnergy {
            cpu_pj: 1.0,
            device_pj: 2.0,
            memory_pj: 3.0,
        };
        assert_eq!(e.total_pj(), 6.0);
        assert!((e.total_mj() - 6e-9).abs() < 1e-18);
    }
}
