//! # jafar-sim — the full-system simulator
//!
//! The gem5-equivalent of the reproduction: it assembles the substrates —
//! host CPU scan engine (`jafar-cpu`), cache hierarchy (`jafar-cache`),
//! memory controller (`jafar-memctl`), DDR3 module (`jafar-dram`) and the
//! JAFAR device (`jafar-core`) — into one timed system and runs the
//! paper's experiments on it:
//!
//! - [`config`]: the Table-1 platform presets (the simulated gem5 host and
//!   the Xeon profiling host);
//! - [`alloc`]: simulated physical-memory placement, including
//!   rank-resident placement for JAFAR-consumable columns (§4's
//!   page-pinning discussion);
//! - [`backend`]: the [`jafar_cpu::MemoryBackend`] implementation over the
//!   cache hierarchy + memory controller, with stream prefetching — the
//!   CPU's view of memory;
//! - [`system`]: the assembled [`System`] with the two select paths:
//!   CPU-only ([`System::run_select_cpu`]) and JAFAR pushdown
//!   ([`System::run_select_jafar`], the per-page Figure-2 driver with
//!   rank-ownership handoff and completion polling) — Figure 3's two
//!   curves;
//! - [`replay`]: operator-trace replay for whole queries — Figure 4's
//!   memory-controller profiling of TPC-H runs.
//!
//! Beyond the paper, [`System::serve`] runs a *stream* of select queries
//! through the `jafar-serve` multi-tenant engine (admission control,
//! scheduling policies, SLO-driven degradation) over this system's
//! devices and ranks, [`cluster::ServeCluster`] widens that pool to
//! channels × ranks over the interleaved multi-channel memory system,
//! and [`grid::ServeGrid`] disaggregates it across N memory nodes behind
//! a deterministic cluster fabric with replica routing and a cross-tier
//! degradation ladder.

pub mod alloc;
pub mod backend;
pub mod cluster;
pub mod config;
pub mod energy;
pub mod grid;
pub mod replay;
pub mod system;

pub use alloc::SimAlloc;
pub use backend::SimBackend;
pub use cluster::{ClusterServeRun, ServeCluster};
pub use config::SystemConfig;
pub use energy::{HostEnergyModel, SelectEnergy};
pub use grid::{GridServeRun, ServeGrid};
pub use replay::{PlacedDb, QueryReplayer, ReplayCosts};
pub use system::{
    ColumnShard, CpuSelectStats, JafarSelectStats, ParallelSelectStats, PartitionedColumn,
    ResilientSelectStats, ServeRun, System,
};
