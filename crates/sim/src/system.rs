//! The assembled system and the two select paths of Figure 3.
//!
//! A [`System`] is one host (core + caches + memory controller + DDR3
//! module) with an optional JAFAR device on the DIMM. The two measured
//! paths:
//!
//! - [`System::run_select_cpu`]: the baseline — the scan kernel streams
//!   the column through the cache hierarchy, recording positions;
//! - [`System::run_select_jafar`]: the pushdown — the query manager
//!   drains the controller, grants rank ownership via MR3/MPR, then the
//!   driver invokes `select_jafar` once per (huge) page, polling the
//!   completion flag, and finally releases the rank.
//!
//! Both runs are preceded by the same fixed query-setup overhead
//! (planning, allocation, result finalisation) so the in-text "93% of
//! execution time is inside the accelerated region" accounting can be
//! reproduced.

use crate::alloc::SimAlloc;
use crate::backend::SimBackend;
use crate::config::SystemConfig;
use jafar_cache::{Hierarchy, StreamPrefetcher};
use jafar_common::obs::{
    chrome_trace_json, render_timeline, Event, MetricsRegistry, RingTracer, SharedTracer,
};
use jafar_common::stats::Scoreboard;
use jafar_common::time::Tick;
use jafar_core::api::{select_jafar, SelectArgs};
use jafar_core::{
    grant_ownership, release_ownership, DriverStats, JafarDevice, ResilienceConfig,
    ResilientDriver, SelectRequest,
};
use jafar_cpu::{ScanEngine, ScanVariant};
use jafar_dram::{DramModule, FaultInjector, FaultPlan, FaultStats, PhysAddr};
use jafar_memctl::controller::MemoryController;
use jafar_memctl::IdleReport;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Result of a CPU-only select run.
#[derive(Clone, Debug)]
pub struct CpuSelectStats {
    /// End of the run (including setup overhead).
    pub end: Tick,
    /// Matching rows.
    pub matches: u64,
    /// Matching positions (functional result).
    pub positions: Vec<u32>,
    /// Time inside the scan kernel (the "accelerated region" in the
    /// pushdown comparison).
    pub kernel: Tick,
    /// Fixed query-setup/driver time outside the kernel.
    pub driver: Tick,
    /// Kernel time lost to memory stalls.
    pub stall: Tick,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// 64-byte lines moved over the memory bus to the CPU.
    pub lines_from_dram: u64,
}

/// Result of a JAFAR pushdown select run.
#[derive(Clone, Debug)]
pub struct JafarSelectStats {
    /// End of the run (ownership released, results visible).
    pub end: Tick,
    /// Matching rows.
    pub matched: u64,
    /// Physical address of the output bitset.
    pub out_addr: PhysAddr,
    /// Time the device spent filtering/writing (the accelerated region).
    pub device: Tick,
    /// Host driver time: register programming + completion discovery.
    pub driver: Tick,
    /// CPU time burned spin-waiting (zero under interrupt completion —
    /// the §2.2 utilization trade-off).
    pub cpu_wait: Tick,
    /// Ownership handoff time (grant + release).
    pub ownership: Tick,
    /// Fixed query-setup time.
    pub setup: Tick,
    /// `select_jafar` invocations (pages).
    pub pages: u64,
    /// Bursts the device read on the DIMM (never crossing the bus).
    pub device_bursts_read: u64,
}

/// Result of a resilient JAFAR pushdown run under (possible) fault
/// injection: the [`JafarSelectStats`]-shaped timing plus the recovery and
/// fault counters the run report is built from.
#[derive(Clone, Debug)]
pub struct ResilientSelectStats {
    /// End of the run (ownership released, results visible).
    pub end: Tick,
    /// Matching rows.
    pub matched: u64,
    /// Physical address of the output bitset.
    pub out_addr: PhysAddr,
    /// `select_jafar` invocations plus CPU fallback pages.
    pub pages: u64,
    /// CPU time burned spin-waiting (polling and watchdog windows).
    pub cpu_wait: Tick,
    /// Time inside successful device page runs.
    pub device: Tick,
    /// Host driver time: setup, completion discovery, backoff waits.
    pub driver: Tick,
    /// What the recovery machinery did.
    pub recovery: DriverStats,
    /// What the injector did (absent when no plan was installed).
    pub faults: Option<FaultStats>,
}

impl ResilientSelectStats {
    /// The run report: one line of outcome, one of recovery counters, one
    /// of injected-fault counters — "what it cost" under the fault plan.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "resilient select: end={} matched={} pages={} cpu_wait={}",
            self.end, self.matched, self.pages, self.cpu_wait
        );
        let _ = writeln!(out, "  recovery: {}", self.recovery.scoreboard());
        match &self.faults {
            Some(f) => {
                let _ = writeln!(out, "  faults injected: {}", f.scoreboard());
            }
            None => {
                let _ = writeln!(out, "  faults injected: (no plan installed)");
            }
        }
        out
    }

    /// All counters (recovery + faults) as one scoreboard.
    pub fn scoreboard(&self) -> Scoreboard {
        let mut board = self.recovery.scoreboard();
        if let Some(f) = &self.faults {
            board.merge(&f.scoreboard());
        }
        board
    }
}

/// One simulated host system.
pub struct System {
    cfg: SystemConfig,
    mc: MemoryController,
    hierarchy: Hierarchy,
    prefetcher: Option<StreamPrefetcher>,
    inflight: HashMap<u64, Tick>,
    device: Option<JafarDevice>,
    /// Allocator over rank 0 (the NDP-consumable, pinned region).
    pub alloc: SimAlloc,
    /// Allocator over the remaining ranks (CPU-private scratch).
    pub scratch: SimAlloc,
    tracer: SharedTracer,
    trace_ring: Option<Rc<RefCell<RingTracer>>>,
}

impl System {
    /// Builds a system from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let module = DramModule::new(cfg.dram_geometry, cfg.dram_timing, cfg.mapping);
        let rank_bytes = cfg.dram_geometry.rank_bytes();
        let capacity = cfg.dram_geometry.capacity_bytes();
        System {
            mc: MemoryController::new(module, cfg.controller),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            prefetcher: cfg.prefetcher.map(|(n, d)| StreamPrefetcher::new(n, d)),
            inflight: HashMap::new(),
            device: cfg.device.map(JafarDevice::new),
            alloc: SimAlloc::new(PhysAddr(0), rank_bytes),
            scratch: SimAlloc::new(PhysAddr(rank_bytes), capacity - rank_bytes),
            cfg,
            tracer: SharedTracer::disabled(),
            trace_ring: None,
        }
    }

    /// Turns on cycle-stamped event tracing across every instrumented
    /// component (DRAM module, memory controller, JAFAR device, resilient
    /// driver), backed by a bounded ring holding the `capacity` most
    /// recent events. Purely observational: enabling tracing never changes
    /// a simulated tick count (asserted by `tracer_does_not_change_timing`).
    pub fn enable_tracing(&mut self, capacity: usize) {
        let (tracer, ring) = SharedTracer::ring(capacity);
        self.mc.set_tracer(tracer.clone());
        if let Some(device) = self.device.as_mut() {
            device.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
        self.trace_ring = Some(ring);
    }

    /// Snapshot of the recorded events, oldest first. Empty when tracing
    /// was never enabled.
    pub fn trace_events(&self) -> Vec<Event> {
        self.trace_ring
            .as_ref()
            .map(|r| r.borrow().snapshot())
            .unwrap_or_default()
    }

    /// The recorded events as Chrome `trace_event` JSON (load the string
    /// at `chrome://tracing` or in Perfetto). `None` when tracing was
    /// never enabled. Same seed, same run → byte-identical output.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace_ring
            .as_ref()
            .map(|r| chrome_trace_json(&r.borrow().snapshot()))
    }

    /// The recorded events as a human-readable timeline, one line per
    /// event. `None` when tracing was never enabled.
    pub fn trace_timeline(&self) -> Option<String> {
        self.trace_ring
            .as_ref()
            .map(|r| render_timeline(&r.borrow().snapshot()))
    }

    /// Snapshots every counter in the stack — DRAM module, memory
    /// controller, device, fault injector, and the trace ring itself —
    /// into one ordered [`MetricsRegistry`] for unified run reports.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let dram = self.mc.module().stats();
        reg.counter("dram.row_hits", dram.row_hits.get());
        reg.counter("dram.row_misses", dram.row_misses.get());
        reg.counter("dram.row_conflicts", dram.row_conflicts.get());
        reg.counter("dram.read_bursts", dram.read_bursts.get());
        reg.counter("dram.write_bursts", dram.write_bursts.get());
        reg.counter("dram.refreshes", dram.refreshes.get());
        reg.counter("dram.mode_sets", dram.mode_sets.get());
        reg.counter("dram.ownership_rejections", dram.ownership_rejections.get());
        let mc = self.mc.counters();
        reg.counter("memctl.reads", mc.reads.get());
        reg.counter("memctl.writes", mc.writes.get());
        reg.counter("memctl.rejected", mc.rejected.get());
        reg.counter("memctl.requeued", mc.requeued.get());
        if let Some(device) = self.device.as_ref() {
            let d = device.stats();
            reg.counter("device.jobs", d.jobs.get());
            reg.counter("device.words", d.words.get());
            reg.counter("device.bursts_read", d.bursts_read.get());
            reg.counter("device.bursts_written", d.bursts_written.get());
        }
        if let Some(f) = self.mc.module().fault_stats() {
            reg.counter("faults.flips_injected", f.flips_injected.get());
            reg.counter("faults.ecc_corrected", f.ecc_corrected.get());
            reg.counter("faults.ecc_uncorrectable", f.ecc_uncorrectable.get());
            reg.counter("faults.stalls", f.stalls.get());
            reg.counter("faults.drops", f.drops.get());
            reg.counter("faults.mrs_glitches", f.mrs_glitches.get());
            reg.counter("faults.refresh_storms", f.refresh_storms.get());
        }
        if let Some(ring) = self.trace_ring.as_ref() {
            let ring = ring.borrow();
            reg.counter("trace.emitted", ring.emitted());
            reg.counter("trace.dropped", ring.dropped());
        }
        reg
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory controller (counters, idle reports).
    pub fn mc(&self) -> &MemoryController {
        &self.mc
    }

    /// Mutable controller access (experiment plumbing).
    pub fn mc_mut(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// The JAFAR device, if configured.
    pub fn device(&self) -> Option<&JafarDevice> {
        self.device.as_ref()
    }

    /// Allocates a column in the pinned (rank-0) region and writes its
    /// values functionally. Returns the base address.
    pub fn write_column(&mut self, values: &[i64]) -> PhysAddr {
        let addr = self.alloc.alloc_blocks(values.len() as u64 * 8);
        let data = self.mc.module_mut().data_mut();
        for (i, v) in values.iter().enumerate() {
            data.write_i64(PhysAddr(addr.0 + i as u64 * 8), *v);
        }
        addr
    }

    /// A CPU memory backend for independent streaming access (scans): the
    /// out-of-order window hides cache-hit latency.
    pub fn backend(&mut self) -> SimBackend<'_> {
        SimBackend::new(
            &mut self.mc,
            &mut self.hierarchy,
            self.prefetcher.as_mut(),
            &mut self.inflight,
            self.cfg.cpu_clock,
        )
        .streaming()
    }

    /// A CPU memory backend for dependent access chains (hash probes,
    /// gathers): every hit pays its full cache-traversal latency.
    pub fn backend_dependent(&mut self) -> SimBackend<'_> {
        SimBackend::new(
            &mut self.mc,
            &mut self.hierarchy,
            self.prefetcher.as_mut(),
            &mut self.inflight,
            self.cfg.cpu_clock,
        )
    }

    /// Installs a seeded fault plan on the DRAM module. Subsequent runs —
    /// device or host — see its bit flips, stalls, glitches and storms.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.mc
            .module_mut()
            .set_fault_injector(Some(FaultInjector::new(plan)));
    }

    /// Counters of what the installed injector actually did, if any.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.mc.module().fault_stats()
    }

    /// Resets memory-controller accounting (between measured phases).
    pub fn begin_measurement(&mut self) {
        self.mc.reset_accounting();
    }

    /// Finalises controller accounting into the Figure-4 idle report over
    /// `[0, span)`.
    pub fn idle_report(&self, span: Tick) -> IdleReport {
        self.mc.finalize(span)
    }

    /// Runs the CPU-only select of `rows` packed `i64`s at `col_addr`,
    /// with the inclusive range `[lo, hi]`, writing the position list to
    /// scratch memory.
    ///
    /// # Errors
    /// [`jafar_cpu::MemoryFault`] if the column (or the scratch output)
    /// extends beyond simulated DRAM capacity — a placement error surfaced
    /// as a typed fault rather than a backend panic.
    pub fn run_select_cpu(
        &mut self,
        col_addr: PhysAddr,
        rows: u64,
        lo: i64,
        hi: i64,
        variant: ScanVariant,
        start: Tick,
    ) -> Result<CpuSelectStats, jafar_cpu::MemoryFault> {
        let setup = self.cfg.query_overhead;
        let out_addr = self.scratch.alloc_blocks(rows.max(1) * 4);
        let engine = ScanEngine::new(self.cfg.cpu_clock, self.cfg.kernel);
        let spec = jafar_cpu::engine::ScanSpec {
            col_addr: col_addr.0,
            rows,
            lo,
            hi,
            out_addr: out_addr.0,
            variant,
        };
        let kernel_start = start + setup;
        let mut backend = self.backend();
        let result = engine.run(&mut backend, spec, kernel_start);
        let lines = backend.demand_fetches;
        // Flush outstanding writebacks/RFOs (timing accounted in MC) even
        // when the scan faulted partway through.
        self.mc.drain();
        let result = result?;
        Ok(CpuSelectStats {
            end: result.end,
            matches: result.matches,
            positions: result.positions,
            kernel: result.end - kernel_start,
            driver: setup,
            stall: result.stall,
            mispredicts: result.mispredicts,
            lines_from_dram: lines,
        })
    }

    /// Runs the JAFAR pushdown select: ownership handoff, per-page
    /// `select_jafar` invocations with completion polling, release.
    ///
    /// # Panics
    /// Panics if the system has no device or a page fails (placement bugs
    /// are programming errors in experiments).
    pub fn run_select_jafar(
        &mut self,
        col_addr: PhysAddr,
        rows: u64,
        lo: i64,
        hi: i64,
        start: Tick,
    ) -> JafarSelectStats {
        assert!(self.device.is_some(), "system has no JAFAR device");
        let setup = self.cfg.query_overhead;
        let page_bytes = self.cfg.page_bytes;
        let out_addr = self.alloc.alloc_blocks(rows.div_ceil(8).max(64));
        let rank = self.mc.module().decoder().decode(col_addr).rank;

        let mut t = start + setup;
        // Quiesce host traffic, then hand the rank to the device.
        self.mc.drain();
        self.mc.advance_cursor(t);
        let module = self.mc.module_mut();
        let lease = grant_ownership(module, rank, t).expect("rank quiesced");
        let owned_at = lease.acquired_at;
        let mut ownership = owned_at - t;
        t = owned_at;

        let device = self.device.as_mut().expect("checked above");
        let rows_per_page = page_bytes / 8;
        let mut pages = 0u64;
        let mut device_time = Tick::ZERO;
        let mut driver_time = Tick::ZERO;
        let mut cpu_wait = Tick::ZERO;
        let mut matched = 0u64;
        let mut row = 0u64;
        while row < rows {
            let page_rows = rows_per_page.min(rows - row);
            let invoke_at = t + self.cfg.driver.setup;
            let outcome = select_jafar(
                device,
                module,
                SelectArgs {
                    col_data: PhysAddr(col_addr.0 + row * 8),
                    range_low: lo,
                    range_high: hi,
                    out_buf: PhysAddr(out_addr.0 + row / 8),
                    num_input_rows: page_rows,
                },
                invoke_at,
            );
            assert_eq!(outcome.errno, 0, "select_jafar failed: {}", outcome.errno);
            let run = outcome.run.expect("success carries a run");
            matched += outcome.num_output_rows;
            // Completion discovery: the next poll edge, or interrupt
            // delivery (§2.2's two mechanisms).
            let (observed_done, cpu_waited) =
                self.cfg.driver.completion.observe(invoke_at, run.end);
            cpu_wait += cpu_waited;
            device_time += run.end - invoke_at;
            driver_time += observed_done.saturating_sub(run.end) + self.cfg.driver.setup;
            t = observed_done.max(run.end);
            row += page_rows;
            pages += 1;
        }

        // Release the rank back to the host.
        let released = release_ownership(module, lease, t).expect("release");
        ownership += released - t;
        self.mc.advance_cursor(released);
        let bursts = device.stats().bursts_read.get();

        JafarSelectStats {
            end: released,
            matched,
            out_addr,
            device: device_time,
            driver: driver_time,
            cpu_wait,
            ownership,
            setup,
            pages,
            device_bursts_read: bursts,
        }
    }

    /// Runs the JAFAR pushdown select under the resilient driver: expiring
    /// leases with renewal, watchdog timeouts, bounded retry/backoff, a
    /// circuit breaker and a CPU-scan fallback. Under an empty fault plan
    /// this takes exactly as long as [`System::run_select_jafar`]; under
    /// any seeded plan the bitset still equals the software reference and
    /// the returned [`ResilientSelectStats::report`] says what it cost.
    ///
    /// The per-invocation costs and the page size come from the system
    /// config (mirroring the bare driver); the rest of the recovery policy
    /// from `resilience`.
    ///
    /// # Panics
    /// Panics if the system has no device.
    pub fn run_select_jafar_resilient(
        &mut self,
        col_addr: PhysAddr,
        rows: u64,
        lo: i64,
        hi: i64,
        start: Tick,
        resilience: ResilienceConfig,
    ) -> ResilientSelectStats {
        assert!(self.device.is_some(), "system has no JAFAR device");
        let out_addr = self.alloc.alloc_blocks(rows.div_ceil(8).max(64));
        let rcfg = ResilienceConfig {
            costs: self.cfg.driver,
            page_bytes: self.cfg.page_bytes,
            ..resilience
        };

        let t = start + self.cfg.query_overhead;
        // Quiesce host traffic before the first grant, as the bare path
        // does.
        self.mc.drain();
        self.mc.advance_cursor(t);
        let module = self.mc.module_mut();
        let device = self.device.as_mut().expect("checked above");
        let mut driver = ResilientDriver::new(rcfg);
        driver.set_tracer(self.tracer.clone());
        let run = driver.run_select(
            device,
            module,
            SelectRequest {
                col_addr,
                rows,
                lo,
                hi,
                out_addr,
            },
            t,
        );
        self.mc.advance_cursor(run.end);

        ResilientSelectStats {
            end: run.end,
            matched: run.matched,
            out_addr,
            pages: run.pages,
            cpu_wait: run.cpu_wait,
            device: run.device,
            driver: run.driver,
            recovery: *driver.stats(),
            faults: self.mc.module().fault_stats().copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use jafar_common::bitset::BitSet;
    use jafar_common::rng::SplitMix64;

    fn values(n: usize, max: i64, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_range_inclusive(0, max)).collect()
    }

    fn small_system() -> System {
        let mut cfg = SystemConfig::test_small();
        cfg.query_overhead = Tick::from_ns(500);
        cfg.page_bytes = 4096;
        System::new(cfg)
    }

    #[test]
    fn cpu_and_jafar_agree_functionally() {
        let mut sys = small_system();
        let vals = values(8000, 999, 42);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf = sys.run_select_jafar(col, 8000, 100, 399, cpu.end);
        assert_eq!(cpu.matches, jf.matched);
        // The bitset in DRAM equals the CPU's position list.
        let mut bytes = vec![0u8; 1000];
        sys.mc().module().data().read(jf.out_addr, &mut bytes);
        let bits = BitSet::from_bytes(&bytes, 8000);
        assert_eq!(bits.to_positions(), cpu.positions);
    }

    #[test]
    fn jafar_is_faster_on_the_select() {
        let mut sys = small_system();
        let vals = values(16_000, 999, 7);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 16_000, 0, 499, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf = sys.run_select_jafar(col, 16_000, 0, 499, cpu.end);
        let cpu_time = cpu.end;
        let jf_time = jf.end - cpu.end;
        assert!(
            jf_time < cpu_time,
            "JAFAR {jf_time:?} should beat CPU {cpu_time:?}"
        );
    }

    #[test]
    fn jafar_time_is_selectivity_independent() {
        let run = |hi: i64| {
            let mut sys = small_system();
            let vals = values(8000, 999, 3);
            let col = sys.write_column(&vals);
            let jf = sys.run_select_jafar(col, 8000, 0, hi, Tick::ZERO);
            jf.end
        };
        let none = run(-1);
        let all = run(999);
        let ratio = all.as_ps() as f64 / none.as_ps() as f64;
        assert!((0.98..1.02).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn cpu_time_grows_with_selectivity() {
        let run = |hi: i64| {
            let mut sys = small_system();
            let vals = values(8000, 999, 3);
            let col = sys.write_column(&vals);
            sys.run_select_cpu(col, 8000, 0, hi, ScanVariant::Branching, Tick::ZERO)
                .unwrap()
                .end
        };
        assert!(run(999) > run(-1));
    }

    #[test]
    fn device_traffic_stays_off_the_host_bus() {
        let mut sys = small_system();
        let vals = values(8000, 999, 9);
        let col = sys.write_column(&vals);
        sys.begin_measurement();
        let jf = sys.run_select_jafar(col, 8000, 0, 499, Tick::ZERO);
        // The device read 1000 bursts on the DIMM; the host controller saw
        // none of them.
        assert_eq!(jf.device_bursts_read, 1000);
        assert_eq!(sys.mc().counters().reads.get(), 0);
        // The CPU baseline moves every line across the bus (demand +
        // prefetch fills together cover the 1000-line column, plus the
        // output's write-allocate traffic).
        let mut sys2 = small_system();
        let col2 = sys2.write_column(&vals);
        sys2.begin_measurement();
        let cpu = sys2
            .run_select_cpu(col2, 8000, 0, 499, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        assert!(cpu.matches > 0);
        assert!(
            sys2.mc().counters().reads.get() >= 1000,
            "reads={}",
            sys2.mc().counters().reads.get()
        );
    }

    #[test]
    fn page_iteration_counts() {
        let mut sys = small_system(); // 4 KiB pages = 512 rows
        let vals = values(2048, 9, 1);
        let col = sys.write_column(&vals);
        let jf = sys.run_select_jafar(col, 2048, 0, 4, Tick::ZERO);
        assert_eq!(jf.pages, 4);
    }

    #[test]
    fn interrupt_completion_frees_the_cpu() {
        // §2.2: polling burns CPU; interrupts free it at some latency cost.
        let run = |completion| {
            let mut cfg = SystemConfig::test_small();
            cfg.query_overhead = Tick::from_ns(500);
            cfg.page_bytes = 4096;
            cfg.driver.completion = completion;
            let mut sys = System::new(cfg);
            let vals = values(8000, 999, 4);
            let col = sys.write_column(&vals);
            sys.run_select_jafar(col, 8000, 0, 499, Tick::ZERO)
        };
        let polled = run(jafar_core::CompletionMode::Polling {
            gap: Tick::from_ns(100),
        });
        let interrupted = run(jafar_core::CompletionMode::Interrupt {
            latency: Tick::from_ns(400),
        });
        assert_eq!(polled.matched, interrupted.matched);
        assert!(polled.cpu_wait > Tick::ZERO, "polling spins");
        assert_eq!(interrupted.cpu_wait, Tick::ZERO, "interrupts do not");
        // With a long interrupt latency per page, polling finishes sooner —
        // the CPU-utilization-vs-latency trade-off.
        assert!(interrupted.end > polled.end);
    }

    #[test]
    fn resilient_path_matches_bare_path_under_empty_plan() {
        // Identical systems, identical columns; the resilient driver with
        // no faults injected must cost exactly what the bare per-page loop
        // costs and touch none of its recovery machinery.
        let vals = values(8000, 999, 21);
        let mut bare = small_system();
        let col_b = bare.write_column(&vals);
        let plain = bare.run_select_jafar(col_b, 8000, 100, 399, Tick::ZERO);

        let mut sys = small_system();
        let col = sys.write_column(&vals);
        sys.inject_faults(FaultPlan::none(5));
        let resilient = sys.run_select_jafar_resilient(
            col,
            8000,
            100,
            399,
            Tick::ZERO,
            ResilienceConfig::default(),
        );
        assert_eq!(resilient.matched, plain.matched);
        assert_eq!(resilient.pages, plain.pages);
        assert_eq!(resilient.end, plain.end, "empty plan: timing parity");
        assert_eq!(resilient.recovery.recovery_total(), 0);
        assert_eq!(resilient.faults.expect("plan installed").total(), 0);
        let mut bytes = vec![0u8; 1000];
        sys.mc()
            .module()
            .data()
            .read(resilient.out_addr, &mut bytes);
        let mut bytes_b = vec![0u8; 1000];
        bare.mc().module().data().read(plain.out_addr, &mut bytes_b);
        assert_eq!(bytes, bytes_b, "bit-identical output");
    }

    #[test]
    fn resilient_path_survives_light_faults_and_reports_them() {
        let mut sys = small_system();
        let vals = values(8000, 999, 22);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        sys.inject_faults(FaultPlan::light(77));
        let jf = sys.run_select_jafar_resilient(
            col,
            8000,
            100,
            399,
            cpu.end,
            ResilienceConfig::default(),
        );
        assert_eq!(jf.matched, cpu.matches);
        let mut bytes = vec![0u8; 1000];
        sys.mc().module().data().read(jf.out_addr, &mut bytes);
        let bits = BitSet::from_bytes(&bytes, 8000);
        assert_eq!(bits.to_positions(), cpu.positions);
        let report = jf.report();
        assert!(report.contains("recovery:"));
        assert!(report.contains("faults injected:"));
        // The injector fired at least once under the light plan on 1000+
        // bursts; the combined scoreboard reflects it.
        assert!(jf.faults.expect("plan installed").total() > 0);
    }

    #[test]
    fn tracer_does_not_change_timing() {
        // The zero-cost-when-disabled contract's stronger half: *enabling*
        // the tracer must not bend the simulated timeline either. Identical
        // workloads, traced and untraced, end on the same tick.
        let vals = values(8000, 999, 13);
        let mut plain = small_system();
        let col_p = plain.write_column(&vals);
        let cpu_p = plain
            .run_select_cpu(col_p, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf_p = plain.run_select_jafar(col_p, 8000, 100, 399, cpu_p.end);

        let mut traced = small_system();
        traced.enable_tracing(1 << 14);
        let col_t = traced.write_column(&vals);
        let cpu_t = traced
            .run_select_cpu(col_t, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf_t = traced.run_select_jafar(col_t, 8000, 100, 399, cpu_t.end);

        assert_eq!(cpu_t.end, cpu_p.end, "tracing changed CPU-path timing");
        assert_eq!(jf_t.end, jf_p.end, "tracing changed device-path timing");
        assert_eq!(cpu_t.matches, cpu_p.matches);
        assert_eq!(jf_t.matched, jf_p.matched);
        // And the traced run actually recorded the runs it observed.
        assert!(!traced.trace_events().is_empty());
        assert!(plain.trace_events().is_empty());
    }

    #[test]
    fn metrics_snapshot_covers_the_stack() {
        let mut sys = small_system();
        sys.enable_tracing(1024);
        let vals = values(4096, 99, 5);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 4096, 0, 49, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        sys.run_select_jafar(col, 4096, 0, 49, cpu.end);
        let reg = sys.metrics();
        assert!(reg.get_counter("dram.read_bursts").unwrap() > 0);
        assert!(reg.get_counter("memctl.reads").unwrap() > 0);
        assert!(reg.get_counter("device.jobs").unwrap() > 0);
        assert!(reg.get_counter("trace.emitted").unwrap() > 0);
        // The rendered report lists every registered name.
        let report = reg.to_string();
        assert!(report.contains("dram.row_hits = "));
        assert!(report.contains("device.bursts_read = "));
    }

    #[test]
    fn trace_exports_render_the_run() {
        let mut sys = small_system();
        sys.enable_tracing(1 << 14);
        let vals = values(2048, 9, 8);
        let col = sys.write_column(&vals);
        sys.run_select_jafar(col, 2048, 0, 4, Tick::ZERO);
        let json = sys.chrome_trace().expect("tracing enabled");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"cat\":\"accel\""), "device stages traced");
        assert!(json.contains("\"cat\":\"ownership\""), "handoff traced");
        let timeline = sys.trace_timeline().expect("tracing enabled");
        assert!(timeline.lines().count() > 0);
        assert!(timeline.contains("accel"));
    }

    #[test]
    fn host_traffic_resumes_after_release() {
        let mut sys = small_system();
        let vals = values(1024, 9, 2);
        let col = sys.write_column(&vals);
        let jf = sys.run_select_jafar(col, 1024, 0, 4, Tick::ZERO);
        // CPU can scan the same column afterwards.
        let cpu = sys
            .run_select_cpu(col, 1024, 0, 4, ScanVariant::Branching, jf.end)
            .unwrap();
        assert_eq!(cpu.matches, jf.matched);
    }
}
