//! The assembled system and the two select paths of Figure 3.
//!
//! A [`System`] is one host (core + caches + memory controller + DDR3
//! module) with an optional JAFAR device on the DIMM. The two measured
//! paths:
//!
//! - [`System::run_select_cpu`]: the baseline — the scan kernel streams
//!   the column through the cache hierarchy, recording positions;
//! - [`System::run_select_jafar`]: the pushdown — the query manager
//!   drains the controller, grants rank ownership via MR3/MPR, then the
//!   driver invokes `select_jafar` once per (huge) page, polling the
//!   completion flag, and finally releases the rank.
//!
//! Both runs are preceded by the same fixed query-setup overhead
//! (planning, allocation, result finalisation) so the in-text "93% of
//! execution time is inside the accelerated region" accounting can be
//! reproduced.

use crate::alloc::SimAlloc;
use crate::backend::SimBackend;
use crate::config::SystemConfig;
use jafar_cache::{Hierarchy, StreamPrefetcher};
use jafar_common::bitset::BitSet;
use jafar_common::obs::{
    chrome_trace_json, render_timeline, Event, MetricsRegistry, RingTracer, SharedTracer,
};
use jafar_common::stats::Scoreboard;
use jafar_common::time::Tick;
use jafar_core::api::{select_jafar, SelectArgs};
use jafar_core::{
    grant_ownership, release_ownership, run_select_parallel, DriverStats, JafarDevice,
    ResilienceConfig, ResilientDriver, SelectRequest, ShardRun,
};
use jafar_cpu::{ScanEngine, ScanVariant};
use jafar_dram::{DramModule, FaultInjector, FaultPlan, FaultStats, PhysAddr};
use jafar_memctl::controller::MemoryController;
use jafar_memctl::IdleReport;
use jafar_serve::engine::{out_lanes, run_serve, ServeConfig, ServeEnv};
use jafar_serve::{SchedPolicy, ServeReport, SingleDimmPool, Workload};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Result of a CPU-only select run.
#[derive(Clone, Debug)]
pub struct CpuSelectStats {
    /// End of the run (including setup overhead).
    pub end: Tick,
    /// Matching rows.
    pub matches: u64,
    /// Matching positions (functional result).
    pub positions: Vec<u32>,
    /// Time inside the scan kernel (the "accelerated region" in the
    /// pushdown comparison).
    pub kernel: Tick,
    /// Fixed query-setup/driver time outside the kernel.
    pub driver: Tick,
    /// Kernel time lost to memory stalls.
    pub stall: Tick,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// 64-byte lines moved over the memory bus to the CPU.
    pub lines_from_dram: u64,
}

/// Result of a JAFAR pushdown select run.
#[derive(Clone, Debug)]
pub struct JafarSelectStats {
    /// End of the run (ownership released, results visible).
    pub end: Tick,
    /// Matching rows.
    pub matched: u64,
    /// Physical address of the output bitset.
    pub out_addr: PhysAddr,
    /// Time the device spent filtering/writing (the accelerated region).
    pub device: Tick,
    /// Host driver time: register programming + completion discovery.
    pub driver: Tick,
    /// CPU time burned spin-waiting (zero under interrupt completion —
    /// the §2.2 utilization trade-off).
    pub cpu_wait: Tick,
    /// Ownership handoff time (grant + release).
    pub ownership: Tick,
    /// Fixed query-setup time.
    pub setup: Tick,
    /// `select_jafar` invocations (pages).
    pub pages: u64,
    /// Bursts the device read on the DIMM (never crossing the bus).
    pub device_bursts_read: u64,
}

/// Result of a resilient JAFAR pushdown run under (possible) fault
/// injection: the [`JafarSelectStats`]-shaped timing plus the recovery and
/// fault counters the run report is built from.
#[derive(Clone, Debug)]
pub struct ResilientSelectStats {
    /// End of the run (ownership released, results visible).
    pub end: Tick,
    /// Matching rows.
    pub matched: u64,
    /// Physical address of the output bitset.
    pub out_addr: PhysAddr,
    /// `select_jafar` invocations plus CPU fallback pages.
    pub pages: u64,
    /// CPU time burned spin-waiting (polling and watchdog windows).
    pub cpu_wait: Tick,
    /// Time inside successful device page runs.
    pub device: Tick,
    /// Host driver time: setup, completion discovery, backoff waits.
    pub driver: Tick,
    /// What the recovery machinery did.
    pub recovery: DriverStats,
    /// What the injector did (absent when no plan was installed).
    pub faults: Option<FaultStats>,
}

impl ResilientSelectStats {
    /// The run report: one line of outcome, one of recovery counters, one
    /// of injected-fault counters — "what it cost" under the fault plan.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "resilient select: end={} matched={} pages={} cpu_wait={}",
            self.end, self.matched, self.pages, self.cpu_wait
        );
        let _ = writeln!(out, "  recovery: {}", self.recovery.scoreboard());
        match &self.faults {
            Some(f) => {
                let _ = writeln!(out, "  faults injected: {}", f.scoreboard());
            }
            None => {
                let _ = writeln!(out, "  faults injected: (no plan installed)");
            }
        }
        out
    }

    /// All counters (recovery + faults) as one scoreboard.
    pub fn scoreboard(&self) -> Scoreboard {
        let mut board = self.recovery.scoreboard();
        if let Some(f) = &self.faults {
            board.merge(&f.scoreboard());
        }
        board
    }
}

/// One shard of a rank-partitioned column: a contiguous run of rows
/// living entirely on one rank, so one device can filter it while its
/// siblings work on other ranks.
#[derive(Clone, Copy, Debug)]
pub struct ColumnShard {
    /// The rank the shard's data (and its output bitset) live on.
    pub rank: u32,
    /// 64-byte-aligned base of the shard's packed `i64` rows.
    pub addr: PhysAddr,
    /// Rows in this shard.
    pub rows: u64,
    /// Index of the shard's first row within the whole column. Always a
    /// multiple of the rows-per-DRAM-row (and hence of 8), so the merged
    /// bitset can be assembled byte-at-a-time.
    pub row_offset: u64,
}

/// A column striped across K ranks on DRAM-row-aligned boundaries.
#[derive(Clone, Debug)]
pub struct PartitionedColumn {
    /// The shards, in row order; `shards[i]` lives on rank `i`.
    pub shards: Vec<ColumnShard>,
    /// Total rows across all shards.
    pub rows: u64,
}

/// Result of a rank-parallel JAFAR pushdown run.
#[derive(Clone, Debug)]
pub struct ParallelSelectStats {
    /// When the slowest shard finished (ownership released everywhere).
    pub end: Tick,
    /// Matching rows across all shards.
    pub matched: u64,
    /// The merged selection vector over the whole column.
    pub selection: BitSet,
    /// Per-shard timings, in shard order.
    pub shards: Vec<ShardRun>,
    /// Per-shard recovery counters, in shard order.
    pub recovery: Vec<DriverStats>,
    /// What the injector did (absent when no plan was installed).
    pub faults: Option<FaultStats>,
}

/// Result of a [`System::serve`] run: the engine's per-query report plus
/// the machinery counters the report alone cannot carry.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// Per-query records and latency/throughput aggregates.
    pub report: ServeReport,
    /// Per-rank recovery counters of the persistent drivers, in rank
    /// order — under a rank-scoped fault plan the sick rank's ladder
    /// activity shows up here.
    pub recovery: Vec<DriverStats>,
    /// What the injector did (absent when no plan was installed).
    pub faults: Option<FaultStats>,
}

/// One simulated host system.
pub struct System {
    cfg: SystemConfig,
    mc: MemoryController,
    hierarchy: Hierarchy,
    prefetcher: Option<StreamPrefetcher>,
    inflight: HashMap<u64, Tick>,
    /// One device per NDP rank (empty when the config has no device).
    devices: Vec<JafarDevice>,
    /// Per-rank NDP arenas: `arenas[r]` allocates within rank `r` of the
    /// pinned, device-consumable region (every rank but the last).
    arenas: Vec<SimAlloc>,
    /// Allocator over the last rank (CPU-private scratch).
    pub scratch: SimAlloc,
    tracer: SharedTracer,
    trace_ring: Option<Rc<RefCell<RingTracer>>>,
}

impl System {
    /// Builds a system from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        let module = DramModule::new(cfg.dram_geometry, cfg.dram_timing, cfg.mapping);
        let rank_bytes = cfg.dram_geometry.rank_bytes();
        let capacity = cfg.dram_geometry.capacity_bytes();
        // Every rank but the last is an NDP arena with its own device slot;
        // the last rank stays CPU-private so host traffic always has
        // somewhere to go while devices own their ranks.
        let ndp_ranks = (cfg.dram_geometry.ranks as usize).saturating_sub(1).max(1);
        let arenas = (0..ndp_ranks)
            .map(|r| SimAlloc::new(PhysAddr(r as u64 * rank_bytes), rank_bytes))
            .collect();
        let devices = match cfg.device {
            Some(d) => (0..ndp_ranks).map(|_| JafarDevice::new(d)).collect(),
            None => Vec::new(),
        };
        System {
            mc: MemoryController::new(module, cfg.controller),
            hierarchy: Hierarchy::new(cfg.hierarchy),
            prefetcher: cfg.prefetcher.map(|(n, d)| StreamPrefetcher::new(n, d)),
            inflight: HashMap::new(),
            devices,
            arenas,
            scratch: SimAlloc::new(
                PhysAddr(ndp_ranks as u64 * rank_bytes),
                capacity - ndp_ranks as u64 * rank_bytes,
            ),
            cfg,
            tracer: SharedTracer::disabled(),
            trace_ring: None,
        }
    }

    /// Turns on cycle-stamped event tracing across every instrumented
    /// component (DRAM module, memory controller, JAFAR device, resilient
    /// driver), backed by a bounded ring holding the `capacity` most
    /// recent events. Purely observational: enabling tracing never changes
    /// a simulated tick count (asserted by `tracer_does_not_change_timing`).
    pub fn enable_tracing(&mut self, capacity: usize) {
        let (tracer, ring) = SharedTracer::ring(capacity);
        self.mc.set_tracer(tracer.clone());
        for device in &mut self.devices {
            device.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
        self.trace_ring = Some(ring);
    }

    /// Snapshot of the recorded events, oldest first. Empty when tracing
    /// was never enabled.
    pub fn trace_events(&self) -> Vec<Event> {
        self.trace_ring
            .as_ref()
            .map(|r| r.borrow().snapshot())
            .unwrap_or_default()
    }

    /// The recorded events as Chrome `trace_event` JSON (load the string
    /// at `chrome://tracing` or in Perfetto). `None` when tracing was
    /// never enabled. Same seed, same run → byte-identical output.
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace_ring
            .as_ref()
            .map(|r| chrome_trace_json(&r.borrow().snapshot()))
    }

    /// The recorded events as a human-readable timeline, one line per
    /// event. `None` when tracing was never enabled.
    pub fn trace_timeline(&self) -> Option<String> {
        self.trace_ring
            .as_ref()
            .map(|r| render_timeline(&r.borrow().snapshot()))
    }

    /// Snapshots every counter in the stack — DRAM module, memory
    /// controller, device, fault injector, and the trace ring itself —
    /// into one ordered [`MetricsRegistry`] for unified run reports.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let dram = self.mc.module().stats();
        reg.counter("dram.row_hits", dram.row_hits.get());
        reg.counter("dram.row_misses", dram.row_misses.get());
        reg.counter("dram.row_conflicts", dram.row_conflicts.get());
        reg.counter("dram.read_bursts", dram.read_bursts.get());
        reg.counter("dram.write_bursts", dram.write_bursts.get());
        reg.counter("dram.refreshes", dram.refreshes.get());
        reg.counter("dram.mode_sets", dram.mode_sets.get());
        reg.counter("dram.ownership_rejections", dram.ownership_rejections.get());
        let mc = self.mc.counters();
        reg.counter("memctl.reads", mc.reads.get());
        reg.counter("memctl.writes", mc.writes.get());
        reg.counter("memctl.rejected", mc.rejected.get());
        reg.counter("memctl.requeued", mc.requeued.get());
        if !self.devices.is_empty() {
            // One logical "device" line summed across the per-rank devices.
            let (mut jobs, mut words, mut reads, mut writes) = (0u64, 0u64, 0u64, 0u64);
            for device in &self.devices {
                let d = device.stats();
                jobs += d.jobs.get();
                words += d.words.get();
                reads += d.bursts_read.get();
                writes += d.bursts_written.get();
            }
            reg.counter("device.jobs", jobs);
            reg.counter("device.words", words);
            reg.counter("device.bursts_read", reads);
            reg.counter("device.bursts_written", writes);
        }
        if let Some(f) = self.mc.module().fault_stats() {
            reg.counter("faults.flips_injected", f.flips_injected.get());
            reg.counter("faults.ecc_corrected", f.ecc_corrected.get());
            reg.counter("faults.ecc_uncorrectable", f.ecc_uncorrectable.get());
            reg.counter("faults.stalls", f.stalls.get());
            reg.counter("faults.drops", f.drops.get());
            reg.counter("faults.mrs_glitches", f.mrs_glitches.get());
            reg.counter("faults.refresh_storms", f.refresh_storms.get());
        }
        if let Some(ring) = self.trace_ring.as_ref() {
            let ring = ring.borrow();
            reg.counter("trace.emitted", ring.emitted());
            reg.counter("trace.dropped", ring.dropped());
        }
        reg
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory controller (counters, idle reports).
    pub fn mc(&self) -> &MemoryController {
        &self.mc
    }

    /// Mutable controller access (experiment plumbing).
    pub fn mc_mut(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// The rank-0 JAFAR device, if configured.
    pub fn device(&self) -> Option<&JafarDevice> {
        self.devices.first()
    }

    /// All per-rank devices (empty when the config has no device).
    pub fn devices(&self) -> &[JafarDevice] {
        &self.devices
    }

    /// The rank-0 NDP arena (the region [`System::write_column`] pins
    /// into).
    pub fn alloc(&mut self) -> &mut SimAlloc {
        &mut self.arenas[0]
    }

    /// Allocates a column in the pinned (rank-0) region and writes its
    /// values functionally. Returns the base address.
    pub fn write_column(&mut self, values: &[i64]) -> PhysAddr {
        let addr = self.arenas[0].alloc_blocks(values.len() as u64 * 8);
        let data = self.mc.module_mut().data_mut();
        for (i, v) in values.iter().enumerate() {
            data.write_i64(PhysAddr(addr.0 + i as u64 * 8), *v);
        }
        addr
    }

    /// Stripes a column across (up to) `k` NDP ranks on DRAM-row-aligned
    /// boundaries and writes the shards functionally: shard `i` lives in
    /// rank `i`'s arena. Row alignment keeps every shard's first row on a
    /// byte boundary of the merged bitset, so results concatenate without
    /// bit shifting. Columns smaller than `k` aligned chunks produce fewer
    /// shards.
    ///
    /// # Panics
    /// Panics if `values` is empty, `k` is zero, or `k` exceeds the number
    /// of NDP ranks.
    pub fn write_column_partitioned(&mut self, values: &[i64], k: usize) -> PartitionedColumn {
        assert!(!values.is_empty(), "cannot partition an empty column");
        assert!(k >= 1, "need at least one shard");
        assert!(
            k <= self.arenas.len(),
            "{k} shards but only {} NDP rank(s)",
            self.arenas.len()
        );
        let rows = values.len() as u64;
        let rows_per_dram_row = self.cfg.dram_geometry.row_bytes as u64 / 8;
        let chunk = rows.div_ceil(k as u64).div_ceil(rows_per_dram_row) * rows_per_dram_row;
        let mut shards = Vec::new();
        let mut offset = 0u64;
        while offset < rows {
            let i = shards.len();
            let len = chunk.min(rows - offset);
            let addr = self.arenas[i].alloc_blocks(len * 8);
            let data = self.mc.module_mut().data_mut();
            for (j, v) in values[offset as usize..(offset + len) as usize]
                .iter()
                .enumerate()
            {
                data.write_i64(PhysAddr(addr.0 + j as u64 * 8), *v);
            }
            shards.push(ColumnShard {
                rank: i as u32,
                addr,
                rows: len,
                row_offset: offset,
            });
            offset += len;
        }
        PartitionedColumn { shards, rows }
    }

    /// A CPU memory backend for independent streaming access (scans): the
    /// out-of-order window hides cache-hit latency.
    pub fn backend(&mut self) -> SimBackend<'_> {
        SimBackend::new(
            &mut self.mc,
            &mut self.hierarchy,
            self.prefetcher.as_mut(),
            &mut self.inflight,
            self.cfg.cpu_clock,
        )
        .streaming()
    }

    /// A CPU memory backend for dependent access chains (hash probes,
    /// gathers): every hit pays its full cache-traversal latency.
    pub fn backend_dependent(&mut self) -> SimBackend<'_> {
        SimBackend::new(
            &mut self.mc,
            &mut self.hierarchy,
            self.prefetcher.as_mut(),
            &mut self.inflight,
            self.cfg.cpu_clock,
        )
    }

    /// Installs a seeded fault plan on the DRAM module. Subsequent runs —
    /// device or host — see its bit flips, stalls, glitches and storms.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.mc
            .module_mut()
            .set_fault_injector(Some(FaultInjector::new(plan)));
    }

    /// Removes any installed fault injector, restoring fault-free
    /// operation for subsequent runs.
    pub fn clear_faults(&mut self) {
        self.mc.module_mut().set_fault_injector(None);
    }

    /// Counters of what the installed injector actually did, if any.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.mc.module().fault_stats()
    }

    /// Resets memory-controller accounting (between measured phases).
    pub fn begin_measurement(&mut self) {
        self.mc.reset_accounting();
    }

    /// Finalises controller accounting into the Figure-4 idle report over
    /// `[0, span)`.
    pub fn idle_report(&self, span: Tick) -> IdleReport {
        self.mc.finalize(span)
    }

    /// Runs the CPU-only select of `rows` packed `i64`s at `col_addr`,
    /// with the inclusive range `[lo, hi]`, writing the position list to
    /// scratch memory.
    ///
    /// # Errors
    /// [`jafar_cpu::MemoryFault`] if the column (or the scratch output)
    /// extends beyond simulated DRAM capacity — a placement error surfaced
    /// as a typed fault rather than a backend panic.
    pub fn run_select_cpu(
        &mut self,
        col_addr: PhysAddr,
        rows: u64,
        lo: i64,
        hi: i64,
        variant: ScanVariant,
        start: Tick,
    ) -> Result<CpuSelectStats, jafar_cpu::MemoryFault> {
        let setup = self.cfg.query_overhead;
        let out_addr = self.scratch.alloc_blocks(rows.max(1) * 4);
        let engine = ScanEngine::new(self.cfg.cpu_clock, self.cfg.kernel);
        let spec = jafar_cpu::engine::ScanSpec {
            col_addr: col_addr.0,
            rows,
            lo,
            hi,
            out_addr: out_addr.0,
            variant,
        };
        let kernel_start = start + setup;
        let mut backend = self.backend();
        let result = engine.run(&mut backend, spec, kernel_start);
        let lines = backend.demand_fetches;
        // Flush outstanding writebacks/RFOs (timing accounted in MC) even
        // when the scan faulted partway through.
        self.mc.drain();
        let result = result?;
        Ok(CpuSelectStats {
            end: result.end,
            matches: result.matches,
            positions: result.positions,
            kernel: result.end - kernel_start,
            driver: setup,
            stall: result.stall,
            mispredicts: result.mispredicts,
            lines_from_dram: lines,
        })
    }

    /// Runs the JAFAR pushdown select: ownership handoff, per-page
    /// `select_jafar` invocations with completion polling, release.
    ///
    /// # Panics
    /// Panics if the system has no device or a page fails (placement bugs
    /// are programming errors in experiments).
    pub fn run_select_jafar(
        &mut self,
        col_addr: PhysAddr,
        rows: u64,
        lo: i64,
        hi: i64,
        start: Tick,
    ) -> JafarSelectStats {
        assert!(!self.devices.is_empty(), "system has no JAFAR device");
        let setup = self.cfg.query_overhead;
        let page_bytes = self.cfg.page_bytes;
        let out_addr = self.arenas[0].alloc_blocks(rows.div_ceil(8).max(64));
        let rank = self.mc.module().decoder().decode(col_addr).rank;

        let mut t = start + setup;
        // Quiesce host traffic, then hand the rank to the device.
        self.mc.drain();
        self.mc.advance_cursor(t);
        let module = self.mc.module_mut();
        let lease = grant_ownership(module, rank, t).expect("rank quiesced");
        let owned_at = lease.acquired_at;
        let mut ownership = owned_at - t;
        t = owned_at;

        let device = self.devices.first_mut().expect("checked above");
        let rows_per_page = page_bytes / 8;
        let mut pages = 0u64;
        let mut device_time = Tick::ZERO;
        let mut driver_time = Tick::ZERO;
        let mut cpu_wait = Tick::ZERO;
        let mut matched = 0u64;
        let mut row = 0u64;
        while row < rows {
            let page_rows = rows_per_page.min(rows - row);
            let invoke_at = t + self.cfg.driver.setup;
            let outcome = select_jafar(
                device,
                module,
                SelectArgs {
                    col_data: PhysAddr(col_addr.0 + row * 8),
                    range_low: lo,
                    range_high: hi,
                    out_buf: PhysAddr(out_addr.0 + row / 8),
                    num_input_rows: page_rows,
                },
                invoke_at,
            );
            assert_eq!(outcome.errno, 0, "select_jafar failed: {}", outcome.errno);
            let run = outcome.run.expect("success carries a run");
            matched += outcome.num_output_rows;
            // Completion discovery: the next poll edge, or interrupt
            // delivery (§2.2's two mechanisms).
            let (observed_done, cpu_waited) =
                self.cfg.driver.completion.observe(invoke_at, run.end);
            cpu_wait += cpu_waited;
            device_time += run.end - invoke_at;
            driver_time += observed_done.saturating_sub(run.end) + self.cfg.driver.setup;
            t = observed_done.max(run.end);
            row += page_rows;
            pages += 1;
        }

        // Release the rank back to the host.
        let released = release_ownership(module, lease, t).expect("release");
        ownership += released - t;
        self.mc.advance_cursor(released);
        let bursts = device.stats().bursts_read.get();

        JafarSelectStats {
            end: released,
            matched,
            out_addr,
            device: device_time,
            driver: driver_time,
            cpu_wait,
            ownership,
            setup,
            pages,
            device_bursts_read: bursts,
        }
    }

    /// Runs the JAFAR pushdown select under the resilient driver: expiring
    /// leases with renewal, watchdog timeouts, bounded retry/backoff, a
    /// circuit breaker and a CPU-scan fallback. Under an empty fault plan
    /// this takes exactly as long as [`System::run_select_jafar`]; under
    /// any seeded plan the bitset still equals the software reference and
    /// the returned [`ResilientSelectStats::report`] says what it cost.
    ///
    /// The per-invocation costs and the page size come from the system
    /// config (mirroring the bare driver); the rest of the recovery policy
    /// from `resilience`.
    ///
    /// # Panics
    /// Panics if the system has no device.
    pub fn run_select_jafar_resilient(
        &mut self,
        col_addr: PhysAddr,
        rows: u64,
        lo: i64,
        hi: i64,
        start: Tick,
        resilience: ResilienceConfig,
    ) -> ResilientSelectStats {
        assert!(!self.devices.is_empty(), "system has no JAFAR device");
        let out_addr = self.arenas[0].alloc_blocks(rows.div_ceil(8).max(64));
        let rcfg = ResilienceConfig {
            costs: self.cfg.driver,
            page_bytes: self.cfg.page_bytes,
            ..resilience
        };

        let t = start + self.cfg.query_overhead;
        // Quiesce host traffic before the first grant, as the bare path
        // does.
        self.mc.drain();
        self.mc.advance_cursor(t);
        let module = self.mc.module_mut();
        let device = self.devices.first_mut().expect("checked above");
        let mut driver = ResilientDriver::new(rcfg);
        driver.set_tracer(self.tracer.clone());
        let run = driver.run_select(
            device,
            module,
            SelectRequest {
                col_addr,
                rows,
                lo,
                hi,
                out_addr,
            },
            t,
        );
        self.mc.advance_cursor(run.end);

        ResilientSelectStats {
            end: run.end,
            matched: run.matched,
            out_addr,
            pages: run.pages,
            cpu_wait: run.cpu_wait,
            device: run.device,
            driver: run.driver,
            recovery: *driver.stats(),
            faults: self.mc.module().fault_stats().copied(),
        }
    }

    /// Runs the rank-parallel JAFAR pushdown select over a partitioned
    /// column: K independent leases, K devices filtering concurrently on
    /// their own ranks, per-shard resilient drivers (a faulty rank falls
    /// back to the CPU scan on its own timeline without stalling its
    /// siblings), and the per-rank bitsets merged into one selection
    /// vector. With a single shard this is the resilient single-device
    /// path.
    ///
    /// # Panics
    /// Panics if the column has no shards or more shards than the system
    /// has devices.
    pub fn run_select_jafar_parallel(
        &mut self,
        col: &PartitionedColumn,
        lo: i64,
        hi: i64,
        start: Tick,
        resilience: ResilienceConfig,
    ) -> ParallelSelectStats {
        let k = col.shards.len();
        assert!(k >= 1, "partitioned column has no shards");
        assert!(
            k <= self.devices.len(),
            "{k} shards but only {} device(s)",
            self.devices.len()
        );
        let rcfg = ResilienceConfig {
            costs: self.cfg.driver,
            page_bytes: self.cfg.page_bytes,
            ..resilience
        };
        // Each shard's output bitset lives in its own rank's arena — the
        // device requires its output on the rank it owns.
        let reqs: Vec<SelectRequest> = col
            .shards
            .iter()
            .map(|s| SelectRequest {
                col_addr: s.addr,
                rows: s.rows,
                lo,
                hi,
                out_addr: self.arenas[s.rank as usize].alloc_blocks(s.rows.div_ceil(8).max(64)),
            })
            .collect();

        let t = start + self.cfg.query_overhead;
        // Quiesce host traffic before the grants, as the single-device
        // paths do.
        self.mc.drain();
        self.mc.advance_cursor(t);
        let mut drivers: Vec<ResilientDriver> = (0..k)
            .map(|_| {
                let mut d = ResilientDriver::new(rcfg);
                d.set_tracer(self.tracer.clone());
                d
            })
            .collect();
        let run = run_select_parallel(
            &mut drivers,
            &mut self.devices[..k],
            self.mc.module_mut(),
            &reqs,
            t,
            &self.tracer,
        );
        self.mc.advance_cursor(run.end);

        // Merge the per-rank bitsets into one selection vector. Row-aligned
        // striping puts every shard's first row on a byte boundary, so this
        // is a straight byte copy; `from_bytes` masks the final shard's
        // padding bits.
        let mut bytes = vec![0u8; col.rows.div_ceil(8) as usize];
        for (s, req) in col.shards.iter().zip(&reqs) {
            debug_assert_eq!(s.row_offset % 8, 0, "striping must be byte-aligned");
            let nbytes = s.rows.div_ceil(8) as usize;
            let at = (s.row_offset / 8) as usize;
            self.mc
                .module()
                .data()
                .read(req.out_addr, &mut bytes[at..at + nbytes]);
        }
        let selection = BitSet::from_bytes(&bytes, col.rows as usize);

        ParallelSelectStats {
            end: run.end,
            matched: run.matched,
            selection,
            shards: run.shards,
            recovery: drivers.iter().map(|d| *d.stats()).collect(),
            faults: self.mc.module().fault_stats().copied(),
        }
    }

    /// Serves a stream of select, scalar-aggregate and projection
    /// queries over `values` through the `jafar-serve` engine: the
    /// column is replicated into every NDP
    /// rank's arena (so any query can shard onto any free rank), one
    /// *persistent* resilient driver is built per rank — its circuit-
    /// breaker state spans queries, which is what lets the rank-affinity
    /// policy steer load away from a sick rank — and the workload runs
    /// through admission control, the scheduling policy and the SLO
    /// degradation ladder. See [`jafar_serve::engine`] for the queue
    /// model and the determinism argument.
    ///
    /// Unlike the single-query paths, no per-query
    /// [`SystemConfig::query_overhead`] is charged: a serving system
    /// amortizes planning/setup across the stream, and the degraded CPU
    /// rung's fixed cost is modelled by [`ServeConfig::cpu_fixed`]
    /// instead. Driver costs and page size still come from this system's
    /// config; the rest of the recovery policy from `cfg.resilience`.
    ///
    /// # Panics
    /// Panics if the config has no JAFAR device, `values` is empty, or a
    /// rank arena cannot hold a replica plus its bitset and projection
    /// output buffers.
    pub fn serve(
        &mut self,
        values: &[i64],
        workload: &Workload,
        policy: SchedPolicy,
        cfg: &ServeConfig,
    ) -> ServeRun {
        self.serve_with_keys(values, &[], workload, policy, cfg)
    }

    /// [`System::serve`] with a key column alongside the value column,
    /// for workloads that carry [`jafar_serve::QueryOp::GroupBy`] queries. `keys`
    /// must be row-aligned with `values` (or empty when no query groups);
    /// a per-rank staging arena is carved for the partitioned group-by
    /// scatter.
    pub fn serve_with_keys(
        &mut self,
        values: &[i64],
        keys: &[i64],
        workload: &Workload,
        policy: SchedPolicy,
        cfg: &ServeConfig,
    ) -> ServeRun {
        assert!(
            !self.devices.is_empty(),
            "serving requires a JAFAR device (SystemConfig::device)"
        );
        assert!(!values.is_empty(), "cannot serve an empty column");
        let rows = values.len() as u64;
        let nranks = self.devices.len();
        let mut replicas = Vec::with_capacity(nranks);
        let mut outs = Vec::with_capacity(nranks);
        let mut proj_outs = Vec::with_capacity(nranks);
        let mut stage_outs = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let col = self.arenas[r].alloc_blocks(rows * 8);
            for (i, &v) in values.iter().enumerate() {
                self.mc
                    .module_mut()
                    .data_mut()
                    .write_i64(PhysAddr(col.0 + i as u64 * 8), v);
            }
            replicas.push(col);
            // One bitset lane per fuse slot — or per semi-join key range,
            // whichever is wider: the engine addresses lane `l` at
            // `out + l * stride` (see engine::lane_stride), so size the
            // arena slice for the full lane budget. fuse_window=1 with no
            // semi-joins degenerates to the historical single-lane size.
            let stride = rows.div_ceil(8).next_multiple_of(64);
            outs.push(self.arenas[r].alloc_blocks((stride * out_lanes(cfg, workload)).max(64)));
            // Packed projection output: worst case every row qualifies.
            proj_outs.push(self.arenas[r].alloc_blocks(rows * 8));
            // Group-by staging: worst case every row lands on this rank,
            // each group padded to a 64-byte kernel boundary.
            stage_outs.push(self.arenas[r].alloc_blocks(rows * 8 + 64));
        }
        let rcfg = ResilienceConfig {
            costs: self.cfg.driver,
            page_bytes: self.cfg.page_bytes,
            ..cfg.resilience
        };
        let mut drivers: Vec<ResilientDriver> = (0..nranks)
            .map(|_| {
                let mut d = ResilientDriver::new(rcfg);
                d.set_tracer(self.tracer.clone());
                d
            })
            .collect();
        // Quiesce host traffic before the stream starts, as the
        // single-query paths do before their grants.
        self.mc.drain();
        self.mc.advance_cursor(cfg.start);
        let pool = SingleDimmPool::new(nranks);
        let report = run_serve(
            ServeEnv {
                modules: vec![self.mc.module_mut()],
                pool: &pool,
                devices: &mut self.devices,
                drivers: &mut drivers,
                replicas: &replicas,
                outs: &outs,
                proj_outs: &proj_outs,
                values,
                keys,
                stage_outs: &stage_outs,
                tracer: &self.tracer,
            },
            workload,
            policy,
            cfg,
        );
        self.mc.advance_cursor(cfg.start + report.makespan);
        ServeRun {
            report,
            recovery: drivers.iter().map(|d| *d.stats()).collect(),
            faults: self.mc.module().fault_stats().copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use jafar_common::bitset::BitSet;
    use jafar_common::rng::SplitMix64;

    fn values(n: usize, max: i64, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_range_inclusive(0, max)).collect()
    }

    fn small_system() -> System {
        let mut cfg = SystemConfig::test_small();
        cfg.query_overhead = Tick::from_ns(500);
        cfg.page_bytes = 4096;
        System::new(cfg)
    }

    #[test]
    fn cpu_and_jafar_agree_functionally() {
        let mut sys = small_system();
        let vals = values(8000, 999, 42);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf = sys.run_select_jafar(col, 8000, 100, 399, cpu.end);
        assert_eq!(cpu.matches, jf.matched);
        // The bitset in DRAM equals the CPU's position list.
        let mut bytes = vec![0u8; 1000];
        sys.mc().module().data().read(jf.out_addr, &mut bytes);
        let bits = BitSet::from_bytes(&bytes, 8000);
        assert_eq!(bits.to_positions(), cpu.positions);
    }

    #[test]
    fn jafar_is_faster_on_the_select() {
        let mut sys = small_system();
        let vals = values(16_000, 999, 7);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 16_000, 0, 499, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf = sys.run_select_jafar(col, 16_000, 0, 499, cpu.end);
        let cpu_time = cpu.end;
        let jf_time = jf.end - cpu.end;
        assert!(
            jf_time < cpu_time,
            "JAFAR {jf_time:?} should beat CPU {cpu_time:?}"
        );
    }

    #[test]
    fn jafar_time_is_selectivity_independent() {
        let run = |hi: i64| {
            let mut sys = small_system();
            let vals = values(8000, 999, 3);
            let col = sys.write_column(&vals);
            let jf = sys.run_select_jafar(col, 8000, 0, hi, Tick::ZERO);
            jf.end
        };
        let none = run(-1);
        let all = run(999);
        let ratio = all.as_ps() as f64 / none.as_ps() as f64;
        assert!((0.98..1.02).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn cpu_time_grows_with_selectivity() {
        let run = |hi: i64| {
            let mut sys = small_system();
            let vals = values(8000, 999, 3);
            let col = sys.write_column(&vals);
            sys.run_select_cpu(col, 8000, 0, hi, ScanVariant::Branching, Tick::ZERO)
                .unwrap()
                .end
        };
        assert!(run(999) > run(-1));
    }

    #[test]
    fn device_traffic_stays_off_the_host_bus() {
        let mut sys = small_system();
        let vals = values(8000, 999, 9);
        let col = sys.write_column(&vals);
        sys.begin_measurement();
        let jf = sys.run_select_jafar(col, 8000, 0, 499, Tick::ZERO);
        // The device read 1000 bursts on the DIMM; the host controller saw
        // none of them.
        assert_eq!(jf.device_bursts_read, 1000);
        assert_eq!(sys.mc().counters().reads.get(), 0);
        // The CPU baseline moves every line across the bus (demand +
        // prefetch fills together cover the 1000-line column, plus the
        // output's write-allocate traffic).
        let mut sys2 = small_system();
        let col2 = sys2.write_column(&vals);
        sys2.begin_measurement();
        let cpu = sys2
            .run_select_cpu(col2, 8000, 0, 499, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        assert!(cpu.matches > 0);
        assert!(
            sys2.mc().counters().reads.get() >= 1000,
            "reads={}",
            sys2.mc().counters().reads.get()
        );
    }

    #[test]
    fn page_iteration_counts() {
        let mut sys = small_system(); // 4 KiB pages = 512 rows
        let vals = values(2048, 9, 1);
        let col = sys.write_column(&vals);
        let jf = sys.run_select_jafar(col, 2048, 0, 4, Tick::ZERO);
        assert_eq!(jf.pages, 4);
    }

    #[test]
    fn interrupt_completion_frees_the_cpu() {
        // §2.2: polling burns CPU; interrupts free it at some latency cost.
        let run = |completion| {
            let mut cfg = SystemConfig::test_small();
            cfg.query_overhead = Tick::from_ns(500);
            cfg.page_bytes = 4096;
            cfg.driver.completion = completion;
            let mut sys = System::new(cfg);
            let vals = values(8000, 999, 4);
            let col = sys.write_column(&vals);
            sys.run_select_jafar(col, 8000, 0, 499, Tick::ZERO)
        };
        let polled = run(jafar_core::CompletionMode::Polling {
            gap: Tick::from_ns(100),
        });
        let interrupted = run(jafar_core::CompletionMode::Interrupt {
            latency: Tick::from_ns(400),
        });
        assert_eq!(polled.matched, interrupted.matched);
        assert!(polled.cpu_wait > Tick::ZERO, "polling spins");
        assert_eq!(interrupted.cpu_wait, Tick::ZERO, "interrupts do not");
        // With a long interrupt latency per page, polling finishes sooner —
        // the CPU-utilization-vs-latency trade-off.
        assert!(interrupted.end > polled.end);
    }

    #[test]
    fn resilient_path_matches_bare_path_under_empty_plan() {
        // Identical systems, identical columns; the resilient driver with
        // no faults injected must cost exactly what the bare per-page loop
        // costs and touch none of its recovery machinery.
        let vals = values(8000, 999, 21);
        let mut bare = small_system();
        let col_b = bare.write_column(&vals);
        let plain = bare.run_select_jafar(col_b, 8000, 100, 399, Tick::ZERO);

        let mut sys = small_system();
        let col = sys.write_column(&vals);
        sys.inject_faults(FaultPlan::none(5));
        let resilient = sys.run_select_jafar_resilient(
            col,
            8000,
            100,
            399,
            Tick::ZERO,
            ResilienceConfig::default(),
        );
        assert_eq!(resilient.matched, plain.matched);
        assert_eq!(resilient.pages, plain.pages);
        assert_eq!(resilient.end, plain.end, "empty plan: timing parity");
        assert_eq!(resilient.recovery.recovery_total(), 0);
        assert_eq!(resilient.faults.expect("plan installed").total(), 0);
        let mut bytes = vec![0u8; 1000];
        sys.mc()
            .module()
            .data()
            .read(resilient.out_addr, &mut bytes);
        let mut bytes_b = vec![0u8; 1000];
        bare.mc().module().data().read(plain.out_addr, &mut bytes_b);
        assert_eq!(bytes, bytes_b, "bit-identical output");
    }

    #[test]
    fn resilient_path_survives_light_faults_and_reports_them() {
        let mut sys = small_system();
        let vals = values(8000, 999, 22);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        sys.inject_faults(FaultPlan::light(77));
        let jf = sys.run_select_jafar_resilient(
            col,
            8000,
            100,
            399,
            cpu.end,
            ResilienceConfig::default(),
        );
        assert_eq!(jf.matched, cpu.matches);
        let mut bytes = vec![0u8; 1000];
        sys.mc().module().data().read(jf.out_addr, &mut bytes);
        let bits = BitSet::from_bytes(&bytes, 8000);
        assert_eq!(bits.to_positions(), cpu.positions);
        let report = jf.report();
        assert!(report.contains("recovery:"));
        assert!(report.contains("faults injected:"));
        // The injector fired at least once under the light plan on 1000+
        // bursts; the combined scoreboard reflects it.
        assert!(jf.faults.expect("plan installed").total() > 0);
    }

    #[test]
    fn tracer_does_not_change_timing() {
        // The zero-cost-when-disabled contract's stronger half: *enabling*
        // the tracer must not bend the simulated timeline either. Identical
        // workloads, traced and untraced, end on the same tick.
        let vals = values(8000, 999, 13);
        let mut plain = small_system();
        let col_p = plain.write_column(&vals);
        let cpu_p = plain
            .run_select_cpu(col_p, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf_p = plain.run_select_jafar(col_p, 8000, 100, 399, cpu_p.end);

        let mut traced = small_system();
        traced.enable_tracing(1 << 14);
        let col_t = traced.write_column(&vals);
        let cpu_t = traced
            .run_select_cpu(col_t, 8000, 100, 399, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        let jf_t = traced.run_select_jafar(col_t, 8000, 100, 399, cpu_t.end);

        assert_eq!(cpu_t.end, cpu_p.end, "tracing changed CPU-path timing");
        assert_eq!(jf_t.end, jf_p.end, "tracing changed device-path timing");
        assert_eq!(cpu_t.matches, cpu_p.matches);
        assert_eq!(jf_t.matched, jf_p.matched);
        // And the traced run actually recorded the runs it observed.
        assert!(!traced.trace_events().is_empty());
        assert!(plain.trace_events().is_empty());
    }

    #[test]
    fn metrics_snapshot_covers_the_stack() {
        let mut sys = small_system();
        sys.enable_tracing(1024);
        let vals = values(4096, 99, 5);
        let col = sys.write_column(&vals);
        let cpu = sys
            .run_select_cpu(col, 4096, 0, 49, ScanVariant::Branching, Tick::ZERO)
            .unwrap();
        sys.run_select_jafar(col, 4096, 0, 49, cpu.end);
        let reg = sys.metrics();
        assert!(reg.get_counter("dram.read_bursts").unwrap() > 0);
        assert!(reg.get_counter("memctl.reads").unwrap() > 0);
        assert!(reg.get_counter("device.jobs").unwrap() > 0);
        assert!(reg.get_counter("trace.emitted").unwrap() > 0);
        // The rendered report lists every registered name.
        let report = reg.to_string();
        assert!(report.contains("dram.row_hits = "));
        assert!(report.contains("device.bursts_read = "));
    }

    #[test]
    fn trace_exports_render_the_run() {
        let mut sys = small_system();
        sys.enable_tracing(1 << 14);
        let vals = values(2048, 9, 8);
        let col = sys.write_column(&vals);
        sys.run_select_jafar(col, 2048, 0, 4, Tick::ZERO);
        let json = sys.chrome_trace().expect("tracing enabled");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"cat\":\"accel\""), "device stages traced");
        assert!(json.contains("\"cat\":\"ownership\""), "handoff traced");
        let timeline = sys.trace_timeline().expect("tracing enabled");
        assert!(timeline.lines().count() > 0);
        assert!(timeline.contains("accel"));
    }

    /// A `test_small` variant with more ranks: `ranks - 1` NDP arenas and
    /// devices, the last rank as scratch.
    fn multi_rank_system(ranks: u32) -> System {
        let mut cfg = SystemConfig::test_small();
        cfg.dram_geometry = jafar_dram::DramGeometry {
            ranks,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 1024,
        };
        System::new(cfg)
    }

    fn reference_positions(vals: &[i64], lo: i64, hi: i64) -> Vec<u32> {
        vals.iter()
            .enumerate()
            .filter(|(_, &v)| (lo..=hi).contains(&v))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn partitioning_is_row_aligned_and_rank_local() {
        let mut sys = multi_rank_system(4);
        let vals = values(1000, 9, 17); // not divisible by 8
        let col = sys.write_column_partitioned(&vals, 3);
        assert_eq!(col.rows, 1000);
        assert_eq!(col.shards.iter().map(|s| s.rows).sum::<u64>(), 1000);
        let rows_per_dram_row = 1024 / 8;
        let decoder = *sys.mc().module().decoder();
        for (i, s) in col.shards.iter().enumerate() {
            assert_eq!(s.rank, i as u32);
            assert_eq!(s.row_offset % rows_per_dram_row, 0, "row-aligned stripe");
            assert_eq!(
                decoder.decode(s.addr).rank,
                s.rank,
                "shard data in its rank"
            );
        }
        // A single-shard partition degenerates to the plain layout.
        let one = sys.write_column_partitioned(&vals, 1);
        assert_eq!(one.shards.len(), 1);
        assert_eq!(one.shards[0].rows, 1000);
    }

    #[test]
    fn parallel_select_matches_cpu_and_single_device_and_is_faster() {
        let vals = values(24_000, 999, 31);
        let expect = reference_positions(&vals, 100, 399);

        // Single-device run for the timing and bit-identity baseline.
        let mut solo = multi_rank_system(4);
        let col1 = solo.write_column(&vals);
        let jf = solo.run_select_jafar(col1, 24_000, 100, 399, Tick::ZERO);
        let mut solo_bytes = vec![0u8; 3000];
        solo.mc().module().data().read(jf.out_addr, &mut solo_bytes);
        let solo_bits = BitSet::from_bytes(&solo_bytes, 24_000);
        assert_eq!(solo_bits.to_positions(), expect);

        // Three-rank parallel run over the same values.
        let mut sys = multi_rank_system(4);
        let col = sys.write_column_partitioned(&vals, 3);
        assert_eq!(col.shards.len(), 3);
        let par =
            sys.run_select_jafar_parallel(&col, 100, 399, Tick::ZERO, ResilienceConfig::default());
        assert_eq!(par.matched as usize, expect.len());
        assert_eq!(par.selection.to_positions(), expect, "merged == reference");
        assert_eq!(
            par.selection.to_bytes(),
            solo_bits.to_bytes(),
            "merged == single-device bitset"
        );
        // No shard needed recovery, and the sharded run beats the single
        // device on the same column.
        for r in &par.recovery {
            assert_eq!(r.recovery_total(), 0);
        }
        assert!(
            par.end < jf.end,
            "3-rank parallel ({:?}) should beat one device ({:?})",
            par.end,
            jf.end
        );
    }

    #[test]
    fn parallel_single_rank_fault_degrades_only_that_shard() {
        let vals = values(12_000, 999, 33);
        let expect = reference_positions(&vals, 100, 399);
        let mut sys = multi_rank_system(4);
        let col = sys.write_column_partitioned(&vals, 3);
        // Rank 1's reads all stall past the watchdog; ranks 0 and 2 are
        // untouched.
        sys.inject_faults(FaultPlan {
            stall_burst_range: Some((0, u64::MAX)),
            rank_scope: Some(1),
            ..FaultPlan::none(3)
        });
        let par = sys.run_select_jafar_parallel(
            &col,
            100,
            399,
            Tick::ZERO,
            ResilienceConfig {
                max_retries: 1,
                breaker_threshold: 1,
                ..ResilienceConfig::default()
            },
        );
        assert_eq!(par.selection.to_positions(), expect, "still bit-identical");
        assert!(
            par.recovery[1].pages_cpu.get() >= 1,
            "faulty rank fell back"
        );
        assert_eq!(par.recovery[0].recovery_total(), 0, "sibling untouched");
        assert_eq!(par.recovery[2].recovery_total(), 0, "sibling untouched");
        // The faulted shard is the long pole.
        assert_eq!(par.end, par.shards.iter().map(|s| s.run.end).max().unwrap());
        assert!(par.shards[1].run.end > par.shards[0].run.end);
    }

    #[test]
    fn parallel_trace_carries_shard_events() {
        let mut sys = multi_rank_system(4);
        sys.enable_tracing(1 << 14);
        let vals = values(4096, 9, 6);
        let col = sys.write_column_partitioned(&vals, 2);
        sys.run_select_jafar_parallel(&col, 0, 4, Tick::ZERO, ResilienceConfig::default());
        let timeline = sys.trace_timeline().expect("tracing enabled");
        assert!(timeline.contains("shard-step"));
        assert!(timeline.contains("shard-done"));
    }

    #[test]
    fn host_traffic_resumes_after_release() {
        let mut sys = small_system();
        let vals = values(1024, 9, 2);
        let col = sys.write_column(&vals);
        let jf = sys.run_select_jafar(col, 1024, 0, 4, Tick::ZERO);
        // CPU can scan the same column afterwards.
        let cpu = sys
            .run_select_cpu(col, 1024, 0, 4, ScanVariant::Branching, jf.end)
            .unwrap();
        assert_eq!(cpu.matches, jf.matched);
    }

    #[test]
    fn serve_completes_a_stream_bit_identically() {
        use jafar_serve::PredicateMix;

        let mut sys = multi_rank_system(4);
        sys.enable_tracing(1 << 14);
        let vals = values(4096, 999, 31);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 250,
        };
        let workload = Workload::poisson(mix, 5, Tick::from_us(1), 41);
        let run = sys.serve(&vals, &workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(run.report.completed(), 5);
        assert_eq!(run.report.shed(), 0);
        assert_eq!(run.recovery.len(), 3, "one persistent driver per NDP rank");
        assert!(run.recovery.iter().all(|d| d.recovery_total() == 0));
        for rec in &run.report.records {
            let expect = reference_positions(&vals, rec.lo, rec.hi);
            let got = BitSet::from_bytes(&rec.bitset, vals.len()).to_positions();
            assert_eq!(got, expect, "query {} selection vector", rec.id);
            assert_eq!(rec.matched as usize, expect.len());
        }
        // The serve-layer lifecycle shows up in the unified trace.
        let timeline = sys.trace_timeline().expect("tracing enabled");
        assert!(timeline.contains("query-admitted"));
        assert!(timeline.contains("query-done"));
    }

    #[test]
    fn serve_survives_a_rank_scoped_fault() {
        use jafar_serve::PredicateMix;

        let mut sys = multi_rank_system(4);
        let vals = values(4096, 999, 33);
        sys.inject_faults(FaultPlan {
            stall_burst_range: Some((0, u64::MAX)),
            rank_scope: Some(0),
            ..FaultPlan::none(5)
        });
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 100,
        };
        let workload = Workload::poisson(mix, 4, Tick::from_us(2), 43);
        let cfg = ServeConfig {
            resilience: ResilienceConfig {
                max_retries: 1,
                breaker_threshold: 1,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let run = sys.serve(&vals, &workload, SchedPolicy::RankAffinity, &cfg);
        assert_eq!(run.report.completed(), 4, "every query survives the fault");
        for rec in &run.report.records {
            let expect = reference_positions(&vals, rec.lo, rec.hi);
            let got = BitSet::from_bytes(&rec.bitset, vals.len()).to_positions();
            assert_eq!(got, expect, "query {} still bit-identical", rec.id);
        }
        assert!(
            run.faults.expect("plan installed").stalls.get() >= 1
                || run.recovery[0].recovery_total() == 0,
            "either the sick rank was exercised or affinity kept work off it"
        );
        assert_eq!(run.recovery[1].recovery_total(), 0, "healthy rank clean");
        assert_eq!(run.recovery[2].recovery_total(), 0, "healthy rank clean");
    }

    #[test]
    fn serve_mixes_operators_and_degrades_aggregates_identically_under_fault() {
        use jafar_serve::{AggFn, Arrivals, ExecMode, QueryOp, QuerySpec};

        let mut sys = multi_rank_system(4);
        let vals = values(4096, 999, 35);
        sys.inject_faults(FaultPlan {
            stall_burst_range: Some((0, u64::MAX)),
            rank_scope: Some(0),
            ..FaultPlan::none(7)
        });
        let q = |lo: i64, hi: i64, op: QueryOp, slo: Option<Tick>| QuerySpec { lo, hi, op, slo };
        let specs = vec![
            q(100, 599, QueryOp::Select, None),
            // Arrives while q0 holds every rank; its SLO is hopeless, so
            // it must degrade to the CPU rung — and still return exactly
            // the scalar a device run would have.
            q(
                100,
                599,
                QueryOp::SelectAgg(AggFn::Sum),
                Some(Tick::from_ns(1)),
            ),
            q(200, 799, QueryOp::SelectCount, None),
            q(300, 899, QueryOp::Project { k: 2 }, None),
            q(400, 999, QueryOp::SelectAgg(AggFn::Max), None),
        ];
        let n = specs.len();
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open(vec![Tick::ZERO; n]),
            slo: None,
        };
        let cfg = ServeConfig {
            resilience: ResilienceConfig {
                max_retries: 1,
                breaker_threshold: 1,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let run = sys.serve(&vals, &workload, SchedPolicy::RankAffinity, &cfg);
        assert_eq!(run.report.completed(), n);
        let matching = |lo: i64, hi: i64| -> Vec<i64> {
            vals.iter()
                .copied()
                .filter(|v| (lo..=hi).contains(v))
                .collect()
        };
        let sum = matching(100, 599)
            .iter()
            .fold(0i64, |a, &v| a.wrapping_add(v));
        let q1 = &run.report.records[1];
        assert_eq!(q1.mode, ExecMode::Cpu, "hopeless SLO degrades");
        assert_eq!(q1.agg, Some(sum), "degraded scalar == functional reference");

        // The same Sum served solo on a healthy machine: same scalar.
        let mut healthy = multi_rank_system(4);
        let solo = healthy.serve(
            &vals,
            &Workload {
                specs: vec![q(100, 599, QueryOp::SelectAgg(AggFn::Sum), None)],
                arrivals: Arrivals::Open(vec![Tick::ZERO]),
                slo: None,
            },
            SchedPolicy::Fifo,
            &cfg,
        );
        assert!(matches!(
            solo.report.records[0].mode,
            ExecMode::Device { .. }
        ));
        assert_eq!(solo.report.records[0].agg, q1.agg, "device == degraded");

        for rec in &run.report.records {
            let m = matching(rec.lo, rec.hi);
            assert_eq!(rec.matched as usize, m.len(), "query {}", rec.id);
            match rec.op {
                QueryOp::Select | QueryOp::Project { .. } => {
                    let got = BitSet::from_bytes(&rec.bitset, vals.len()).to_positions();
                    assert_eq!(got, reference_positions(&vals, rec.lo, rec.hi));
                    if matches!(rec.op, QueryOp::Project { .. }) {
                        assert_eq!(rec.projected, m, "query {} packed projection", rec.id);
                    }
                }
                QueryOp::SelectCount => assert_eq!(rec.agg, Some(m.len() as i64)),
                QueryOp::SelectAgg(AggFn::Max) => assert_eq!(rec.agg, m.iter().copied().max()),
                QueryOp::SelectAgg(_) => assert_eq!(rec.agg, Some(sum)),
                QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
                    unreachable!("this workload serves no joins or group-bys")
                }
            }
        }
        assert!(run.report.cpu_queries() >= 1);
        let breakdown = run.report.op_breakdown();
        assert!(breakdown.len() >= 4, "one breakdown row per operator kind");
    }

    #[test]
    fn serve_state_does_not_leak_between_runs() {
        use jafar_serve::PredicateMix;

        // Run 1 under a permanent rank outage trips breakers, quarantines
        // a rank and parks/migrates shards. After clearing the faults,
        // two consecutive clean runs on the same System must be pristine
        // and functionally identical: no breaker, health or served-count
        // state leaks from one serve call into the next.
        let mut sys = multi_rank_system(4);
        let vals = values(4096, 999, 37);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 200,
        };
        let workload = Workload::poisson(mix, 5, Tick::from_us(2), 47);
        sys.inject_faults(FaultPlan::none(9).with_outage(0, Tick::ZERO, Tick::MAX));
        let chaotic = sys.serve(&vals, &workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert!(
            chaotic.report.availability.disturbed(),
            "the outage engaged the failure machinery"
        );
        assert_eq!(
            chaotic.report.completed() + chaotic.report.shed(),
            5,
            "no query lost under the outage"
        );

        sys.clear_faults();
        let clean1 = sys.serve(&vals, &workload, SchedPolicy::Fifo, &ServeConfig::default());
        let clean2 = sys.serve(&vals, &workload, SchedPolicy::Fifo, &ServeConfig::default());
        for run in [&clean1, &clean2] {
            assert!(
                !run.report.availability.disturbed(),
                "clean run inherited failure state: {:?}",
                run.report.availability
            );
            assert_eq!(run.report.completed(), 5);
            assert!(
                run.recovery.iter().all(|d| d.recovery_total() == 0),
                "clean run inherited driver recovery state"
            );
        }
        for (a, b) in clean1.report.records.iter().zip(&clean2.report.records) {
            assert_eq!(a.bitset, b.bitset);
            assert_eq!(a.matched, b.matched);
            assert_eq!(a.mode, b.mode);
        }
        for rec in &clean1.report.records {
            let got = BitSet::from_bytes(&rec.bitset, vals.len()).to_positions();
            assert_eq!(got, reference_positions(&vals, rec.lo, rec.hi));
        }
    }
}
