//! Simulated physical-memory placement.
//!
//! §4 ("Memory Management"): "prior to invoking JAFAR, the operating
//! system must first pin the memory pages JAFAR will access to specific
//! DIMMs" — in this single-DIMM model, to a specific **rank**, since
//! ownership is granted per rank. The allocator is a simple bump allocator
//! that can be confined to a rank's contiguous range (under the
//! rank-contiguous mapping) to model pinned, JAFAR-consumable placement.

use jafar_dram::PhysAddr;

/// A bump allocator over a physical address range.
#[derive(Clone, Debug)]
pub struct SimAlloc {
    cursor: u64,
    limit: u64,
}

impl SimAlloc {
    /// Covers `[start, start + len)`.
    pub fn new(start: PhysAddr, len: u64) -> Self {
        SimAlloc {
            cursor: start.0,
            limit: start.0 + len,
        }
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> u64 {
        self.limit - self.cursor
    }

    /// Allocates `bytes` aligned to `align` (a power of two).
    ///
    /// # Panics
    /// Panics when out of simulated memory — placement bugs should fail
    /// loudly in experiments.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> PhysAddr {
        let base = jafar_common::size::align_up(self.cursor, align);
        assert!(
            base + bytes <= self.limit,
            "simulated memory exhausted: want {bytes} at {base:#x}, limit {:#x}",
            self.limit
        );
        self.cursor = base + bytes;
        PhysAddr(base)
    }

    /// Allocates a 64-byte-aligned region (burst granularity, what both
    /// the device and the cache hierarchy want).
    pub fn alloc_blocks(&mut self, bytes: u64) -> PhysAddr {
        self.alloc(bytes, 64)
    }

    /// Resets the allocator to its start (scratch arenas between queries).
    pub fn reset_to(&mut self, addr: PhysAddr) {
        assert!(addr.0 <= self.limit);
        self.cursor = addr.0;
    }

    /// Current cursor.
    pub fn cursor(&self) -> PhysAddr {
        PhysAddr(self.cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_align() {
        let mut a = SimAlloc::new(PhysAddr(100), 1000);
        let x = a.alloc(10, 64);
        assert_eq!(x, PhysAddr(128));
        let y = a.alloc_blocks(64);
        assert_eq!(y, PhysAddr(192));
        assert_eq!(a.remaining(), 1100 - 256);
    }

    #[test]
    fn reset() {
        let mut a = SimAlloc::new(PhysAddr(0), 1 << 20);
        let mark = a.cursor();
        a.alloc_blocks(4096);
        a.reset_to(mark);
        assert_eq!(a.cursor(), mark);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = SimAlloc::new(PhysAddr(0), 128);
        a.alloc(129, 1);
    }
}
