//! Operator-trace replay — the Figure-4 measurement path.
//!
//! A TPC-H query executed by `jafar-columnstore` leaves behind an operator
//! trace. The replayer runs that trace against the simulated memory
//! system: scans execute the *actual* scan kernel over the *actual* column
//! bytes placed in simulated DRAM (full fidelity, including branch
//! behaviour and prefetching); positional, hash, aggregation, sort and
//! materialisation operators generate their characteristic access
//! patterns (strided gathers, scattered hash-table traffic, sequential
//! result writes) with per-tuple compute costs in the MonetDB
//! bulk-processing ballpark ([`ReplayCosts`]). The memory controller's
//! busy/idle accounting across the whole replay is exactly what §3.3
//! samples from the Xeon's performance counters.

use crate::system::System;
use jafar_columnstore::{OpTrace, TraceEvent};
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_cpu::engine::ScanSpec;
use jafar_cpu::{MemoryBackend, ScanEngine, ScanVariant};
use jafar_dram::PhysAddr;
use jafar_tpch::TpchDb;
use std::collections::HashMap;

/// Per-tuple compute costs (CPU cycles) for the non-scan operators.
#[derive(Clone, Copy, Debug)]
pub struct ReplayCosts {
    /// Per examined position in a positional refinement scan.
    pub scan_at: f64,
    /// Per gathered value.
    pub gather: f64,
    /// Per hash-table insert.
    pub hash_build: f64,
    /// Per hash-table probe.
    pub hash_probe: f64,
    /// Per emitted join pair.
    pub probe_match: f64,
    /// Per aggregated input row (plus `agg_per_agg` per aggregate).
    pub agg_base: f64,
    /// Per (row, aggregate) update.
    pub agg_per_agg: f64,
    /// Per row·log2(rows) comparison in sorts.
    pub sort: f64,
    /// Per materialised value.
    pub materialize: f64,
}

impl Default for ReplayCosts {
    fn default() -> Self {
        ReplayCosts {
            scan_at: 6.0,
            gather: 4.0,
            hash_build: 16.0,
            hash_probe: 12.0,
            probe_match: 4.0,
            agg_base: 6.0,
            agg_per_agg: 3.0,
            sort: 4.0,
            materialize: 2.0,
        }
    }
}

impl ReplayCosts {
    /// Scales every per-tuple cost by `factor`.
    ///
    /// The Figure-4 host is a 4-socket, 8-channel Xeon running MonetDB's
    /// interpreted bulk operators: each memory controller sees a fraction
    /// of the traffic, separated by far more per-tuple host work than the
    /// tight compiled kernels modelled here. The reproduction models one
    /// controller and one core, so the harness applies a single documented
    /// *host load factor* to all compute costs to stand in for that
    /// dilution — the only tuned constant in the Figure-4 pipeline (see
    /// EXPERIMENTS.md).
    pub fn scaled(self, factor: f64) -> ReplayCosts {
        ReplayCosts {
            scan_at: self.scan_at * factor,
            gather: self.gather * factor,
            hash_build: self.hash_build * factor,
            hash_probe: self.hash_probe * factor,
            probe_match: self.probe_match * factor,
            agg_base: self.agg_base * factor,
            agg_per_agg: self.agg_per_agg * factor,
            sort: self.sort * factor,
            materialize: self.materialize * factor,
        }
    }
}

/// The placed database: where each column lives in simulated DRAM.
pub struct PlacedDb {
    columns: HashMap<(String, String), (PhysAddr, u64)>,
}

impl PlacedDb {
    /// Copies every column of `db` into the system's pinned region.
    pub fn place(system: &mut System, db: &TpchDb) -> PlacedDb {
        let mut columns = HashMap::new();
        for table in [&db.customer, &db.orders, &db.lineitem] {
            for col in table.columns() {
                let addr = system.write_column(col.data());
                columns.insert(
                    (table.name().to_owned(), col.name().to_owned()),
                    (addr, col.len() as u64),
                );
            }
        }
        PlacedDb { columns }
    }

    /// Looks up a column's placement.
    ///
    /// # Panics
    /// Panics if the column was never placed.
    pub fn get(&self, table: &str, column: &str) -> (PhysAddr, u64) {
        self.columns[&(table.to_owned(), column.to_owned())]
    }

    /// Number of placed columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if nothing was placed.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// The replayer.
pub struct QueryReplayer<'a> {
    system: &'a mut System,
    costs: ReplayCosts,
    scan_cost_factor: f64,
    rng: SplitMix64,
}

impl<'a> QueryReplayer<'a> {
    /// Builds a replayer over `system`.
    pub fn new(system: &'a mut System, costs: ReplayCosts) -> Self {
        QueryReplayer {
            system,
            costs,
            scan_cost_factor: 1.0,
            rng: SplitMix64::new(0xF164),
        }
    }

    /// Scales the full-scan kernel's per-row costs by `factor` (the same
    /// host load factor as [`ReplayCosts::scaled`], applied to the scan
    /// operators).
    pub fn with_scan_factor(mut self, factor: f64) -> Self {
        self.scan_cost_factor = factor;
        self
    }

    /// Replays `trace` starting at `start`; returns the completion tick.
    pub fn replay(&mut self, trace: &OpTrace, placed: &PlacedDb, start: Tick) -> Tick {
        let scratch_mark = self.system.scratch.cursor();
        let mut now = start;
        let mut last_build_region: Option<(PhysAddr, u64)> = None;
        for event in trace.events() {
            now = match event {
                TraceEvent::Scan {
                    table,
                    column,
                    rows,
                    bounds,
                    ..
                } => {
                    let (addr, placed_rows) = placed.get(table, column);
                    debug_assert_eq!(*rows, placed_rows);
                    let out = self.system.scratch.alloc_blocks((*rows).max(8) * 4);
                    let spec = ScanSpec {
                        col_addr: addr.0,
                        rows: *rows,
                        lo: bounds.0,
                        hi: bounds.1,
                        out_addr: out.0,
                        variant: ScanVariant::Branching,
                    };
                    let mut kernel = self.system.config().kernel;
                    kernel.base_cycles_per_row *= self.scan_cost_factor;
                    kernel.match_cycles *= self.scan_cost_factor;
                    kernel.mispredict_penalty *= self.scan_cost_factor;
                    let engine = ScanEngine::new(self.system.config().cpu_clock, kernel);
                    let mut backend = self.system.backend();
                    engine
                        .run(&mut backend, spec, now)
                        .expect("replayed scan stays within DRAM capacity")
                        .end
                }
                TraceEvent::ScanAt {
                    table,
                    column,
                    positions,
                    ..
                } => {
                    let (addr, rows) = placed.get(table, column);
                    self.strided_reads(addr, rows, *positions, self.costs.scan_at, now)
                }
                TraceEvent::Gather {
                    table,
                    column,
                    positions,
                } => {
                    let (addr, rows) = placed.get(table, column);
                    let t = self.strided_reads(addr, rows, *positions, self.costs.gather, now);
                    let out = self.system.scratch.alloc_blocks((*positions).max(8) * 8);
                    self.sequential_writes(out, positions * 8, 0.5, t)
                }
                TraceEvent::HashBuild { rows } => {
                    let region_bytes = ((*rows).max(16).next_power_of_two() * 2 * 16).min(64 << 20);
                    let region = self.system.scratch.alloc_blocks(region_bytes);
                    last_build_region = Some((region, region_bytes));
                    self.random_writes(region, region_bytes, *rows, self.costs.hash_build, now)
                }
                TraceEvent::HashProbe { rows, matches } => {
                    let (region, bytes) = last_build_region
                        .unwrap_or_else(|| (self.system.scratch.alloc_blocks(4096), 4096));
                    let t = self.random_reads(region, bytes, *rows, self.costs.hash_probe, now);
                    self.compute(*matches as f64 * self.costs.probe_match, t)
                }
                TraceEvent::Aggregate {
                    rows,
                    groups,
                    aggregates,
                } => {
                    let table_bytes = ((*groups).max(1) * 64).next_power_of_two();
                    let region = self.system.scratch.alloc_blocks(table_bytes);
                    let per_row = self.costs.agg_base + self.costs.agg_per_agg * *aggregates as f64;
                    self.random_writes(region, table_bytes, *rows, per_row, now)
                }
                TraceEvent::Sort { rows } => {
                    if *rows == 0 {
                        now
                    } else {
                        let bytes = rows * 8;
                        let region = self.system.scratch.alloc_blocks(bytes.max(64));
                        let log2 = (64 - rows.leading_zeros() as u64).max(1) as f64;
                        let t = self.compute(*rows as f64 * log2 * self.costs.sort, now);
                        let t = self.sequential_reads(region, bytes, 0.5, t);
                        self.sequential_writes(region, bytes, 0.5, t)
                    }
                }
                TraceEvent::Materialize { rows, columns } => {
                    let bytes = rows * columns * 8;
                    if bytes == 0 {
                        now
                    } else {
                        let region = self.system.scratch.alloc_blocks(bytes.max(64));
                        self.sequential_writes(region, bytes, self.costs.materialize, now)
                    }
                }
            };
        }
        self.system.mc_mut().drain();
        self.system.scratch.reset_to(scratch_mark);
        now
    }

    /// Advances time by `cycles` of compute.
    fn compute(&self, cycles: f64, now: Tick) -> Tick {
        let ps = cycles * self.system.config().cpu_clock.period().as_ps() as f64;
        now + Tick::from_ps(ps as u64)
    }

    /// Evenly strided positional reads over a column region: `count`
    /// accesses with `cycles` compute each.
    fn strided_reads(
        &mut self,
        base: PhysAddr,
        rows: u64,
        count: u64,
        cycles: f64,
        start: Tick,
    ) -> Tick {
        if count == 0 || rows == 0 {
            return start;
        }
        let stride = (rows / count).max(1);
        let period = self.system.config().cpu_clock.period().as_ps() as f64;
        let mut backend = self.system.backend_dependent();
        let mut now = start;
        let mut carry = 0.0f64;
        for i in 0..count {
            let row = (i * stride) % rows;
            let (ready, _) = backend
                .load_line(base.0 + row * 8, now)
                .expect("replayed access stays within DRAM capacity");
            now = now.max(ready);
            let adv = cycles * period + carry;
            carry = adv.fract();
            now += Tick::from_ps(adv as u64);
        }
        now
    }

    /// Sequential reads of `bytes` from `base` with `cycles` per value (8 B).
    fn sequential_reads(&mut self, base: PhysAddr, bytes: u64, cycles: f64, start: Tick) -> Tick {
        let period = self.system.config().cpu_clock.period().as_ps() as f64;
        let mut backend = self.system.backend();
        let mut now = start;
        let lines = bytes.div_ceil(64);
        for l in 0..lines {
            let (ready, _) = backend
                .load_line(base.0 + l * 64, now)
                .expect("replayed access stays within DRAM capacity");
            now = now.max(ready) + Tick::from_ps((8.0 * cycles * period) as u64);
        }
        now
    }

    /// Sequential writes of `bytes` to `base` with `cycles` per value (8 B).
    fn sequential_writes(&mut self, base: PhysAddr, bytes: u64, cycles: f64, start: Tick) -> Tick {
        let period = self.system.config().cpu_clock.period().as_ps() as f64;
        let mut backend = self.system.backend();
        let mut now = start;
        let payload = [0u8; 8];
        for off in (0..bytes).step_by(8) {
            backend
                .store(base.0 + off, &payload, now)
                .expect("replayed access stays within DRAM capacity");
            now += Tick::from_ps((cycles * period) as u64);
        }
        now
    }

    /// `count` random accesses within `[base, base+bytes)` with `cycles`
    /// compute each; writes if `write`.
    fn random_access(
        &mut self,
        base: PhysAddr,
        bytes: u64,
        count: u64,
        cycles: f64,
        start: Tick,
        write: bool,
    ) -> Tick {
        let period = self.system.config().cpu_clock.period().as_ps() as f64;
        let slots = (bytes / 8).max(1);
        let mut offsets: Vec<u64> = (0..count).map(|_| self.rng.next_below(slots) * 8).collect();
        let mut backend = self.system.backend_dependent();
        let mut now = start;
        let payload = [0u8; 8];
        for off in offsets.drain(..) {
            if write {
                // Hash update = read-modify-write; the read drives timing.
                let (ready, _) = backend
                    .load_line(base.0 + off, now)
                    .expect("replayed access stays within DRAM capacity");
                now = now.max(ready);
                backend
                    .store(base.0 + off, &payload, now)
                    .expect("replayed access stays within DRAM capacity");
            } else {
                let (ready, _) = backend
                    .load_line(base.0 + off, now)
                    .expect("replayed access stays within DRAM capacity");
                now = now.max(ready);
            }
            now += Tick::from_ps((cycles * period) as u64);
        }
        now
    }

    fn random_writes(
        &mut self,
        base: PhysAddr,
        bytes: u64,
        count: u64,
        cycles: f64,
        start: Tick,
    ) -> Tick {
        self.random_access(base, bytes, count, cycles, start, true)
    }

    fn random_reads(
        &mut self,
        base: PhysAddr,
        bytes: u64,
        count: u64,
        cycles: f64,
        start: Tick,
    ) -> Tick {
        self.random_access(base, bytes, count, cycles, start, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use jafar_columnstore::{ExecContext, Planner};
    use jafar_tpch::{queries, TpchConfig};

    fn tiny_db() -> TpchDb {
        TpchDb::generate(TpchConfig {
            sf: 0.00008, // ≈ a dozen customers; fits the tiny test DRAM
            seed: 11,
        })
    }

    #[test]
    fn placement_covers_all_columns() {
        let mut sys = System::new(SystemConfig::test_small());
        let db = tiny_db();
        let placed = PlacedDb::place(&mut sys, &db);
        assert_eq!(placed.len(), 4 + 5 + 8);
        let (addr, rows) = placed.get("lineitem", "l_shipdate");
        assert_eq!(rows, db.lineitem.rows() as u64);
        // Functional data round-trips.
        let got = sys.mc().module().data().read_i64(addr);
        assert_eq!(got, db.lineitem.column("l_shipdate").unwrap().get(0));
    }

    #[test]
    fn q6_replay_advances_time_and_touches_memory() {
        let mut sys = System::new(SystemConfig::test_small());
        let db = tiny_db();
        let placed = PlacedDb::place(&mut sys, &db);
        let mut cx = ExecContext::new(Planner::default());
        let revenue = queries::q6(&db, &mut cx);
        let _ = revenue;
        sys.begin_measurement();
        let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default());
        let end = replayer.replay(cx.trace(), &placed, Tick::ZERO);
        assert!(end > Tick::ZERO);
        let report = sys.idle_report(end);
        assert!(report.reads > 0, "the scan must reach DRAM");
    }

    #[test]
    fn all_five_queries_replay() {
        let mut sys = System::new(SystemConfig::test_small());
        let db = tiny_db();
        let placed = PlacedDb::place(&mut sys, &db);
        let mut end = Tick::ZERO;
        for q in queries::QueryId::ALL {
            let mut cx = ExecContext::new(Planner::default());
            match q {
                queries::QueryId::Q1 => {
                    queries::q1(&db, &mut cx);
                }
                queries::QueryId::Q3 => {
                    queries::q3(&db, &mut cx, 10);
                }
                queries::QueryId::Q6 => {
                    queries::q6(&db, &mut cx);
                }
                queries::QueryId::Q18 => {
                    queries::q18(&db, &mut cx, 100, 100);
                }
                queries::QueryId::Q22 => {
                    queries::q22(&db, &mut cx);
                }
            }
            let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default());
            let new_end = replayer.replay(cx.trace(), &placed, end);
            assert!(new_end > end, "{q:?} must consume time");
            end = new_end;
        }
    }

    #[test]
    fn scan_heavy_trace_has_shorter_idle_periods_than_compute_heavy() {
        // The Figure-4 mechanism: Q6-like scans keep the controller busy;
        // Q18-like hash/aggregate work leaves it idle between misses.
        let db = tiny_db();
        let run = |which: &str| {
            let mut sys = System::new(SystemConfig::test_small());
            let placed = PlacedDb::place(&mut sys, &db);
            let mut cx = ExecContext::new(Planner::default());
            match which {
                "q6" => {
                    queries::q6(&db, &mut cx);
                }
                _ => {
                    queries::q18(&db, &mut cx, 100, 100);
                }
            }
            sys.begin_measurement();
            let mut replayer = QueryReplayer::new(&mut sys, ReplayCosts::default());
            let end = replayer.replay(cx.trace(), &placed, Tick::ZERO);
            let report = sys.idle_report(end);
            report.mean_idle_period_estimate()
        };
        let q6_idle = run("q6");
        let q18_idle = run("q18");
        assert!(
            q18_idle > q6_idle,
            "q18 idle {q18_idle} vs q6 idle {q6_idle}"
        );
    }
}
