//! The CPU's view of memory: cache hierarchy + memory controller +
//! stream prefetcher, implementing [`jafar_cpu::MemoryBackend`].
//!
//! Demand loads walk the hierarchy; misses become controller transactions
//! and the returned completion tick is the line's availability. The stream
//! prefetcher observes demand lines and enqueues prefetch reads ahead of
//! the stream; prefetched lines are installed in the last-level cache with
//! their *data-ready* tick tracked in an in-flight map, so a hit on a line
//! whose fill is still in flight waits for the fill (no magic zero-latency
//! prefetching). Stores are functional write-through (the backing store is
//! the source of truth) plus write-allocate traffic; the store buffer
//! hides their latency from the core.

use jafar_cache::{Hierarchy, HitLevel, StreamPrefetcher};
use jafar_common::obs::EventKind;
use jafar_common::time::{ClockDomain, Tick};
use jafar_cpu::{MemoryBackend, MemoryFault};
use jafar_dram::PhysAddr;
use jafar_memctl::{EnqueueError, MemRequest, MemoryController, Origin};
use std::collections::HashMap;

/// The backend; borrows the system's components for the duration of one
/// kernel run.
pub struct SimBackend<'a> {
    mc: &'a mut MemoryController,
    hierarchy: &'a mut Hierarchy,
    prefetcher: Option<&'a mut StreamPrefetcher>,
    /// line base → data-ready tick for fills still in flight.
    inflight: &'a mut HashMap<u64, Tick>,
    cpu_clock: ClockDomain,
    /// Independent (streaming) loads: the out-of-order window hides cache
    /// traversal latency, so hits cost no critical-path time. Dependent
    /// loads (pointer chasing, hash probing) pay the full traversal.
    streaming: bool,
    /// Demand lines fetched from memory (for traffic accounting).
    pub demand_fetches: u64,
}

impl<'a> SimBackend<'a> {
    /// Assembles a backend over the given components. Loads default to
    /// *dependent* semantics (full cache-traversal latency); call
    /// [`SimBackend::streaming`] for independent streaming access.
    pub fn new(
        mc: &'a mut MemoryController,
        hierarchy: &'a mut Hierarchy,
        prefetcher: Option<&'a mut StreamPrefetcher>,
        inflight: &'a mut HashMap<u64, Tick>,
        cpu_clock: ClockDomain,
    ) -> Self {
        SimBackend {
            mc,
            hierarchy,
            prefetcher,
            inflight,
            cpu_clock,
            streaming: false,
            demand_fetches: 0,
        }
    }

    /// Marks the access pattern as independent streaming: the OoO window
    /// overlaps cache-hit latency with compute, so hits are free on the
    /// critical path (in-flight fills are still waited for).
    pub fn streaming(mut self) -> Self {
        self.streaming = true;
        self
    }

    fn enqueue_or_drain(&mut self, req: MemRequest) -> Result<jafar_memctl::ReqId, MemoryFault> {
        match self.mc.enqueue(req) {
            Ok(id) => Ok(id),
            Err(EnqueueError::QueueFull) => {
                // Drain in-flight transactions (their completion times are
                // already determined), recording prefetch arrivals.
                let completions = self.mc.drain();
                for c in completions {
                    if c.request.origin == Origin::Prefetch {
                        self.inflight.insert(c.request.addr.0, c.done);
                    }
                }
                Ok(self.mc.enqueue(req).expect("queue drained"))
            }
            Err(EnqueueError::OutOfRange) => {
                self.mc.tracer().emit(
                    req.arrival,
                    EventKind::ErrorSurfaced {
                        site: "sim-backend",
                        detail: "out-of-range",
                    },
                );
                Err(MemoryFault::OutOfRange { addr: req.addr.0 })
            }
        }
    }

    fn issue_prefetches(&mut self, line: u64, at: Tick) {
        let capacity = self.mc.module().geometry().capacity_bytes();
        let Some(pf) = self.prefetcher.as_deref_mut() else {
            return;
        };
        let candidates = pf.observe(line);
        for pf_line in candidates {
            if pf_line >= capacity || self.inflight.contains_key(&pf_line) {
                continue;
            }
            let req = MemRequest::read(PhysAddr(pf_line), at).with_origin(Origin::Prefetch);
            match self.mc.enqueue(req) {
                Ok(_) => {
                    // Install tags now; readiness is tracked when the
                    // completion drains. Reserve the slot so a racing
                    // demand waits for the real fill.
                    self.inflight.insert(pf_line, Tick::MAX);
                    for wb in self.hierarchy.install_prefetch(pf_line) {
                        let _ = self.mc.enqueue(MemRequest::writeback(PhysAddr(wb), at));
                    }
                }
                Err(_) => break, // queue pressure: stop prefetching
            }
        }
    }

    fn functional_line(&self, line: u64) -> [u8; 64] {
        self.mc.module().data().read_burst(PhysAddr(line))
    }
}

impl MemoryBackend for SimBackend<'_> {
    fn load_line(&mut self, addr: u64, at: Tick) -> Result<(Tick, [u8; 64]), MemoryFault> {
        let line = addr & !63;
        // Reject before touching the hierarchy: an out-of-range line must
        // not be installed as a tag (a later access would "hit" it and read
        // the backing store out of bounds).
        if line >= self.mc.module().geometry().capacity_bytes() {
            self.mc.tracer().emit(
                at,
                EventKind::ErrorSurfaced {
                    site: "sim-backend",
                    detail: "out-of-range",
                },
            );
            return Err(MemoryFault::OutOfRange { addr });
        }
        let outcome = self.hierarchy.access(line, false);
        for wb in &outcome.writebacks {
            let req = MemRequest::writeback(PhysAddr(*wb), at);
            self.enqueue_or_drain(req)?;
        }
        let traversal = if self.streaming {
            Tick::ZERO
        } else {
            self.cpu_clock.cycles_to_tick(outcome.latency)
        };
        // The prefetcher observes every demand access — hits on previously
        // prefetched lines keep the stream window running ahead.
        self.issue_prefetches(line, at);

        if outcome.level != HitLevel::Memory {
            let mut ready = at + traversal;
            // A prefetched line may still be in flight: wait for the fill.
            match self.inflight.get(&line) {
                Some(&t) if t != Tick::MAX => {
                    ready = ready.max(t);
                    self.inflight.remove(&line);
                }
                Some(_) => {
                    // Reserved but not yet drained: force scheduling.
                    let completions = self.mc.drain();
                    for c in completions {
                        if c.request.origin == Origin::Prefetch {
                            self.inflight.insert(c.request.addr.0, c.done);
                        }
                    }
                    if let Some(&t) = self.inflight.get(&line) {
                        ready = ready.max(t);
                        self.inflight.remove(&line);
                    }
                }
                None => {}
            }
            return Ok((ready, self.functional_line(line)));
        }

        // Full miss: fetch the demand line.
        self.demand_fetches += 1;
        let id = self.enqueue_or_drain(MemRequest::read(PhysAddr(line), at))?;
        let completions = self.mc.drain();
        let mut ready = at;
        for c in completions {
            if c.id == id {
                ready = c.done;
            } else if c.request.origin == Origin::Prefetch {
                self.inflight.insert(c.request.addr.0, c.done);
            }
        }
        Ok((ready + traversal, self.functional_line(line)))
    }

    fn store(&mut self, addr: u64, bytes: &[u8], at: Tick) -> Result<Tick, MemoryFault> {
        let line = addr & !63;
        if line >= self.mc.module().geometry().capacity_bytes() {
            self.mc.tracer().emit(
                at,
                EventKind::ErrorSurfaced {
                    site: "sim-backend",
                    detail: "out-of-range",
                },
            );
            return Err(MemoryFault::OutOfRange { addr });
        }
        // Functional write-through: the backing store stays authoritative.
        self.mc.module_mut().data_mut().write(PhysAddr(addr), bytes);
        let outcome = self.hierarchy.access(line, true);
        for wb in &outcome.writebacks {
            let req = MemRequest::writeback(PhysAddr(*wb), at);
            self.enqueue_or_drain(req)?;
        }
        if outcome.level == HitLevel::Memory {
            // Write-allocate: fetch-for-ownership traffic; the store
            // buffer hides its latency from the core.
            self.enqueue_or_drain(MemRequest::read(PhysAddr(line), at))?;
        }
        Ok(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jafar_cache::HierarchyConfig;
    use jafar_dram::{AddressMapping, DramGeometry, DramModule, DramTiming};
    use jafar_memctl::controller::ControllerConfig;

    fn parts() -> (MemoryController, Hierarchy, HashMap<u64, Tick>) {
        let module = DramModule::new(
            DramGeometry::tiny(),
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        (
            MemoryController::new(module, ControllerConfig::default()),
            Hierarchy::new(HierarchyConfig::gem5_like()),
            HashMap::new(),
        )
    }

    #[test]
    fn demand_miss_then_cache_hit() {
        let (mut mc, mut h, mut infl) = parts();
        mc.module_mut().data_mut().write_u64(PhysAddr(0), 0xBEEF);
        let clock = ClockDomain::from_ghz(1);
        let mut b = SimBackend::new(&mut mc, &mut h, None, &mut infl, clock);
        let (t1, data) = b.load_line(0, Tick::ZERO).unwrap();
        assert!(t1 >= Tick::from_ns(30), "full DRAM latency, got {t1}");
        assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 0xBEEF);
        let (t2, _) = b.load_line(8, t1).unwrap();
        assert_eq!(t2, t1 + clock.cycles_to_tick(2), "L1 hit");
        assert_eq!(b.demand_fetches, 1);
    }

    #[test]
    fn prefetcher_hides_stream_latency() {
        let run = |with_pf: bool| {
            let (mut mc, mut h, mut infl) = parts();
            let mut pf = StreamPrefetcher::new(8, 8);
            let clock = ClockDomain::from_ghz(1);
            let mut b = SimBackend::new(
                &mut mc,
                &mut h,
                with_pf.then_some(&mut pf),
                &mut infl,
                clock,
            );
            let mut now = Tick::ZERO;
            for i in 0..128u64 {
                let (ready, _) = b.load_line(i * 64, now).unwrap();
                now = ready.max(now) + Tick::from_ns(2); // 2 ns compute/line
            }
            now
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "prefetching must speed the stream: {with} vs {without}"
        );
    }

    #[test]
    fn prefetched_line_is_not_free_before_fill() {
        let (mut mc, mut h, mut infl) = parts();
        let mut pf = StreamPrefetcher::new(4, 8);
        let clock = ClockDomain::from_ghz(1);
        let mut b = SimBackend::new(&mut mc, &mut h, Some(&mut pf), &mut infl, clock);
        // Train the stream: lines 0, 1 (miss + confirm → prefetch 2..).
        let (t0, _) = b.load_line(0, Tick::ZERO).unwrap();
        let (t1, _) = b.load_line(64, t0).unwrap();
        // Immediately touch line 2: it is cached (installed) but its fill
        // completes later than an L1 hit would.
        let (t2, _) = b.load_line(128, t1).unwrap();
        assert!(t2 >= t1, "fill time respected");
        // After enough time, line 3 is a plain hit (prefetches install in
        // the last level, so it costs the L1+L2 traversal).
        let far = t2 + Tick::from_us(1);
        let (t3, _) = b.load_line(192, far).unwrap();
        assert!(t3 <= far + clock.cycles_to_tick(14), "t3={t3} far={far}");
    }

    #[test]
    fn store_generates_allocate_traffic() {
        let (mut mc, mut h, mut infl) = parts();
        let clock = ClockDomain::from_ghz(1);
        let mut b = SimBackend::new(&mut mc, &mut h, None, &mut infl, clock);
        let t = b.store(4096, &7u64.to_le_bytes(), Tick::ZERO).unwrap();
        assert_eq!(t, Tick::ZERO, "store buffer hides latency");
        // Functional value visible.
        assert_eq!(b.mc.module().data().read_u64(PhysAddr(4096)), 7);
        // The RFO read is queued.
        assert!(b.mc.pending() > 0);
        b.mc.drain();
        assert_eq!(b.mc.counters().reads.get(), 1);
    }

    #[test]
    fn access_beyond_capacity_is_typed_error_not_panic() {
        use jafar_common::obs::SharedTracer;
        let (mut mc, mut h, mut infl) = parts();
        let (tracer, ring) = SharedTracer::ring(16);
        mc.set_tracer(tracer);
        let capacity = mc.module().geometry().capacity_bytes();
        let clock = ClockDomain::from_ghz(1);
        let mut b = SimBackend::new(&mut mc, &mut h, None, &mut infl, clock);
        let err = b.load_line(capacity + 64, Tick::ZERO).unwrap_err();
        assert!(matches!(err, MemoryFault::OutOfRange { addr } if addr > capacity));
        let err = b.store(capacity, &[1u8], Tick::ZERO).unwrap_err();
        assert_eq!(err, MemoryFault::OutOfRange { addr: capacity });
        // Both faults left a trace of the surfaced error.
        let surfaced = ring
            .borrow()
            .events()
            .filter(|e| e.kind.name() == "error")
            .count();
        assert_eq!(surfaced, 2);
    }

    #[test]
    fn queue_pressure_drains_automatically() {
        let (mut mc, mut h, mut infl) = parts();
        let clock = ClockDomain::from_ghz(1);
        let mut b = SimBackend::new(&mut mc, &mut h, None, &mut infl, clock);
        // Far more stores than the write queue holds.
        for i in 0..200u64 {
            b.store(i * 64, &[1u8], Tick::ZERO).unwrap();
        }
        b.mc.drain();
        assert!(b.mc.counters().reads.get() >= 200, "RFOs all issued");
    }
}
