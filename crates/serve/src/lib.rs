//! # jafar-serve — deterministic multi-tenant query serving
//!
//! Every other entry point in the workspace runs exactly one query in
//! isolation; this crate is the serving layer on top — the leap the
//! ROADMAP's north star ("serves heavy traffic") requires and that
//! production NDP systems make from single-operator offload to request
//! serving. It is a discrete-event engine that accepts a *stream* of
//! select, scalar-aggregate and projection queries (the §4 operator
//! extensions) and multiplexes them over the shared JAFAR ranks:
//!
//! - [`workload`]: seeded query streams — open-loop Poisson and
//!   closed-loop arrival generators over uniform or TPC-H-Q6-style
//!   predicate mixes, plus an optional per-query latency SLO;
//! - [`pool`]: the first-class schedulable pool — a [`FilterPool`] maps
//!   dense unit ids to `{channel, rank, bank-group}` coordinates, with
//!   implementations for today's single-DIMM rank vector and a
//!   channels × ranks pool over the interleaved multi-channel memory
//!   system;
//! - [`policy`]: pluggable scheduling policies — FIFO,
//!   earliest-deadline-first, and contention-aware unit affinity (free
//!   units ordered by channel queue depth, then breaker state and
//!   served count);
//! - [`engine`]: admission control (bounded queue with shedding,
//!   tightened while ranks are quarantined), dispatch onto free healthy
//!   ranks via the PR-3 steppable-session min-cursor machinery, and the
//!   SLO degradation ladder (rank-parallel → single-device → requeue on
//!   a healthy rank → host CPU scan) composed over the PR-1 resilient
//!   drivers;
//! - [`health`]: the per-rank failure lifecycle — a rank whose fail-fast
//!   ladder parks a shard is quarantined out of the schedulable pool,
//!   its shard is rescued and re-dispatched mid-query (bitset prefix
//!   salvaged and replayed), and canary probes repair the rank back into
//!   the pool;
//! - [`report`]: per-query records (queue-wait vs service-time
//!   breakdown, execution rung, selection vector) and aggregate
//!   p50/p95/p99 latency + throughput;
//! - [`submit`]: lifting `jafar-columnstore` scan, projection and
//!   global-aggregate plans into served queries;
//! - [`cluster`]: the disaggregated tier — a host frontend routing
//!   queries over a deterministic [`jafar_net::NetFabric`] to N memory
//!   nodes (each a full node-local engine with its own fault domain),
//!   with replica-aware routing policies and the degradation ladder
//!   extended across tiers: remote NDP → remote node CPU →
//!   pull-the-column-and-scan on the frontend.
//!
//! Everything is deterministic: workloads are pure functions of their
//! seeds, and the engine makes every scheduling decision at an explicit
//! event in strict `(time, class, id)` order, so a serve run — including
//! its trace stream — is a pure function of `(workload, policy, config)`.
//! Each served query's selection vector is bit-identical to running the
//! same predicate alone.
//!
//! The usual entry point is `jafar_sim::System::serve`, which owns the
//! DRAM module, replicates the column across the NDP ranks and hands the
//! engine a [`engine::ServeEnv`].

pub mod cluster;
pub mod engine;
pub mod health;
pub mod policy;
pub mod pool;
pub mod report;
pub mod submit;
pub mod workload;

pub use cluster::{
    cluster_fabric, run_cluster, ClusterConfig, ClusterEnv, ClusterQuery, ClusterReport,
    NodeSummary, RoutePolicy, Tier,
};
pub use engine::{out_lanes, run_serve, run_serve_checked, EngineInvariant, ServeConfig, ServeEnv};
pub use health::{HealthConfig, UnitState};
pub use policy::SchedPolicy;
pub use pool::{ChannelRankPool, FilterPool, FilterUnit, PoolIdError, SingleDimmPool};
pub use report::{Availability, ExecMode, OpBreakdown, QueryRecord, ServeReport, UnitAvailability};
pub use submit::{semi_join_spec, spec_from_plan, workload_from_plans, Lowered, SubmitError};
pub use workload::{
    uniform_keys, zipf_keys, AggFn, Arrivals, KeyRangeOverflow, KeyRanges, PredicateMix, QueryOp,
    QuerySpec, Workload, MAX_KEY_RANGES,
};
