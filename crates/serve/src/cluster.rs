//! The disaggregated serving tier: one host frontend, N memory nodes.
//!
//! # Topology and message flow
//!
//! Each memory node is a full node-local serving machine — an
//! [`crate::engine`] instance over its own DRAM module(s), filter-unit
//! pool, devices and drivers — connected to the host frontend by one
//! [`jafar_net::NetFabric`] link. A query's life:
//!
//! 1. **Arrive** at the frontend (the workload's open-loop instant).
//! 2. **Route** to a memory node holding a replica of the served column
//!    (the [`RoutePolicy`] axis — round-robin, least-outstanding, or
//!    replica-local health-aware), paying a request hop on that node's
//!    link.
//! 3. **Serve** on the node: the node-local engine admits (or sheds),
//!    schedules, and runs the query down its own degradation ladder —
//!    device NDP ([`Tier::RemoteNdp`]) or the node's host CPU rung
//!    ([`Tier::RemoteCpu`]), with the node's full park/rescue/migrate/
//!    probe failure machinery in between.
//! 4. **Respond**: the result rides the same link back (sized by what
//!    the operator materialized — a bitset, a scalar, or packed
//!    projected values).
//!
//! When *no* replica holder is healthy — every holder's schedulable pool
//! is empty under [`RoutePolicy::ReplicaLocal`] — the ladder crosses the
//! tier boundary: the frontend **pulls the column** from the page store
//! over its own (slower) link and scans it locally
//! ([`Tier::LocalPull`]), serialized on the frontend's CPU clock. The
//! scan is computed functionally with the same code path the node-local
//! CPU rung uses, so every tier of the ladder returns byte-identical
//! results; only the *timing* degrades.
//!
//! # Determinism
//!
//! The frontend is itself a discrete-event loop over a single heap in
//! strict `(time, class, id)` order, with classes response < arrival <
//! delivery < pull-done. Before processing an event at time `t`, every
//! node engine is advanced up to `t` (the PR-3 steppable machinery), and
//! any completions they produced become response events — those carry
//! times `>` the previously processed event, so the global order is
//! monotone. Node engines only ever see arrivals injected at the current
//! frontend time, never in their processed past. Link jitter streams are
//! split per label from the fabric seed, so a cluster run is a pure
//! function of `(workload, placement, policies, configs, seed)` — and
//! node 0's traffic in an N-node run is byte-identical to a 1-node run
//! when the routing sends it the same queries.
//!
//! # What the control plane costs
//!
//! Routing reads node health and queue depth instantaneously — an
//! idealized gossip/heartbeat plane, standard in serving simulators; only
//! the *data* plane (requests, responses, column pulls) pays fabric
//! costs. The ledger of every link ends up in the [`ClusterReport`].

use crate::engine::{host_scan_cost, Engine, EngineInvariant, ServeConfig, ServeEnv};
use crate::policy::SchedPolicy;
use crate::report::{Availability, ExecMode, QueryRecord};
use crate::workload::{AggFn, Arrivals, QueryOp, Workload};
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::time::Tick;
use jafar_net::{LinkSpec, LinkStats, NetFabric, Placement};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Frontend event classes, in processing order at equal times: learn
/// outcomes first, then admit new arrivals, then hand deliveries to the
/// nodes, then retire local pulls.
const FCLASS_RESPONSE: u8 = 0;
const FCLASS_ARRIVAL: u8 = 1;
const FCLASS_DELIVER: u8 = 2;
const FCLASS_PULL_DONE: u8 = 3;

/// The frontend's event heap: `(time, class, query)` min-ordered.
type FrontHeap = BinaryHeap<Reverse<(Tick, u8, u32)>>;

/// How the frontend picks a replica holder for each arriving query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Rotate through the column's holders regardless of their state.
    /// A dark holder still completes its queries — on its node-local
    /// host rung — so this shows the cost of health-blind routing.
    RoundRobin,
    /// The holder with the fewest outstanding-plus-queued queries
    /// (ties to the lowest node id). Health-blind, load-aware.
    LeastOutstanding,
    /// Load-aware among *healthy* holders only (schedulable pool
    /// non-empty); when no holder is healthy, cross the tier boundary
    /// and pull the column to the frontend ([`Tier::LocalPull`]).
    #[default]
    ReplicaLocal,
}

impl RoutePolicy {
    /// Stable mnemonic for reports and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round-robin",
            RoutePolicy::LeastOutstanding => "least-outstanding",
            RoutePolicy::ReplicaLocal => "replica-local",
        }
    }
}

/// Which tier of the cross-node degradation ladder served a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Ran on a memory node's JAFAR devices (near-data, the fast path).
    RemoteNdp,
    /// Ran on a memory node's host CPU rung (the node-local degrade,
    /// including stranded drains on a fully dark node).
    RemoteCpu,
    /// No healthy holder: the frontend pulled the column over the
    /// page-store link and scanned it itself — the last functional rung.
    LocalPull,
    /// Shed at the node's admission control; the rejection still rides
    /// the response link back.
    Shed,
}

impl Tier {
    /// Stable mnemonic for reports and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::RemoteNdp => "remote-ndp",
            Tier::RemoteCpu => "remote-cpu",
            Tier::LocalPull => "local-pull",
            Tier::Shed => "shed",
        }
    }
}

/// Cluster-tier knobs layered on top of the node-local [`ServeConfig`].
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Routing policy for arriving queries.
    pub route: RoutePolicy,
    /// Wire size of one routed request (predicate + operator + header).
    pub request_bytes: u64,
    /// Fixed response framing added on top of the result payload.
    pub response_overhead_bytes: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            route: RoutePolicy::ReplicaLocal,
            request_bytes: 256,
            response_overhead_bytes: 128,
        }
    }
}

/// Borrowed cluster machine state: one [`ServeEnv`] per memory node,
/// the column's replica placement, the fabric connecting everything, and
/// the frontend's trace sink. Mirrors [`ServeEnv`] one level up: the
/// caller owns the machines, the tier only decides who serves what.
pub struct ClusterEnv<'a> {
    /// One node-local serving machine per memory node, node id = index.
    /// Every node must serve the same host column (`values` slices all
    /// point at identical data).
    pub nodes: Vec<ServeEnv<'a>>,
    /// Which nodes hold a replica of the served column.
    pub placement: &'a Placement,
    /// The star fabric: link `i` connects the frontend to node `i`, and
    /// link `nodes.len()` is the page-store link the local-pull rung
    /// uses ([`cluster_fabric`] builds exactly this shape).
    pub fabric: &'a mut NetFabric,
    /// Trace sink for the frontend's routed/hop/pulled events (node
    /// engines keep tracing through their own env sinks).
    pub tracer: &'a SharedTracer,
}

/// Builds the standard star fabric for `nodes` memory nodes: one
/// datacenter-class link per node (labelled `node-{i}`) plus the slower
/// `page-store` link at index `nodes`, all jitter streams split from
/// `seed`, 200 ns fixed per-message cost.
pub fn cluster_fabric(nodes: usize, seed: u64) -> NetFabric {
    let mut fabric = NetFabric::new(seed, Tick::from_ns(200));
    for i in 0..nodes {
        fabric.add_link(&format!("node-{i}"), LinkSpec::datacenter());
    }
    fabric.add_link("page-store", LinkSpec::page_store());
    fabric
}

/// One query's life through the cluster, frontend-side.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterQuery {
    /// The node it was routed to; `None` for a frontend local pull.
    pub node: Option<u32>,
    /// The ladder tier that produced its result.
    pub tier: Tier,
    /// When it arrived at the frontend.
    pub submitted: Tick,
    /// When the frontend observed its outcome (result or shed notice).
    pub responded: Option<Tick>,
    /// Request hop delay (frontend → node), or the column-pull delay
    /// for a local pull.
    pub req_hop: Tick,
    /// Response hop delay (node → frontend); zero for a local pull.
    pub resp_hop: Tick,
    /// The node-local record (or the frontend's own, for a local pull):
    /// bitset / scalar / projection, node-side timestamps, exec mode.
    pub record: QueryRecord,
}

impl ClusterQuery {
    /// Frontend submission-to-response latency — the latency a client
    /// would see. `None` for shed queries.
    pub fn latency(&self) -> Option<Tick> {
        if self.tier == Tier::Shed {
            return None;
        }
        self.responded.map(|r| r.saturating_sub(self.submitted))
    }
}

/// One memory node's slice of a cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSummary {
    /// The node id.
    pub node: u32,
    /// Queries the frontend routed to this node.
    pub routed: u64,
    /// Of those, how many completed (either node-local tier).
    pub completed: u64,
    /// Of those, how many its admission control shed.
    pub shed: u64,
    /// The node's own unit-health ledger — quarantines on one node
    /// never appear in another node's counters.
    pub availability: Availability,
    /// Discrete events the node's engine processed.
    pub events: u64,
    /// The node engine's local makespan (its last decision instant).
    pub makespan: Tick,
    /// Traffic ledger of the node's fabric link.
    pub link: LinkStats,
}

/// Aggregate outcome of one [`run_cluster`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReport {
    /// Every query in submission order.
    pub queries: Vec<ClusterQuery>,
    /// One summary per memory node, in node-id order.
    pub nodes: Vec<NodeSummary>,
    /// First frontend arrival to last frontend response.
    pub makespan: Tick,
    /// Node-local scheduling policy name.
    pub policy: &'static str,
    /// Routing policy name.
    pub route: &'static str,
    /// The served column's replication factor.
    pub replication: usize,
    /// Traffic ledger of the page-store link (local pulls).
    pub store_link: LinkStats,
    /// Total payload bytes across every fabric link.
    pub net_bytes: u64,
    /// Total messages across every fabric link.
    pub net_messages: u64,
}

impl ClusterReport {
    /// Queries that completed on any tier.
    pub fn completed(&self) -> usize {
        self.queries.iter().filter(|q| q.tier != Tier::Shed).count()
    }

    /// Queries shed at node admission.
    pub fn shed(&self) -> usize {
        self.tier_count(Tier::Shed)
    }

    /// Queries served on the given tier.
    pub fn tier_count(&self, tier: Tier) -> usize {
        self.queries.iter().filter(|q| q.tier == tier).count()
    }

    /// Sustained service rate: completions per second of makespan — the
    /// saturation-knee metric, same accounting as
    /// [`crate::report::ServeReport::service_rate_qps`].
    pub fn service_rate_qps(&self) -> f64 {
        let secs = self.makespan.as_ps() as f64 * 1e-12;
        if secs > 0.0 {
            self.completed() as f64 / secs
        } else {
            0.0
        }
    }

    fn sorted_latencies(&self) -> Vec<Tick> {
        let mut lats: Vec<Tick> = self.queries.iter().filter_map(|q| q.latency()).collect();
        lats.sort_unstable();
        lats
    }

    /// Nearest-rank client-visible latency percentile (`pct` clamped to
    /// `1..=100`); `None` when nothing completed.
    pub fn latency_percentile(&self, pct: u64) -> Option<Tick> {
        let sorted = self.sorted_latencies();
        if sorted.is_empty() {
            return None;
        }
        let idx = (pct.clamp(1, 100) as usize * sorted.len()).div_ceil(100) - 1;
        Some(sorted[idx])
    }

    /// Median client-visible latency.
    pub fn p50(&self) -> Option<Tick> {
        self.latency_percentile(50)
    }

    /// 99th-percentile client-visible latency.
    pub fn p99(&self) -> Option<Tick> {
        self.latency_percentile(99)
    }

    /// Mean request-hop delay over routed queries (the hop-latency
    /// breakdown's outbound half).
    pub fn mean_req_hop(&self) -> Option<Tick> {
        mean(
            self.queries
                .iter()
                .filter(|q| q.node.is_some())
                .map(|q| q.req_hop),
        )
    }

    /// Mean response-hop delay over routed queries (the inbound half).
    pub fn mean_resp_hop(&self) -> Option<Tick> {
        mean(
            self.queries
                .iter()
                .filter(|q| q.node.is_some())
                .map(|q| q.resp_hop),
        )
    }
}

fn mean(iter: impl Iterator<Item = Tick>) -> Option<Tick> {
    let (mut sum, mut n) = (0u64, 0u64);
    for t in iter {
        sum += t.as_ps();
        n += 1;
    }
    (n > 0).then(|| Tick::from_ps(sum / n))
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster[{}/{}]: {} queries over {} node(s) (rf {}): {} completed ({} ndp / {} node-cpu / {} pull), {} shed",
            self.route,
            self.policy,
            self.queries.len(),
            self.nodes.len(),
            self.replication,
            self.completed(),
            self.tier_count(Tier::RemoteNdp),
            self.tier_count(Tier::RemoteCpu),
            self.tier_count(Tier::LocalPull),
            self.shed(),
        )?;
        let ms = |t: Option<Tick>| t.map_or(0.0, |t| t.as_ms_f64());
        writeln!(
            f,
            "  makespan {:.3} ms, service rate {:.1} q/s; latency p50 {:.3} / p99 {:.3} ms; hops out {:.3} / back {:.3} ms",
            self.makespan.as_ms_f64(),
            self.service_rate_qps(),
            ms(self.p50()),
            ms(self.p99()),
            ms(self.mean_req_hop()),
            ms(self.mean_resp_hop()),
        )?;
        writeln!(
            f,
            "  network: {} message(s), {} byte(s) total; page store {} pull byte(s)",
            self.net_messages, self.net_bytes, self.store_link.bytes,
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "  node {}: {} routed, {} completed, {} shed, {} event(s), link {} B{}",
                n.node,
                n.routed,
                n.completed,
                n.shed,
                n.events,
                n.link.bytes,
                if n.availability.disturbed() {
                    " [disturbed]"
                } else {
                    ""
                },
            )?;
        }
        Ok(())
    }
}

/// Result payload bytes a finished query's response carries: the bitset,
/// the packed projected values, the aggregate scalar, and an 8-byte
/// status/count word.
fn result_bytes(rec: &QueryRecord) -> u64 {
    rec.bitset.len() as u64
        + rec.projected.len() as u64 * 8
        + rec.groups.len() as u64 * 24
        + if rec.agg.is_some() { 8 } else { 0 }
        + 8
}

/// Functional scan of the full column into `rec` — the same result
/// semantics as the node-local CPU rung (bit-identical bitset, wrapping
/// sum, `None` extremum on an empty selection, packed projection,
/// key-sorted groups), so the local-pull tier is indistinguishable from
/// every other tier in everything but timing. `keys` is the group-by key
/// column (may be empty for workloads without group-by queries).
fn scan_functional(values: &[i64], keys: &[i64], rec: &mut QueryRecord) {
    let (lo, hi) = (rec.lo, rec.hi);
    match rec.op {
        QueryOp::Select | QueryOp::Project { .. } => {
            let mut bytes = vec![0u8; values.len().div_ceil(8)];
            let mut matched = 0u64;
            for (i, &v) in values.iter().enumerate() {
                if v >= lo && v <= hi {
                    bytes[i / 8] |= 1 << (i % 8);
                    matched += 1;
                }
            }
            rec.bitset = bytes;
            rec.matched = matched;
            if let QueryOp::Project { .. } = rec.op {
                rec.projected = values
                    .iter()
                    .copied()
                    .filter(|&v| v >= lo && v <= hi)
                    .collect();
            }
        }
        QueryOp::SelectCount => {
            let matched = values.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
            rec.matched = matched;
            rec.agg = Some(matched as i64);
        }
        QueryOp::SelectAgg(f) => {
            let mut matched = 0u64;
            let mut acc: Option<i64> = None;
            for &v in values.iter().filter(|&&v| v >= lo && v <= hi) {
                matched += 1;
                acc = Some(match (f, acc) {
                    (AggFn::Sum, prev) => prev.unwrap_or(0).wrapping_add(v),
                    (AggFn::Min | AggFn::Max, None) => v,
                    (AggFn::Min, Some(p)) => p.min(v),
                    (AggFn::Max, Some(p)) => p.max(v),
                });
            }
            rec.matched = matched;
            rec.agg = acc;
        }
        QueryOp::SemiJoin { ranges } => {
            let mut bytes = vec![0u8; values.len().div_ceil(8)];
            let mut matched = 0u64;
            for (i, &v) in values.iter().enumerate() {
                if ranges.contains(v) {
                    bytes[i / 8] |= 1 << (i % 8);
                    matched += 1;
                }
            }
            rec.bitset = bytes;
            rec.matched = matched;
        }
        QueryOp::GroupBy { agg } => {
            let mut matched = 0u64;
            let mut groups: std::collections::BTreeMap<i64, (u64, Option<i64>)> =
                std::collections::BTreeMap::new();
            for (i, &v) in values.iter().enumerate() {
                if v >= lo && v <= hi {
                    matched += 1;
                    let e = groups.entry(keys[i]).or_insert((0, None));
                    e.0 += 1;
                    e.1 = Some(match (agg, e.1) {
                        (AggFn::Sum, prev) => prev.unwrap_or(0).wrapping_add(v),
                        (AggFn::Min | AggFn::Max, None) => v,
                        (AggFn::Min, Some(p)) => p.min(v),
                        (AggFn::Max, Some(p)) => p.max(v),
                    });
                }
            }
            rec.matched = matched;
            rec.groups = groups.into_iter().map(|(k, (c, a))| (k, c, a)).collect();
        }
    }
}

/// Harvests completions and sheds node `node` produced since the last
/// call, prices their response hops, and enqueues the frontend response
/// events. Response times can precede the event that triggered the
/// harvest but never the previously *processed* one: a completion
/// decided in `(t_prev, t]` has `done > t_prev`, so the frontend's
/// `(time, class, id)` order stays monotone.
fn harvest_node(
    node: usize,
    eng: &mut Engine<'_, '_>,
    fabric: &mut NetFabric,
    heap: &mut FrontHeap,
    resp_hop: &mut [Tick],
    overhead: u64,
    tracer: &SharedTracer,
) {
    for qid in eng.take_finished() {
        let rec = eng.record(qid);
        let done = rec.done.expect("finished queries carry a done stamp");
        let bytes = overhead + result_bytes(rec);
        let hop = fabric.delay(node, bytes);
        tracer.emit(
            done,
            EventKind::NetHop {
                link: node as u32,
                bytes,
            },
        );
        resp_hop[qid as usize] = hop;
        heap.push(Reverse((done + hop, FCLASS_RESPONSE, qid)));
    }
    for qid in eng.take_shed() {
        // A shed decision happens at the query's node-side admission
        // instant; the rejection notice is a bare header on the wire.
        let at = eng.record(qid).submitted;
        let hop = fabric.delay(node, overhead);
        tracer.emit(
            at,
            EventKind::NetHop {
                link: node as u32,
                bytes: overhead,
            },
        );
        resp_hop[qid as usize] = hop;
        heap.push(Reverse((at + hop, FCLASS_RESPONSE, qid)));
    }
}

/// Runs `workload` against the cluster in `env`: nodes serve under
/// `policy`/`cfg`, the frontend routes under `ccfg`. Returns the
/// cluster-wide report; every admitted query completes on some tier of
/// the cross-node ladder (or is explicitly shed by its node).
///
/// # Panics
/// Panics if `env.nodes` is empty, the fabric lacks a link per node plus
/// the page-store link, the placement names a node outside the cluster,
/// the nodes disagree on the served column, or the workload is
/// closed-loop (the cluster frontend drives open-loop arrivals; closed
/// loops would need response-triggered think timers — future work).
///
/// # Errors
/// Surfaces the first node-engine [`EngineInvariant`] violation, exactly
/// as [`crate::engine::run_serve_checked`] would.
pub fn run_cluster(
    env: ClusterEnv<'_>,
    workload: &Workload,
    policy: SchedPolicy,
    cfg: &ServeConfig,
    ccfg: &ClusterConfig,
) -> Result<ClusterReport, EngineInvariant> {
    let ClusterEnv {
        nodes: envs,
        placement,
        fabric,
        tracer,
    } = env;
    let nodes = envs.len();
    assert!(nodes > 0, "a cluster needs at least one memory node");
    let store_link = nodes;
    assert!(
        fabric.links() > store_link,
        "fabric needs one link per node plus the page-store link"
    );
    assert!(
        placement.holders().iter().all(|&h| h < nodes),
        "placement names a node outside the cluster"
    );
    let Arrivals::Open(times) = &workload.arrivals else {
        panic!("cluster serving drives open-loop workloads only");
    };
    let n = workload.len();
    assert_eq!(times.len(), n, "one arrival instant per query");
    let values: &[i64] = envs[0].values;
    assert!(
        envs.iter()
            .all(|e| std::ptr::eq(e.values, values) || e.values == values),
        "every node must serve the same column"
    );
    let keys: &[i64] = envs[0].keys;
    assert!(
        envs.iter()
            .all(|e| std::ptr::eq(e.keys, keys) || e.keys == keys),
        "every node must serve the same key column"
    );

    let mut engines: Vec<Engine<'_, '_>> = envs
        .into_iter()
        .map(|e| Engine::build(e, workload, policy, cfg))
        .collect();
    let slos: Vec<Option<Tick>> = workload
        .specs
        .iter()
        .map(|s| s.slo.or(workload.slo))
        .collect();

    let mut heap: FrontHeap = BinaryHeap::new();
    for (i, &t) in times.iter().enumerate() {
        heap.push(Reverse((cfg.start + t, FCLASS_ARRIVAL, i as u32)));
    }

    // Frontend-side per-query ledgers.
    let mut route_of: Vec<Option<usize>> = vec![None; n];
    let mut submitted_at: Vec<Tick> = vec![Tick::ZERO; n];
    let mut responded: Vec<Option<Tick>> = vec![None; n];
    let mut req_hop: Vec<Tick> = vec![Tick::ZERO; n];
    let mut resp_hop: Vec<Tick> = vec![Tick::ZERO; n];
    let mut local_rec: Vec<Option<QueryRecord>> = (0..n).map(|_| None).collect();
    // Per-node ledgers and the frontend's own serial scan clock.
    let mut outstanding: Vec<u64> = vec![0; nodes];
    let mut routed_count: Vec<u64> = vec![0; nodes];
    let mut rr: usize = 0;
    let mut front_free = cfg.start;

    loop {
        let Some(&Reverse((t_next, _, _))) = heap.peek() else {
            // No frontend event pending: anything still moving is inside
            // the nodes. Drain them fully; completions become response
            // events and the loop continues, or nothing progressed and
            // the run is over.
            let mut progressed = false;
            for eng in engines.iter_mut() {
                if eng.next_time().is_some() {
                    eng.advance_until(Tick::MAX)?;
                    progressed = true;
                }
            }
            for (i, eng) in engines.iter_mut().enumerate() {
                harvest_node(
                    i,
                    eng,
                    fabric,
                    &mut heap,
                    &mut resp_hop,
                    ccfg.response_overhead_bytes,
                    tracer,
                );
            }
            if heap.is_empty() && !progressed {
                break;
            }
            continue;
        };
        // Bring every node up to the next frontend instant and harvest
        // what they decided on the way; the true minimum event (possibly
        // a just-harvested earlier response) is then popped.
        for eng in engines.iter_mut() {
            eng.advance_until(t_next)?;
        }
        for (i, eng) in engines.iter_mut().enumerate() {
            harvest_node(
                i,
                eng,
                fabric,
                &mut heap,
                &mut resp_hop,
                ccfg.response_overhead_bytes,
                tracer,
            );
        }
        let Reverse((t, class, qid)) = heap.pop().expect("peeked non-empty heap");
        let q = qid as usize;
        match class {
            FCLASS_ARRIVAL => {
                submitted_at[q] = t;
                let holders = placement.holders();
                let chosen = match ccfg.route {
                    RoutePolicy::RoundRobin => {
                        let h = holders[rr % holders.len()];
                        rr += 1;
                        Some(h)
                    }
                    RoutePolicy::LeastOutstanding => holders
                        .iter()
                        .copied()
                        .min_by_key(|&h| (outstanding[h] + engines[h].queue_len() as u64, h)),
                    RoutePolicy::ReplicaLocal => holders
                        .iter()
                        .copied()
                        .filter(|&h| engines[h].schedulable_units() > 0)
                        .min_by_key(|&h| (outstanding[h] + engines[h].queue_len() as u64, h)),
                };
                match chosen {
                    Some(node) => {
                        route_of[q] = Some(node);
                        outstanding[node] += 1;
                        routed_count[node] += 1;
                        tracer.emit(
                            t,
                            EventKind::QueryRouted {
                                query: qid,
                                node: node as u32,
                                via: ccfg.route.name(),
                            },
                        );
                        tracer.emit(
                            t,
                            EventKind::NetHop {
                                link: node as u32,
                                bytes: ccfg.request_bytes,
                            },
                        );
                        let hop = fabric.delay(node, ccfg.request_bytes);
                        req_hop[q] = hop;
                        heap.push(Reverse((t + hop, FCLASS_DELIVER, qid)));
                    }
                    None => {
                        // Tier 3: no healthy holder anywhere — pull the
                        // column over the page-store link and scan it on
                        // the frontend, serialized on its scan clock.
                        let spec = workload.specs[q];
                        let bytes = values.len() as u64 * 8;
                        tracer.emit(t, EventKind::ColumnPulled { query: qid, bytes });
                        tracer.emit(
                            t,
                            EventKind::NetHop {
                                link: store_link as u32,
                                bytes,
                            },
                        );
                        let pull = fabric.delay(store_link, bytes);
                        let begin = (t + pull).max(front_free);
                        let done = begin + host_scan_cost(cfg, values.len() as u64, spec.op);
                        front_free = done;
                        let mut rec = QueryRecord {
                            id: qid,
                            lo: spec.lo,
                            hi: spec.hi,
                            op: spec.op,
                            submitted: t,
                            started: Some(begin),
                            done: Some(done),
                            deadline: slos[q].map_or(Tick::MAX, |s| t + s),
                            mode: ExecMode::Cpu,
                            matched: 0,
                            bitset: Vec::new(),
                            agg: None,
                            projected: Vec::new(),
                            groups: Vec::new(),
                        };
                        scan_functional(values, keys, &mut rec);
                        req_hop[q] = pull;
                        local_rec[q] = Some(rec);
                        heap.push(Reverse((done, FCLASS_PULL_DONE, qid)));
                    }
                }
            }
            FCLASS_DELIVER => {
                let node = route_of[q].expect("delivery implies a routed query");
                engines[node].inject_arrival(qid, t);
            }
            FCLASS_RESPONSE => {
                let node = route_of[q].expect("response implies a routed query");
                outstanding[node] -= 1;
                responded[q] = Some(t);
            }
            _ => {
                debug_assert_eq!(class, FCLASS_PULL_DONE);
                responded[q] = Some(t);
            }
        }
    }

    // Epilogue: fold the node engines into their reports and assemble
    // the frontend's view.
    let node_links: Vec<LinkStats> = (0..nodes).map(|i| fabric.stats(i)).collect();
    let node_reports: Vec<crate::report::ServeReport> =
        engines.into_iter().map(|e| e.into_report()).collect();
    let queries: Vec<ClusterQuery> = (0..n)
        .map(|q| match route_of[q] {
            Some(node) => {
                let record = node_reports[node].records[q].clone();
                let tier = match record.mode {
                    ExecMode::Shed => Tier::Shed,
                    ExecMode::Cpu => Tier::RemoteCpu,
                    ExecMode::Device { .. } => Tier::RemoteNdp,
                    ExecMode::Pending => {
                        unreachable!("routed query {q} left pending after full drain")
                    }
                };
                ClusterQuery {
                    node: Some(node as u32),
                    tier,
                    submitted: submitted_at[q],
                    responded: responded[q],
                    req_hop: req_hop[q],
                    resp_hop: resp_hop[q],
                    record,
                }
            }
            None => ClusterQuery {
                node: None,
                tier: Tier::LocalPull,
                submitted: submitted_at[q],
                responded: responded[q],
                req_hop: req_hop[q],
                resp_hop: Tick::ZERO,
                record: local_rec[q]
                    .take()
                    .expect("unrouted query must have pulled locally"),
            },
        })
        .collect();
    let nodes_summary: Vec<NodeSummary> = node_reports
        .iter()
        .enumerate()
        .map(|(i, rep)| {
            let mine = |tier_pred: &dyn Fn(Tier) -> bool| {
                queries
                    .iter()
                    .filter(|cq| cq.node == Some(i as u32) && tier_pred(cq.tier))
                    .count() as u64
            };
            NodeSummary {
                node: i as u32,
                routed: routed_count[i],
                completed: mine(&|t| t != Tier::Shed),
                shed: mine(&|t| t == Tier::Shed),
                availability: rep.availability.clone(),
                events: rep.events,
                makespan: rep.makespan,
                link: node_links[i],
            }
        })
        .collect();
    let makespan = queries
        .iter()
        .filter_map(|q| q.responded)
        .max()
        .unwrap_or(cfg.start)
        .saturating_sub(cfg.start);
    Ok(ClusterReport {
        queries,
        nodes: nodes_summary,
        makespan,
        policy: policy.name(),
        route: ccfg.route.name(),
        replication: placement.factor(),
        store_link: fabric.stats(store_link),
        net_bytes: fabric.total_bytes(),
        net_messages: fabric.total_messages(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::SingleDimmPool;
    use crate::workload::{PredicateMix, QuerySpec};
    use jafar_common::rng::SplitMix64;
    use jafar_core::device::JafarDevice;
    use jafar_core::driver::{ResilienceConfig, ResilientDriver};
    use jafar_dram::{
        AddressMapping, DramGeometry, DramModule, DramTiming, FaultInjector, FaultPlan, PhysAddr,
    };

    const ROWS: u64 = 2048;

    /// One memory node's machine, same layout as the engine tests' rig.
    struct NodeRig {
        module: DramModule,
        devices: Vec<JafarDevice>,
        drivers: Vec<ResilientDriver>,
        replicas: Vec<PhysAddr>,
        outs: Vec<PhysAddr>,
        proj_outs: Vec<PhysAddr>,
        stage_outs: Vec<PhysAddr>,
    }

    struct ClusterRig {
        nodes: Vec<NodeRig>,
        pools: Vec<SingleDimmPool>,
        values: Vec<i64>,
        keys: Vec<i64>,
        tracer: SharedTracer,
    }

    fn cluster_rig(nodes: usize, ranks_per_node: u32, seed: u64) -> ClusterRig {
        let mut rng = SplitMix64::new(seed);
        let values: Vec<i64> = (0..ROWS)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let mut krng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let keys: Vec<i64> = (0..ROWS)
            .map(|_| krng.next_range_inclusive(0, 15))
            .collect();
        let geom = DramGeometry {
            ranks: ranks_per_node,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 1024,
        };
        let rank_bytes = geom.rank_bytes();
        let nodes = (0..nodes)
            .map(|_| {
                let mut module = DramModule::new(
                    geom,
                    DramTiming::ddr3_paper().without_refresh(),
                    AddressMapping::RankRowBankBlock,
                );
                let mut replicas = Vec::new();
                let mut outs = Vec::new();
                let mut proj_outs = Vec::new();
                let mut stage_outs = Vec::new();
                for r in 0..ranks_per_node as u64 {
                    let col = PhysAddr(r * rank_bytes);
                    for (i, &v) in values.iter().enumerate() {
                        module
                            .data_mut()
                            .write_i64(PhysAddr(col.0 + i as u64 * 8), v);
                    }
                    replicas.push(col);
                    outs.push(PhysAddr(r * rank_bytes + 192 * 1024));
                    proj_outs.push(PhysAddr(r * rank_bytes + 64 * 1024));
                    stage_outs.push(PhysAddr(r * rank_bytes + 128 * 1024));
                }
                NodeRig {
                    module,
                    devices: (0..ranks_per_node)
                        .map(|_| JafarDevice::paper_default())
                        .collect(),
                    drivers: (0..ranks_per_node)
                        .map(|_| ResilientDriver::new(ResilienceConfig::default()))
                        .collect(),
                    replicas,
                    outs,
                    proj_outs,
                    stage_outs,
                }
            })
            .collect();
        ClusterRig {
            nodes,
            // Filled per run (one pool per node) so `run` can borrow
            // them alongside the mutable node machines.
            pools: Vec::new(),
            values,
            keys,
            tracer: SharedTracer::disabled(),
        }
    }

    impl ClusterRig {
        fn run(
            &mut self,
            placement: &Placement,
            fabric: &mut NetFabric,
            workload: &Workload,
            policy: SchedPolicy,
            cfg: &ServeConfig,
            ccfg: &ClusterConfig,
        ) -> ClusterReport {
            let ClusterRig {
                nodes,
                pools,
                values,
                keys,
                tracer,
            } = self;
            pools.clear();
            pools.extend(nodes.iter().map(|n| SingleDimmPool::new(n.devices.len())));
            let envs: Vec<ServeEnv<'_>> = nodes
                .iter_mut()
                .zip(pools.iter())
                .map(|(node, pool)| ServeEnv {
                    modules: vec![&mut node.module],
                    pool,
                    devices: &mut node.devices,
                    drivers: &mut node.drivers,
                    replicas: &node.replicas,
                    outs: &node.outs,
                    proj_outs: &node.proj_outs,
                    values,
                    keys,
                    stage_outs: &node.stage_outs,
                    tracer,
                })
                .collect();
            run_cluster(
                ClusterEnv {
                    nodes: envs,
                    placement,
                    fabric,
                    tracer,
                },
                workload,
                policy,
                cfg,
                ccfg,
            )
            .expect("cluster invariants hold")
        }
    }

    fn reference_bytes(values: &[i64], lo: i64, hi: i64) -> Vec<u8> {
        let mut bytes = vec![0u8; values.len().div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    /// Every completed query's payload must match the functional
    /// reference, whatever tier served it.
    fn assert_byte_identity(report: &ClusterReport, values: &[i64]) {
        for q in &report.queries {
            if q.tier == Tier::Shed {
                continue;
            }
            let rec = &q.record;
            let reference = reference_bytes(values, rec.lo, rec.hi);
            let matched = reference.iter().map(|b| b.count_ones() as u64).sum::<u64>();
            assert_eq!(rec.matched, matched, "query {} match count", rec.id);
            match rec.op {
                QueryOp::Select => assert_eq!(rec.bitset, reference, "query {} bitset", rec.id),
                QueryOp::SelectCount => assert_eq!(rec.agg, Some(matched as i64)),
                QueryOp::SelectAgg(AggFn::Sum) => {
                    let sum = values
                        .iter()
                        .copied()
                        .filter(|&v| v >= rec.lo && v <= rec.hi)
                        .fold(0i64, |a, v| a.wrapping_add(v));
                    assert_eq!(rec.agg, Some(sum), "query {} sum", rec.id);
                }
                QueryOp::SelectAgg(_) => {}
                QueryOp::Project { .. } => {
                    let expect: Vec<i64> = values
                        .iter()
                        .copied()
                        .filter(|&v| v >= rec.lo && v <= rec.hi)
                        .collect();
                    assert_eq!(rec.bitset, reference, "query {} bitset", rec.id);
                    assert_eq!(rec.projected, expect, "query {} projection", rec.id);
                }
                QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
                    unreachable!("this case mix does not generate joins or group-bys")
                }
            }
        }
    }

    fn mixed_workload(n: usize, mean_gap: Tick, seed: u64) -> Workload {
        Workload::poisson(
            PredicateMix::UniformRange {
                min: 0,
                max: 999,
                width: 300,
            },
            n,
            mean_gap,
            seed,
        )
        .with_op_mix(&[
            QueryOp::Select,
            QueryOp::SelectCount,
            QueryOp::SelectAgg(AggFn::Sum),
            QueryOp::Project { k: 2 },
        ])
    }

    fn roomy_cfg() -> ServeConfig {
        ServeConfig {
            max_queue: 64,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn cluster_results_are_byte_identical_across_tiers_and_nodes() {
        let mut rig = cluster_rig(2, 1, 41);
        let placement = Placement::hot(2);
        let mut fabric = cluster_fabric(2, 0xC1);
        let workload = mixed_workload(12, Tick::from_us(30), 43);
        let report = rig.run(
            &placement,
            &mut fabric,
            &workload,
            SchedPolicy::Fifo,
            &roomy_cfg(),
            &ClusterConfig::default(),
        );
        assert_eq!(report.completed(), 12);
        assert_eq!(report.shed(), 0);
        assert_byte_identity(&report, &rig.values);
        // Replica-local routing over two healthy holders spreads load.
        assert!(report.nodes.iter().all(|n| n.routed > 0));
        assert!(report.net_messages >= 24, "request + response per query");
        assert_eq!(report.store_link.messages, 0, "no pulls while healthy");
        // Every routed query paid both hops.
        for q in &report.queries {
            assert!(q.req_hop > Tick::ZERO && q.resp_hop > Tick::ZERO);
            assert!(q.latency().unwrap() >= q.req_hop + q.resp_hop);
        }
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let run = || {
            let mut rig = cluster_rig(2, 1, 7);
            let placement = Placement::hot(2);
            let mut fabric = cluster_fabric(2, 0xFAB);
            let workload = mixed_workload(10, Tick::from_us(25), 9);
            rig.run(
                &placement,
                &mut fabric,
                &workload,
                SchedPolicy::Fifo,
                &roomy_cfg(),
                &ClusterConfig::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn two_nodes_drain_an_overload_faster_than_one() {
        let workload = mixed_workload(20, Tick::from_us(5), 17);
        let run = |nodes: usize| {
            let mut rig = cluster_rig(nodes, 1, 23);
            let placement = Placement::hot(nodes);
            let mut fabric = cluster_fabric(nodes, 0xA0);
            rig.run(
                &placement,
                &mut fabric,
                &workload,
                SchedPolicy::Fifo,
                &roomy_cfg(),
                &ClusterConfig::default(),
            )
        };
        let solo = run(1);
        let duo = run(2);
        assert_eq!(solo.completed(), 20);
        assert_eq!(duo.completed(), 20);
        assert!(
            duo.makespan < solo.makespan,
            "two nodes must drain the same overload sooner: {} vs {}",
            duo.makespan.as_ms_f64(),
            solo.makespan.as_ms_f64()
        );
    }

    #[test]
    fn dark_node_under_blind_routing_completes_on_its_host_rung() {
        let mut rig = cluster_rig(2, 1, 29);
        // Node 1's only rank is dark for the whole run; round-robin
        // keeps sending it queries anyway.
        rig.nodes[1]
            .module
            .set_fault_injector(Some(FaultInjector::new(FaultPlan::none(1).with_outage(
                0,
                Tick::ZERO,
                Tick::MAX,
            ))));
        let placement = Placement::hot(2);
        let mut fabric = cluster_fabric(2, 0xBAD);
        let workload = mixed_workload(10, Tick::from_us(40), 31);
        let report = rig.run(
            &placement,
            &mut fabric,
            &workload,
            SchedPolicy::Fifo,
            &roomy_cfg(),
            &ClusterConfig {
                route: RoutePolicy::RoundRobin,
                ..ClusterConfig::default()
            },
        );
        assert_eq!(report.completed(), 10, "dark node still answers");
        assert_byte_identity(&report, &rig.values);
        let dark: Vec<&ClusterQuery> = report
            .queries
            .iter()
            .filter(|q| q.node == Some(1))
            .collect();
        assert_eq!(dark.len(), 5, "round-robin over two holders");
        assert!(
            dark.iter().all(|q| q.tier == Tier::RemoteCpu),
            "everything on the dark node lands on its host rung"
        );
        // The outage is confined to node 1's counters.
        assert!(report.nodes[1].availability.disturbed());
        assert!(!report.nodes[0].availability.disturbed());
        assert!(report
            .queries
            .iter()
            .filter(|q| q.node == Some(0))
            .all(|q| q.tier == Tier::RemoteNdp));
    }

    #[test]
    fn rf1_dark_holder_falls_back_to_frontend_pulls() {
        let mut rig = cluster_rig(2, 1, 53);
        // The column lives only on node 0, and node 0 is dark.
        rig.nodes[0]
            .module
            .set_fault_injector(Some(FaultInjector::new(FaultPlan::none(1).with_outage(
                0,
                Tick::ZERO,
                Tick::MAX,
            ))));
        let placement = Placement::cold(2, 1);
        let mut fabric = cluster_fabric(2, 0xD00);
        let workload = mixed_workload(10, Tick::from_us(40), 59);
        let report = rig.run(
            &placement,
            &mut fabric,
            &workload,
            SchedPolicy::Fifo,
            &roomy_cfg(),
            &ClusterConfig::default(),
        );
        assert_eq!(report.completed(), 10, "the ladder never loses a query");
        assert_byte_identity(&report, &rig.values);
        // Early arrivals route to node 0 (its pool looks healthy until
        // the first park quarantines the rank) and drain on its host
        // rung; once quarantined, replica-local routing finds no healthy
        // holder and the frontend pulls the column itself.
        let pulls = report.tier_count(Tier::LocalPull);
        assert!(pulls >= 1, "quarantine must force at least one pull");
        assert_eq!(
            report.store_link.messages as usize, pulls,
            "one page-store pull per local scan"
        );
        assert_eq!(report.store_link.bytes, pulls as u64 * ROWS * 8);
        // Queries in flight when the rank goes dark drain node-side
        // (parked shard salvaged functionally; the record keeps its
        // dispatch rung's label), so the routed remainder splits between
        // RemoteNdp-labelled drains and RemoteCpu degrades — but routing
        // must have stopped at the quarantine, leaving the bulk to pulls.
        let routed_to_0 = report.nodes[0].routed as usize;
        assert!(routed_to_0 >= 1, "the holder looked healthy at first");
        assert_eq!(pulls + routed_to_0, 10);
        assert!(
            pulls > routed_to_0,
            "after quarantine the frontend stops routing to the dark holder"
        );
        // Node 1 holds no replica and must never be routed to.
        assert_eq!(report.nodes[1].routed, 0);
        assert!(!report.nodes[1].availability.disturbed());
    }

    #[test]
    fn shed_notices_ride_the_response_link() {
        let mut rig = cluster_rig(1, 1, 61);
        let placement = Placement::hot(1);
        let mut fabric = cluster_fabric(1, 0x5ED);
        // A tiny queue under a burst: some arrivals must shed.
        let specs: Vec<QuerySpec> = (0..8)
            .map(|_| QuerySpec {
                lo: 100,
                hi: 500,
                op: QueryOp::Select,
                slo: None,
            })
            .collect();
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open(vec![Tick::ZERO; 8]),
            slo: None,
        };
        let cfg = ServeConfig {
            max_queue: 2,
            ..ServeConfig::default()
        };
        let report = rig.run(
            &placement,
            &mut fabric,
            &workload,
            SchedPolicy::Fifo,
            &cfg,
            &ClusterConfig::default(),
        );
        assert!(report.shed() > 0, "a burst over a tiny queue must shed");
        assert_eq!(report.completed() + report.shed(), 8);
        for q in report.queries.iter().filter(|q| q.tier == Tier::Shed) {
            assert!(q.responded.is_some(), "the frontend learns of the shed");
            assert!(q.latency().is_none(), "shed queries have no latency");
        }
        assert_byte_identity(&report, &rig.values);
    }
}
