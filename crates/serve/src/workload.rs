//! Seeded query streams: predicate mixes and arrival processes.
//!
//! A served workload is (a) a list of range predicates — the *what* — and
//! (b) an arrival process — the *when*. Both are generated from explicit
//! seeds through [`jafar_common::rng::SplitMix64`], so a workload is a
//! pure function of its parameters: the same `(mix, n, seed)` triple
//! always produces the same query stream, which is what makes the serving
//! golden tests (and the bit-identity acceptance check) possible.
//!
//! Two arrival shapes cover the standard serving experiments:
//!
//! - **Open loop** ([`Arrivals::Open`]): absolute submission instants,
//!   typically Poisson ([`Workload::poisson`]). Offered load is fixed by
//!   the mean inter-arrival gap regardless of how the system keeps up —
//!   this is the shape that exposes the saturation knee.
//! - **Closed loop** ([`Arrivals::Closed`]): a fixed client population,
//!   each submitting its next query a think-time after its previous one
//!   finishes (or is shed). Load self-throttles with service time.

use jafar_columnstore::value::Date;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_tpch::gen::TpchDb;

/// The scalar fold of a [`QueryOp::SelectAgg`] query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    /// Sum of qualifying values (wrapping, like the device fold).
    Sum,
    /// Minimum qualifying value.
    Min,
    /// Maximum qualifying value.
    Max,
}

/// Most ranges a semi-join key set may compress to — one fused select
/// lane per range, so the ceiling is the device's fused-lane budget
/// ([`jafar_core::device::MAX_FUSED_LANES`]).
pub const MAX_KEY_RANGES: usize = 8;

/// A build-side key set's ranges did not fit the fused-lane budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyRangeOverflow {
    /// Disjoint ranges the key set compressed to.
    pub ranges: usize,
}

impl core::fmt::Display for KeyRangeOverflow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "build keys compress to {} disjoint ranges, past the {MAX_KEY_RANGES}-lane fused budget",
            self.ranges
        )
    }
}

impl std::error::Error for KeyRangeOverflow {}

/// A semi-join build side's key set, compressed to at most
/// [`MAX_KEY_RANGES`] sorted disjoint inclusive ranges. Adjacent integers
/// coalesce (`{3, 4, 5}` is one range), so dense build sides — the common
/// shape for dictionary-coded and surrogate keys — compress far below the
/// ceiling. Inline and `Copy` so a [`QuerySpec`] stays a plain value the
/// cluster tier can route by copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyRanges {
    bounds: [(i64, i64); MAX_KEY_RANGES],
    len: u8,
}

impl KeyRanges {
    /// Compresses a build-side key multiset (unsorted, duplicates fine)
    /// into sorted disjoint ranges. An empty key set is a valid semi-join
    /// that matches nothing.
    pub fn from_keys(keys: &[i64]) -> Result<Self, KeyRangeOverflow> {
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let ranges = sorted
            .windows(2)
            .filter(|w| w[0] == i64::MAX || w[1] != w[0] + 1)
            .count()
            + usize::from(!sorted.is_empty());
        if ranges > MAX_KEY_RANGES {
            return Err(KeyRangeOverflow { ranges });
        }
        let mut bounds = [(i64::MAX, i64::MIN); MAX_KEY_RANGES];
        let mut len = 0usize;
        for &k in &sorted {
            if len > 0 && bounds[len - 1].1 != i64::MAX && k == bounds[len - 1].1 + 1 {
                bounds[len - 1].1 = k;
            } else {
                bounds[len] = (k, k);
                len += 1;
            }
        }
        Ok(KeyRanges {
            bounds,
            len: len as u8,
        })
    }

    /// The ranges, sorted and disjoint.
    pub fn as_slice(&self) -> &[(i64, i64)] {
        &self.bounds[..self.len as usize]
    }

    /// Number of disjoint ranges (fused lanes the semi-join needs).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the build side was empty (the semi-join matches nothing).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `v` falls inside any range.
    pub fn contains(&self, v: i64) -> bool {
        self.as_slice().iter().any(|&(lo, hi)| lo <= v && v <= hi)
    }

    /// The inclusive envelope `[min lo, max hi]`; the empty set yields
    /// the canonical empty predicate `(MAX, MIN)` so the envelope alone
    /// is already a correct (if loose) filter.
    pub fn envelope(&self) -> (i64, i64) {
        if self.len == 0 {
            return (i64::MAX, i64::MIN);
        }
        (self.bounds[0].0, self.bounds[self.len as usize - 1].1)
    }
}

/// The operator a served query runs over its range predicate — the §4
/// extensions lifted into the serving layer. Every operator shares the
/// same inclusive `[lo, hi]` predicate; they differ in what they *emit*
/// (and therefore in bytes moved, which drives the engine's per-operator
/// service estimates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOp {
    /// Emit the selection bitset (one bit per row) — the paper's core
    /// filter and the cheapest writeback.
    Select,
    /// Emit only the qualifying-row count (one scalar).
    SelectCount,
    /// Emit one folded scalar over the qualifying values.
    SelectAgg(AggFn),
    /// Late-materialization projection: emit the qualifying values of
    /// `k` columns, densely packed — `k`× the value bytes of a select's
    /// bitset-only writeback.
    Project {
        /// Columns reconstructed at the qualifying positions (≥ 1).
        k: u32,
    },
    /// Semi-join pushdown: emit the bitset of probe rows whose value
    /// falls in the build side's key set, compressed to fused-lane
    /// ranges. The spec's `[lo, hi]` is the ranges' envelope, so every
    /// single-predicate code path (routing, estimates) stays correct
    /// without knowing about ranges.
    SemiJoin {
        /// The build-side key set as sorted disjoint ranges.
        ranges: KeyRanges,
    },
    /// Keyed group-by: partition the qualifying rows of the served
    /// column by the workload's key column, fold each group with `agg`,
    /// and emit the sorted `(key, count, value)` rows.
    GroupBy {
        /// The per-group fold.
        agg: AggFn,
    },
}

impl QueryOp {
    /// Stable operator-kind mnemonic for reports and CSV output
    /// (`Project` collapses to `"project"` regardless of `k`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryOp::Select => "select",
            QueryOp::SelectCount => "count",
            QueryOp::SelectAgg(AggFn::Sum) => "sum",
            QueryOp::SelectAgg(AggFn::Min) => "min",
            QueryOp::SelectAgg(AggFn::Max) => "max",
            QueryOp::Project { .. } => "project",
            QueryOp::SemiJoin { .. } => "semi-join",
            QueryOp::GroupBy { .. } => "group-by",
        }
    }
}

/// One served query: an operator over an inclusive range predicate on
/// the served column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// The operator run over the predicate.
    pub op: QueryOp,
    /// Per-query latency SLO, overriding the workload-wide
    /// [`Workload::slo`] — how multi-tenant workloads give different
    /// tenants different deadlines. `None` falls back to the workload
    /// default.
    pub slo: Option<Tick>,
}

/// How queries are drawn for a workload.
#[derive(Clone, Copy, Debug)]
pub enum PredicateMix {
    /// Uniform random sub-ranges of `[min, max]`, each spanning `width`.
    UniformRange {
        /// Domain lower bound.
        min: i64,
        /// Domain upper bound.
        max: i64,
        /// Width of each query's range (clamped to the domain).
        width: i64,
    },
    /// TPC-H Q6-style shipdate windows: `l_shipdate >= date and
    /// l_shipdate < date + window` with a random first-of-month start
    /// date, mirroring Q6's `[1994-01-01, 1995-01-01)` year slice.
    TpchQ6Shipdate {
        /// Window length in days (Q6 proper uses 365).
        window_days: i64,
    },
}

impl PredicateMix {
    /// The Q6 mix with the query's own one-year window.
    pub fn tpch_q6() -> Self {
        PredicateMix::TpchQ6Shipdate { window_days: 365 }
    }

    /// Draws `n` query specs from the mix, deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<QuerySpec> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| match *self {
                PredicateMix::UniformRange { min, max, width } => {
                    // Normalise a degenerate `min > max` domain instead of
                    // panicking (clamp and the RNG both assert lo ≤ hi),
                    // and saturate every bound derivation so extreme
                    // domains (e.g. spanning the full i64 range) produce a
                    // clamped spec rather than overflowing.
                    let (dom_lo, dom_hi) = (min.min(max), max.max(min));
                    let width = width.clamp(0, dom_hi.saturating_sub(dom_lo));
                    let lo = rng.next_range_inclusive(dom_lo, dom_hi.saturating_sub(width));
                    QuerySpec {
                        lo,
                        hi: lo.saturating_add(width).min(dom_hi),
                        op: QueryOp::Select,
                        slo: None,
                    }
                }
                PredicateMix::TpchQ6Shipdate { window_days } => {
                    // Q6 dates start on the first of a month inside the
                    // lineitem shipdate domain (1992-01 .. 1997-12).
                    let year = 1992 + rng.next_below(6) as i32;
                    let month = 1 + rng.next_below(12) as u32;
                    let lo = Date::from_ymd(year, month, 1).raw();
                    QuerySpec {
                        lo,
                        hi: lo.saturating_add(window_days.max(1) - 1),
                        op: QueryOp::Select,
                        slo: None,
                    }
                }
            })
            .collect()
    }
}

/// The arrival process of a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Arrivals {
    /// Open loop: absolute submission instants, one per query spec,
    /// non-decreasing. Queries arrive on schedule no matter how the
    /// system is doing.
    Open(Vec<Tick>),
    /// Closed loop: `clients` concurrent submitters, each issuing its
    /// next query `think` after its previous one completes or is shed.
    /// The first `clients` queries all arrive at serve start.
    Closed {
        /// Concurrent client count (at least 1).
        clients: u32,
        /// Per-client think time between completion and next submission.
        think: Tick,
    },
}

/// A complete served workload: query specs, their arrival process, and an
/// optional per-query latency SLO.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The query stream, in submission order.
    pub specs: Vec<QuerySpec>,
    /// When each query is submitted.
    pub arrivals: Arrivals,
    /// Workload-wide deadline default: a query submitted at `t` must
    /// finish by `t + slo` — past-due risk triggers the degradation
    /// ladder. Overridden per query by [`QuerySpec::slo`].
    pub slo: Option<Tick>,
}

impl Workload {
    /// Open-loop Poisson workload: `n` queries from `mix`, exponential
    /// inter-arrival gaps with the given mean. Fully determined by
    /// `(mix, n, mean_gap, seed)`.
    pub fn poisson(mix: PredicateMix, n: usize, mean_gap: Tick, seed: u64) -> Self {
        let specs = mix.generate(n, seed);
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mean = mean_gap.as_ps().max(1) as f64;
        let mut at = 0u64;
        let arrivals = (0..n)
            .map(|_| {
                // Inverse-CDF exponential draw; 1 - u is in (0, 1] so the
                // log is finite, and the gap is clamped to >= 1 ps.
                let u = rng.next_f64();
                let gap = (-(1.0 - u).ln() * mean).round() as u64;
                at += gap.max(1);
                Tick::from_ps(at)
            })
            .collect();
        Workload {
            specs,
            arrivals: Arrivals::Open(arrivals),
            slo: None,
        }
    }

    /// Closed-loop workload: `n` queries from `mix` issued by `clients`
    /// concurrent clients with the given think time.
    pub fn closed(mix: PredicateMix, n: usize, clients: u32, think: Tick, seed: u64) -> Self {
        Workload {
            specs: mix.generate(n, seed),
            arrivals: Arrivals::Closed {
                clients: clients.max(1),
                think,
            },
            slo: None,
        }
    }

    /// Attaches a uniform latency SLO (enables the degradation ladder).
    pub fn with_slo(mut self, slo: Tick) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Assigns tenant SLO classes round-robin: query `i` gets
    /// `classes[i % classes.len()]`, so an interleaved multi-tenant mix
    /// (say latency-critical and batch tenants) shares one queue.
    pub fn with_slo_classes(mut self, classes: &[Tick]) -> Self {
        if !classes.is_empty() {
            for (i, spec) in self.specs.iter_mut().enumerate() {
                spec.slo = Some(classes[i % classes.len()]);
            }
        }
        self
    }

    /// Assigns operators round-robin: query `i` runs `ops[i % ops.len()]`
    /// over its generated predicate, turning a single-operator stream
    /// into an interleaved mixed-operator one (the §4 serving mix).
    pub fn with_op_mix(mut self, ops: &[QueryOp]) -> Self {
        if !ops.is_empty() {
            for (i, spec) in self.specs.iter_mut().enumerate() {
                spec.op = ops[i % ops.len()];
            }
        }
        self
    }

    /// Number of queries in the stream.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The widest fused-lane footprint any semi-join in the stream needs
    /// (0 when none): output buffers must hold this many lanes even when
    /// `fuse_window` is 1, since a semi-join's ranges fuse regardless.
    pub fn max_semi_lanes(&self) -> usize {
        self.specs
            .iter()
            .map(|s| match s.op {
                QueryOp::SemiJoin { ranges } => ranges.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

impl QuerySpec {
    /// A semi-join spec over the given build-side key ranges; `[lo, hi]`
    /// is the ranges' envelope.
    pub fn semi_join(ranges: KeyRanges) -> Self {
        let (lo, hi) = ranges.envelope();
        QuerySpec {
            lo,
            hi,
            op: QueryOp::SemiJoin { ranges },
            slo: None,
        }
    }

    /// A keyed group-by spec folding `agg` over values in `[lo, hi]`.
    pub fn group_by(lo: i64, hi: i64, agg: AggFn) -> Self {
        QuerySpec {
            lo,
            hi,
            op: QueryOp::GroupBy { agg },
            slo: None,
        }
    }
}

/// A seeded Zipf-distributed key column: `n` draws over keys
/// `0..domain`, rank-`r` key with probability `∝ 1 / (r+1)^theta`
/// (`theta = 1.0` is the classic JSPIM hot-key stream). Deterministic in
/// `(n, domain, theta, seed)` via inverse-CDF sampling — the key column
/// the served group-by partitions, aligned row-for-row with the served
/// value column.
pub fn zipf_keys(n: usize, domain: usize, theta: f64, seed: u64) -> Vec<i64> {
    assert!(domain > 0, "zipf domain must be non-empty");
    let mut cdf = Vec::with_capacity(domain);
    let mut total = 0.0f64;
    for r in 0..domain {
        total += 1.0 / ((r + 1) as f64).powf(theta);
        cdf.push(total);
    }
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let u = rng.next_f64() * total;
            cdf.partition_point(|&c| c < u).min(domain - 1) as i64
        })
        .collect()
}

/// A seeded uniform key column over `0..domain` — the unskewed
/// counterpart of [`zipf_keys`].
pub fn uniform_keys(n: usize, domain: usize, seed: u64) -> Vec<i64> {
    assert!(domain > 0, "key domain must be non-empty");
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| rng.next_below(domain as u64) as i64)
        .collect()
}

/// The `l_shipdate` column a [`PredicateMix::TpchQ6Shipdate`] workload
/// scans, as raw epoch-day `i64`s ready for `System::write_column`.
pub fn q6_shipdate_column(db: &TpchDb) -> &[i64] {
    db.lineitem
        .column("l_shipdate")
        .expect("static TPC-H schema")
        .data()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_monotonic() {
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 1000,
            width: 100,
        };
        let a = Workload::poisson(mix, 64, Tick::from_ns(500), 7);
        let b = Workload::poisson(mix, 64, Tick::from_ns(500), 7);
        assert_eq!(a.specs, b.specs);
        let (Arrivals::Open(ta), Arrivals::Open(tb)) = (&a.arrivals, &b.arrivals) else {
            panic!("poisson workloads are open-loop");
        };
        assert_eq!(ta, tb);
        assert!(ta.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        let c = Workload::poisson(mix, 64, Tick::from_ns(500), 8);
        let Arrivals::Open(tc) = &c.arrivals else {
            panic!("poisson workloads are open-loop");
        };
        assert_ne!(ta, tc, "different seeds, different schedules");
    }

    #[test]
    fn q6_mix_draws_first_of_month_year_windows() {
        let specs = PredicateMix::tpch_q6().generate(32, 11);
        let lo_min = Date::from_ymd(1992, 1, 1).raw();
        let hi_max = Date::from_ymd(1998, 12, 31).raw();
        for s in specs {
            assert!(s.lo >= lo_min && s.hi <= hi_max);
            assert_eq!(s.hi - s.lo, 364);
        }
    }

    #[test]
    fn uniform_mix_respects_domain() {
        let specs = PredicateMix::UniformRange {
            min: -50,
            max: 50,
            width: 10,
        }
        .generate(100, 3);
        for s in specs {
            assert!(s.lo >= -50 && s.hi <= 50 && s.hi - s.lo == 10);
        }
    }

    #[test]
    fn degenerate_and_extreme_uniform_domains_never_panic() {
        // Regression (pre-fix this panicked): a reversed domain hit
        // `width.clamp(0, negative)` and `next_range_inclusive(lo > hi)`.
        let specs = PredicateMix::UniformRange {
            min: 50,
            max: -50,
            width: 10,
        }
        .generate(16, 5);
        for s in &specs {
            assert!(s.lo >= -50 && s.hi <= 50 && s.lo <= s.hi);
        }
        // Property: any (min, max, width) triple — including full-i64
        // spans whose width arithmetic would overflow unchecked — yields
        // specs clamped inside the normalised domain.
        use jafar_common::check::forall;
        forall("uniform-mix-extreme-bounds", 64, |rng| {
            let pick = |rng: &mut SplitMix64| match rng.next_below(4) {
                0 => i64::MIN,
                1 => i64::MAX,
                2 => rng.next_range_inclusive(-1000, 1000),
                _ => rng.next_u64() as i64,
            };
            let (min, max) = (pick(rng), pick(rng));
            let width = pick(rng);
            let specs = PredicateMix::UniformRange { min, max, width }.generate(8, rng.next_u64());
            let (dom_lo, dom_hi) = (min.min(max), max.max(min));
            for s in specs {
                assert!(
                    s.lo >= dom_lo && s.hi <= dom_hi && s.lo <= s.hi,
                    "spec [{}, {}] outside domain [{dom_lo}, {dom_hi}] (width {width})",
                    s.lo,
                    s.hi
                );
            }
        });
    }

    #[test]
    fn extreme_q6_window_saturates_instead_of_overflowing() {
        let specs = PredicateMix::TpchQ6Shipdate {
            window_days: i64::MAX,
        }
        .generate(4, 9);
        for s in specs {
            assert!(s.lo <= s.hi, "saturated window stays ordered");
        }
    }

    #[test]
    fn key_ranges_coalesce_sort_and_dedup() {
        let r = KeyRanges::from_keys(&[5, 3, 4, 9, 4, 1]).expect("few ranges");
        assert_eq!(r.as_slice(), &[(1, 1), (3, 5), (9, 9)]);
        assert_eq!(r.envelope(), (1, 9));
        assert!(r.contains(4) && r.contains(9) && !r.contains(2) && !r.contains(10));
        let dense = KeyRanges::from_keys(&(0..1000).collect::<Vec<i64>>()).expect("one range");
        assert_eq!(dense.as_slice(), &[(0, 999)]);
    }

    #[test]
    fn empty_key_set_is_the_empty_predicate() {
        let r = KeyRanges::from_keys(&[]).expect("empty is valid");
        assert!(r.is_empty());
        assert_eq!(r.envelope(), (i64::MAX, i64::MIN));
        assert!(!r.contains(0));
    }

    #[test]
    fn too_many_ranges_is_a_typed_error() {
        // 9 isolated keys → 9 ranges, one past the lane budget.
        let keys: Vec<i64> = (0..9).map(|i| i * 10).collect();
        let err = KeyRanges::from_keys(&keys).expect_err("over budget");
        assert_eq!(err.ranges, 9);
        assert!(err.to_string().contains("9 disjoint ranges"));
        // i64::MAX next to anything never coalesces past it (the +1 guard).
        let r = KeyRanges::from_keys(&[i64::MAX - 1, i64::MAX]).expect("one range");
        assert_eq!(r.as_slice(), &[(i64::MAX - 1, i64::MAX)]);
    }

    #[test]
    fn max_semi_lanes_tracks_the_widest_join() {
        let mut w = Workload::poisson(
            PredicateMix::UniformRange {
                min: 0,
                max: 99,
                width: 10,
            },
            3,
            Tick::from_us(1),
            7,
        );
        assert_eq!(w.max_semi_lanes(), 0);
        w.specs[1] = QuerySpec::semi_join(KeyRanges::from_keys(&[1, 5, 9, 13]).unwrap());
        assert_eq!(w.max_semi_lanes(), 4);
        assert_eq!(w.specs[1].op.name(), "semi-join");
        assert_eq!((w.specs[1].lo, w.specs[1].hi), (1, 13));
    }

    #[test]
    fn zipf_keys_are_deterministic_and_skewed() {
        let a = zipf_keys(4096, 64, 1.0, 42);
        let b = zipf_keys(4096, 64, 1.0, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| (0..64).contains(&k)));
        let hot = a.iter().filter(|&&k| k == 0).count();
        let cold = a.iter().filter(|&&k| k == 63).count();
        assert!(
            hot > 8 * cold.max(1),
            "rank-0 key ({hot}) must dominate rank-63 ({cold})"
        );
        let u = uniform_keys(4096, 64, 42);
        let u_hot = u.iter().filter(|&&k| k == 0).count();
        assert!(u_hot < hot / 2, "uniform keys must not share the skew");
    }

    #[test]
    fn op_mix_assigns_round_robin() {
        let ops = [
            QueryOp::Select,
            QueryOp::SelectCount,
            QueryOp::SelectAgg(AggFn::Sum),
            QueryOp::Project { k: 3 },
        ];
        let w = Workload::poisson(
            PredicateMix::UniformRange {
                min: 0,
                max: 99,
                width: 10,
            },
            10,
            Tick::from_us(1),
            7,
        )
        .with_op_mix(&ops);
        for (i, spec) in w.specs.iter().enumerate() {
            assert_eq!(spec.op, ops[i % ops.len()]);
        }
        assert_eq!(w.specs[3].op.name(), "project");
        assert_eq!(w.specs[2].op.name(), "sum");
    }
}
