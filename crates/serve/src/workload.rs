//! Seeded query streams: predicate mixes and arrival processes.
//!
//! A served workload is (a) a list of range predicates — the *what* — and
//! (b) an arrival process — the *when*. Both are generated from explicit
//! seeds through [`jafar_common::rng::SplitMix64`], so a workload is a
//! pure function of its parameters: the same `(mix, n, seed)` triple
//! always produces the same query stream, which is what makes the serving
//! golden tests (and the bit-identity acceptance check) possible.
//!
//! Two arrival shapes cover the standard serving experiments:
//!
//! - **Open loop** ([`Arrivals::Open`]): absolute submission instants,
//!   typically Poisson ([`Workload::poisson`]). Offered load is fixed by
//!   the mean inter-arrival gap regardless of how the system keeps up —
//!   this is the shape that exposes the saturation knee.
//! - **Closed loop** ([`Arrivals::Closed`]): a fixed client population,
//!   each submitting its next query a think-time after its previous one
//!   finishes (or is shed). Load self-throttles with service time.

use jafar_columnstore::value::Date;
use jafar_common::rng::SplitMix64;
use jafar_common::time::Tick;
use jafar_tpch::gen::TpchDb;

/// The scalar fold of a [`QueryOp::SelectAgg`] query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    /// Sum of qualifying values (wrapping, like the device fold).
    Sum,
    /// Minimum qualifying value.
    Min,
    /// Maximum qualifying value.
    Max,
}

/// The operator a served query runs over its range predicate — the §4
/// extensions lifted into the serving layer. Every operator shares the
/// same inclusive `[lo, hi]` predicate; they differ in what they *emit*
/// (and therefore in bytes moved, which drives the engine's per-operator
/// service estimates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryOp {
    /// Emit the selection bitset (one bit per row) — the paper's core
    /// filter and the cheapest writeback.
    Select,
    /// Emit only the qualifying-row count (one scalar).
    SelectCount,
    /// Emit one folded scalar over the qualifying values.
    SelectAgg(AggFn),
    /// Late-materialization projection: emit the qualifying values of
    /// `k` columns, densely packed — `k`× the value bytes of a select's
    /// bitset-only writeback.
    Project {
        /// Columns reconstructed at the qualifying positions (≥ 1).
        k: u32,
    },
}

impl QueryOp {
    /// Stable operator-kind mnemonic for reports and CSV output
    /// (`Project` collapses to `"project"` regardless of `k`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryOp::Select => "select",
            QueryOp::SelectCount => "count",
            QueryOp::SelectAgg(AggFn::Sum) => "sum",
            QueryOp::SelectAgg(AggFn::Min) => "min",
            QueryOp::SelectAgg(AggFn::Max) => "max",
            QueryOp::Project { .. } => "project",
        }
    }
}

/// One served query: an operator over an inclusive range predicate on
/// the served column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// The operator run over the predicate.
    pub op: QueryOp,
    /// Per-query latency SLO, overriding the workload-wide
    /// [`Workload::slo`] — how multi-tenant workloads give different
    /// tenants different deadlines. `None` falls back to the workload
    /// default.
    pub slo: Option<Tick>,
}

/// How queries are drawn for a workload.
#[derive(Clone, Copy, Debug)]
pub enum PredicateMix {
    /// Uniform random sub-ranges of `[min, max]`, each spanning `width`.
    UniformRange {
        /// Domain lower bound.
        min: i64,
        /// Domain upper bound.
        max: i64,
        /// Width of each query's range (clamped to the domain).
        width: i64,
    },
    /// TPC-H Q6-style shipdate windows: `l_shipdate >= date and
    /// l_shipdate < date + window` with a random first-of-month start
    /// date, mirroring Q6's `[1994-01-01, 1995-01-01)` year slice.
    TpchQ6Shipdate {
        /// Window length in days (Q6 proper uses 365).
        window_days: i64,
    },
}

impl PredicateMix {
    /// The Q6 mix with the query's own one-year window.
    pub fn tpch_q6() -> Self {
        PredicateMix::TpchQ6Shipdate { window_days: 365 }
    }

    /// Draws `n` query specs from the mix, deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<QuerySpec> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| match *self {
                PredicateMix::UniformRange { min, max, width } => {
                    // Normalise a degenerate `min > max` domain instead of
                    // panicking (clamp and the RNG both assert lo ≤ hi),
                    // and saturate every bound derivation so extreme
                    // domains (e.g. spanning the full i64 range) produce a
                    // clamped spec rather than overflowing.
                    let (dom_lo, dom_hi) = (min.min(max), max.max(min));
                    let width = width.clamp(0, dom_hi.saturating_sub(dom_lo));
                    let lo = rng.next_range_inclusive(dom_lo, dom_hi.saturating_sub(width));
                    QuerySpec {
                        lo,
                        hi: lo.saturating_add(width).min(dom_hi),
                        op: QueryOp::Select,
                        slo: None,
                    }
                }
                PredicateMix::TpchQ6Shipdate { window_days } => {
                    // Q6 dates start on the first of a month inside the
                    // lineitem shipdate domain (1992-01 .. 1997-12).
                    let year = 1992 + rng.next_below(6) as i32;
                    let month = 1 + rng.next_below(12) as u32;
                    let lo = Date::from_ymd(year, month, 1).raw();
                    QuerySpec {
                        lo,
                        hi: lo.saturating_add(window_days.max(1) - 1),
                        op: QueryOp::Select,
                        slo: None,
                    }
                }
            })
            .collect()
    }
}

/// The arrival process of a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Arrivals {
    /// Open loop: absolute submission instants, one per query spec,
    /// non-decreasing. Queries arrive on schedule no matter how the
    /// system is doing.
    Open(Vec<Tick>),
    /// Closed loop: `clients` concurrent submitters, each issuing its
    /// next query `think` after its previous one completes or is shed.
    /// The first `clients` queries all arrive at serve start.
    Closed {
        /// Concurrent client count (at least 1).
        clients: u32,
        /// Per-client think time between completion and next submission.
        think: Tick,
    },
}

/// A complete served workload: query specs, their arrival process, and an
/// optional per-query latency SLO.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The query stream, in submission order.
    pub specs: Vec<QuerySpec>,
    /// When each query is submitted.
    pub arrivals: Arrivals,
    /// Workload-wide deadline default: a query submitted at `t` must
    /// finish by `t + slo` — past-due risk triggers the degradation
    /// ladder. Overridden per query by [`QuerySpec::slo`].
    pub slo: Option<Tick>,
}

impl Workload {
    /// Open-loop Poisson workload: `n` queries from `mix`, exponential
    /// inter-arrival gaps with the given mean. Fully determined by
    /// `(mix, n, mean_gap, seed)`.
    pub fn poisson(mix: PredicateMix, n: usize, mean_gap: Tick, seed: u64) -> Self {
        let specs = mix.generate(n, seed);
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mean = mean_gap.as_ps().max(1) as f64;
        let mut at = 0u64;
        let arrivals = (0..n)
            .map(|_| {
                // Inverse-CDF exponential draw; 1 - u is in (0, 1] so the
                // log is finite, and the gap is clamped to >= 1 ps.
                let u = rng.next_f64();
                let gap = (-(1.0 - u).ln() * mean).round() as u64;
                at += gap.max(1);
                Tick::from_ps(at)
            })
            .collect();
        Workload {
            specs,
            arrivals: Arrivals::Open(arrivals),
            slo: None,
        }
    }

    /// Closed-loop workload: `n` queries from `mix` issued by `clients`
    /// concurrent clients with the given think time.
    pub fn closed(mix: PredicateMix, n: usize, clients: u32, think: Tick, seed: u64) -> Self {
        Workload {
            specs: mix.generate(n, seed),
            arrivals: Arrivals::Closed {
                clients: clients.max(1),
                think,
            },
            slo: None,
        }
    }

    /// Attaches a uniform latency SLO (enables the degradation ladder).
    pub fn with_slo(mut self, slo: Tick) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Assigns tenant SLO classes round-robin: query `i` gets
    /// `classes[i % classes.len()]`, so an interleaved multi-tenant mix
    /// (say latency-critical and batch tenants) shares one queue.
    pub fn with_slo_classes(mut self, classes: &[Tick]) -> Self {
        if !classes.is_empty() {
            for (i, spec) in self.specs.iter_mut().enumerate() {
                spec.slo = Some(classes[i % classes.len()]);
            }
        }
        self
    }

    /// Assigns operators round-robin: query `i` runs `ops[i % ops.len()]`
    /// over its generated predicate, turning a single-operator stream
    /// into an interleaved mixed-operator one (the §4 serving mix).
    pub fn with_op_mix(mut self, ops: &[QueryOp]) -> Self {
        if !ops.is_empty() {
            for (i, spec) in self.specs.iter_mut().enumerate() {
                spec.op = ops[i % ops.len()];
            }
        }
        self
    }

    /// Number of queries in the stream.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// The `l_shipdate` column a [`PredicateMix::TpchQ6Shipdate`] workload
/// scans, as raw epoch-day `i64`s ready for `System::write_column`.
pub fn q6_shipdate_column(db: &TpchDb) -> &[i64] {
    db.lineitem
        .column("l_shipdate")
        .expect("static TPC-H schema")
        .data()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_monotonic() {
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 1000,
            width: 100,
        };
        let a = Workload::poisson(mix, 64, Tick::from_ns(500), 7);
        let b = Workload::poisson(mix, 64, Tick::from_ns(500), 7);
        assert_eq!(a.specs, b.specs);
        let (Arrivals::Open(ta), Arrivals::Open(tb)) = (&a.arrivals, &b.arrivals) else {
            panic!("poisson workloads are open-loop");
        };
        assert_eq!(ta, tb);
        assert!(ta.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        let c = Workload::poisson(mix, 64, Tick::from_ns(500), 8);
        let Arrivals::Open(tc) = &c.arrivals else {
            panic!("poisson workloads are open-loop");
        };
        assert_ne!(ta, tc, "different seeds, different schedules");
    }

    #[test]
    fn q6_mix_draws_first_of_month_year_windows() {
        let specs = PredicateMix::tpch_q6().generate(32, 11);
        let lo_min = Date::from_ymd(1992, 1, 1).raw();
        let hi_max = Date::from_ymd(1998, 12, 31).raw();
        for s in specs {
            assert!(s.lo >= lo_min && s.hi <= hi_max);
            assert_eq!(s.hi - s.lo, 364);
        }
    }

    #[test]
    fn uniform_mix_respects_domain() {
        let specs = PredicateMix::UniformRange {
            min: -50,
            max: 50,
            width: 10,
        }
        .generate(100, 3);
        for s in specs {
            assert!(s.lo >= -50 && s.hi <= 50 && s.hi - s.lo == 10);
        }
    }

    #[test]
    fn degenerate_and_extreme_uniform_domains_never_panic() {
        // Regression (pre-fix this panicked): a reversed domain hit
        // `width.clamp(0, negative)` and `next_range_inclusive(lo > hi)`.
        let specs = PredicateMix::UniformRange {
            min: 50,
            max: -50,
            width: 10,
        }
        .generate(16, 5);
        for s in &specs {
            assert!(s.lo >= -50 && s.hi <= 50 && s.lo <= s.hi);
        }
        // Property: any (min, max, width) triple — including full-i64
        // spans whose width arithmetic would overflow unchecked — yields
        // specs clamped inside the normalised domain.
        use jafar_common::check::forall;
        forall("uniform-mix-extreme-bounds", 64, |rng| {
            let pick = |rng: &mut SplitMix64| match rng.next_below(4) {
                0 => i64::MIN,
                1 => i64::MAX,
                2 => rng.next_range_inclusive(-1000, 1000),
                _ => rng.next_u64() as i64,
            };
            let (min, max) = (pick(rng), pick(rng));
            let width = pick(rng);
            let specs = PredicateMix::UniformRange { min, max, width }.generate(8, rng.next_u64());
            let (dom_lo, dom_hi) = (min.min(max), max.max(min));
            for s in specs {
                assert!(
                    s.lo >= dom_lo && s.hi <= dom_hi && s.lo <= s.hi,
                    "spec [{}, {}] outside domain [{dom_lo}, {dom_hi}] (width {width})",
                    s.lo,
                    s.hi
                );
            }
        });
    }

    #[test]
    fn extreme_q6_window_saturates_instead_of_overflowing() {
        let specs = PredicateMix::TpchQ6Shipdate {
            window_days: i64::MAX,
        }
        .generate(4, 9);
        for s in specs {
            assert!(s.lo <= s.hi, "saturated window stays ordered");
        }
    }

    #[test]
    fn op_mix_assigns_round_robin() {
        let ops = [
            QueryOp::Select,
            QueryOp::SelectCount,
            QueryOp::SelectAgg(AggFn::Sum),
            QueryOp::Project { k: 3 },
        ];
        let w = Workload::poisson(
            PredicateMix::UniformRange {
                min: 0,
                max: 99,
                width: 10,
            },
            10,
            Tick::from_us(1),
            7,
        )
        .with_op_mix(&ops);
        for (i, spec) in w.specs.iter().enumerate() {
            assert_eq!(spec.op, ops[i % ops.len()]);
        }
        assert_eq!(w.specs[3].op.name(), "project");
        assert_eq!(w.specs[2].op.name(), "sum");
    }
}
