//! The discrete-event serving engine.
//!
//! # Queue model and the filter-unit pool
//!
//! Queries arrive (open- or closed-loop, see [`crate::workload`]), pass
//! admission control — a bounded FIFO queue that sheds arrivals once
//! [`ServeConfig::max_queue`] queries are waiting, the backpressure signal
//! an upstream client would see as a fast-fail — and are dispatched onto
//! free filter units by the configured [`SchedPolicy`]. The schedulable
//! pool is a first-class [`FilterPool`]: the engine schedules over dense
//! unit ids and the pool maps each id to its `{channel, rank, bank-group}`
//! coordinates, so the same event loop drives a single DIMM's rank vector
//! ([`crate::pool::SingleDimmPool`]) or a channels × ranks pool over an
//! interleaved multi-channel memory system
//! ([`crate::pool::ChannelRankPool`]) — every per-unit resource (device,
//! driver, replica, output buffers) indexes by unit id, and each unit's
//! DRAM traffic goes to its own channel's module. A dispatched query is
//! sharded over up to [`ServeConfig::fanout`] free units and runs as one
//! steppable [`SelectSession`] per shard, exactly the PR-3 rank-parallel
//! machinery, so many in-flight queries interleave in simulated time
//! instead of serializing.
//!
//! # Event loop and determinism
//!
//! The engine is a discrete-event simulation with six event classes —
//! CPU-scan completion, query arrival, shard rescue, unit-free, canary
//! probe, SLO degradation — kept in explicit queues and processed in
//! strict `(time, class, id)` order. Device work is *not* an event:
//! between events the engine always steps the furthest-behind live
//! session (ties by query id then unit), the same min-cursor discipline
//! as [`jafar_core::parallel`], and only processes the next event once
//! every live session's clock has passed it. Stepping a session makes no
//! scheduling decisions, so letting shards run ahead of the event clock
//! is safe: units are timing-independent (channels even more so — they
//! share no DRAM module at all), and every *decision* (admit, shed,
//! dispatch, rescue, probe, degrade) happens at an event, in
//! deterministic order. A serve run is therefore a pure function of
//! `(workload, policy, config, pool)` — the golden tests hold
//! byte-for-byte, and a one-channel pool reproduces the pre-pool engine
//! exactly.
//!
//! # Degradation ladder
//!
//! A dispatched query gets the widest healthy slice of the machine the
//! policy allows: unit-parallel when several units are free, single-
//! device when only one is. Queries with an SLO that are still *queued*
//! are watched by a degradation deadline: at
//! `max(now, host_free, deadline − est_cpu, submitted)` — the last
//! instant the host CPU scan can still make the deadline, never earlier
//! than submission — the query abandons the device queue and runs on the
//! host instead. The CPU rung is timed analytically per operator class
//! ([`ServeConfig::cpu_fixed`] + [`ServeConfig::cpu_per_row`]·rows +
//! [`ServeConfig::cpu_per_out_byte`]·out-bytes, where a select emits one
//! bit per row, a scalar aggregate 8 bytes and a k-column projection up
//! to k·8·rows bytes) but its *result* is computed functionally, so it
//! is bit-identical to the device path — including the aggregate scalar,
//! which a degraded query must return unchanged. Within the device path
//! each unit keeps its own
//! [`ResilientDriver`] across queries, so the PR-1 recovery ladder
//! (watchdog → retries → circuit breaker) composes underneath.
//!
//! # Failure domain: park → rescue → migrate → probe
//!
//! Shards step with the driver's *fail-fast* ladder: a page that
//! exhausts its retries parks the session at its page boundary instead
//! of crawling through the per-page CPU scan. The park marks the unit
//! **suspect** and schedules a rescue event at the park time; the rescue
//! **quarantines** the unit (out of the schedulable pool), salvages the
//! shard's completed bitset prefix functionally — legal even on a dark
//! unit, since only the timed path is perturbed — and requeues the shard
//! *above* host-degrade in the ladder. Dispatch serves rescued shards
//! before queued queries: the salvaged prefix is replayed onto the new
//! unit's buffer as whole 64-byte lines (shards start on
//! 512-row boundaries and parks happen at page boundaries, so the prefix
//! is line-aligned; only the global tail shard can have a partial line,
//! and the bytes past it are unused buffer), then the session resumes
//! from its row cursor under a fresh lease — the new unit may live on a
//! different channel, in which case the replay crosses modules. Migration
//! preserves the min-cursor determinism argument because the rescue
//! decision, the target unit and the resume time are all fixed at events
//! — the resumed session is just another timing-independent shard.
//! Failed one-shot aggregate jobs requeue the same way at shard
//! granularity (the leftover jobs fold on the host, serialized on
//! `host_free`). A quarantined unit dwells, then a **canary** select
//! probes it: success repairs the unit back into the pool (its breaker
//! reset), failure doubles the dwell. While units are quarantined,
//! admission tightens the shedding bound proportionally to the surviving
//! pool; if *no* schedulable unit remains, rescued shards finish
//! functionally on the host and queued queries degrade — so every
//! admitted query still completes, byte-identical, or was explicitly
//! shed at admission.

use crate::health::{HealthConfig, HealthTracker, UnitState};
use crate::policy::SchedPolicy;
use crate::pool::FilterPool;
use crate::report::{Availability, ExecMode, QueryRecord, ServeReport};
use crate::workload::{AggFn, Arrivals, QueryOp, Workload};
use jafar_common::obs::{EventKind, SharedTracer};
use jafar_common::time::Tick;
use jafar_core::aggregate::{AggOp, AggregateJob};
use jafar_core::device::{JafarDevice, MAX_FUSED_LANES};
use jafar_core::driver::{
    FusedSelectRequest, FusedSession, ResilienceConfig, ResilientDriver, SelectRequest,
    SelectSession,
};
use jafar_core::interleave::aligned_chunk;
use jafar_core::predicate::Predicate;
use jafar_core::project::ProjectJob;
use jafar_dram::{DramModule, PhysAddr};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Shards start on 512-row boundaries: 512 rows of bitset are 64 bytes,
/// so per-unit output offsets stay 64-byte aligned (the driver's CPU
/// fallback writes whole aligned lines) and shard boundaries fall on
/// exact bitset bytes.
const CHUNK_ROWS: u64 = 512;

/// Tuning knobs of the serving engine.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Admission-queue bound: arrivals beyond this many waiting queries
    /// are shed (backpressure). At least 1.
    pub max_queue: usize,
    /// Maximum filter units one query is sharded over. At least 1.
    pub fanout: usize,
    /// Fixed cost of a degraded host CPU scan (setup + planning).
    pub cpu_fixed: Tick,
    /// Per-row cost of a degraded host CPU scan.
    pub cpu_per_row: Tick,
    /// Per-output-byte cost of a degraded host CPU scan — what
    /// differentiates the operator classes in the service estimate: a
    /// select materializes one bit per row, a scalar aggregate a single
    /// 8-byte value, a k-column projection up to k·8·rows bytes.
    pub cpu_per_out_byte: Tick,
    /// Recovery policy for the per-unit resilient drivers.
    pub resilience: ResilienceConfig,
    /// Unit health lifecycle knobs (quarantine dwell, canary shape).
    pub health: HealthConfig,
    /// Shared-scan fusion window: when a plain select is dispatched, up
    /// to `fuse_window - 1` more selects waiting in the queue (they all
    /// scan the same served column) ride the same device pass as extra
    /// predicate lanes, each materializing its own bitset. Clamped to
    /// [`MAX_FUSED_LANES`]; `1` (the default) disables fusion and keeps
    /// the solo dispatch path byte-for-byte. Callers sizing output
    /// buffers must provide `fuse_window` bitset slots per unit (one
    /// full-column bitset rounded up to a 64-byte line, per lane).
    pub fuse_window: usize,
    /// Drain every arrival due at an event's instant in that one event
    /// (admitting/shedding the whole batch under the capacity-aware
    /// bound) instead of burning one event per arrival. On: the
    /// default. Identical decisions on fault-free runs — the batch is
    /// processed in the same `(time, id)` order the per-arrival events
    /// would have been.
    pub batch_admission: bool,
    /// Split a group-by's hot keys' rows across units round-robin
    /// instead of hashing each key onto one unit (the JSPIM-style skew
    /// guard). Sound because the per-key fold merges commutatively;
    /// results are byte-identical either way, only the timing differs.
    pub skew_split: bool,
    /// Rows the admission-time skew detector samples from the
    /// qualifying set (deterministic stride sampling). At least 1.
    pub skew_sample: usize,
    /// A key is *hot* when it holds at least this percent of the
    /// sampled rows. Clamped to `1..=100`.
    pub skew_hot_pct: u32,
    /// Simulated instant the serve run (and its first arrivals) starts.
    pub start: Tick,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_queue: 16,
            fanout: 4,
            cpu_fixed: Tick::from_us(2),
            cpu_per_row: Tick::from_ps(1000),
            cpu_per_out_byte: Tick::from_ps(250),
            resilience: ResilienceConfig::default(),
            health: HealthConfig::default(),
            fuse_window: 1,
            batch_admission: true,
            skew_split: true,
            skew_sample: 64,
            skew_hot_pct: 25,
            start: Tick::ZERO,
        }
    }
}

/// A violated piece of engine bookkeeping — states the event loop can
/// only reach through a bug, surfaced as a typed error (and an
/// `ErrorSurfaced` trace event) instead of a panic, per the workspace's
/// de-panic convention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineInvariant {
    /// The EDF picker ran against an empty queue.
    EmptyQueue,
    /// A queue index produced by enumeration no longer resolves.
    QueueIndexVanished,
    /// A shard completed for a query with no in-flight bookkeeping.
    MissingInflight {
        /// The orphaned query.
        query: u32,
    },
    /// A degrade event fired for a query that is not queued.
    DegradeCandidateMissing {
        /// The missing query.
        query: u32,
    },
    /// A rescue event fired for an empty parked-shard slot.
    MissingParkedShard {
        /// The empty slot.
        slot: u32,
    },
}

impl EngineInvariant {
    /// Short machine-readable mnemonic (the `ErrorSurfaced` detail).
    pub fn name(&self) -> &'static str {
        match self {
            EngineInvariant::EmptyQueue => "empty-queue",
            EngineInvariant::QueueIndexVanished => "queue-index-vanished",
            EngineInvariant::MissingInflight { .. } => "missing-inflight",
            EngineInvariant::DegradeCandidateMissing { .. } => "degrade-candidate-missing",
            EngineInvariant::MissingParkedShard { .. } => "missing-parked-shard",
        }
    }
}

impl fmt::Display for EngineInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineInvariant::EmptyQueue => write!(f, "EDF pick on an empty admission queue"),
            EngineInvariant::QueueIndexVanished => {
                write!(f, "admission-queue index vanished between pick and removal")
            }
            EngineInvariant::MissingInflight { query } => {
                write!(f, "query {query} finished a shard with no in-flight entry")
            }
            EngineInvariant::DegradeCandidateMissing { query } => {
                write!(f, "degrade candidate {query} is not in the admission queue")
            }
            EngineInvariant::MissingParkedShard { slot } => {
                write!(f, "rescue event for empty parked-shard slot {slot}")
            }
        }
    }
}

impl std::error::Error for EngineInvariant {}

/// Borrowed machine state the engine schedules onto. The caller (usually
/// `jafar_sim::System::serve`) owns the DRAM modules, the pool topology,
/// the per-unit devices and drivers, and the per-unit column replicas +
/// output buffers; the engine only decides who runs where and when.
pub struct ServeEnv<'a> {
    /// One DRAM module per memory channel, indexed by
    /// [`crate::pool::FilterUnit::channel`]. A single-channel pool is
    /// `vec![&mut module]` — exactly the pre-pool engine's machine.
    pub modules: Vec<&'a mut DramModule>,
    /// The schedulable pool topology: maps dense unit ids to
    /// `{channel, rank, bank-group}` coordinates. `pool.units()` must
    /// equal every per-unit slice length and `pool.channels()` the
    /// module count.
    pub pool: &'a dyn FilterPool,
    /// One JAFAR device per filter unit; `devices[u]` serves unit `u`.
    pub devices: &'a mut [JafarDevice],
    /// One persistent resilient driver per unit (breaker state spans
    /// queries). Must be as long as `devices`.
    pub drivers: &'a mut [ResilientDriver],
    /// Per-unit 64-byte-aligned base of the column replica on that unit —
    /// a channel-local address within `modules[pool.unit(u).channel]`.
    pub replicas: &'a [PhysAddr],
    /// Per-unit 64-byte-aligned base of that unit's output bitset buffer
    /// (channel-local; reused across queries; a unit runs one shard at a
    /// time).
    pub outs: &'a [PhysAddr],
    /// Per-unit 64-byte-aligned base of that unit's packed projection
    /// output region (channel-local; reused across queries; sized for
    /// the full column, `values.len() · 8` bytes).
    pub proj_outs: &'a [PhysAddr],
    /// Host copy of the column, for the degraded CPU rung's functional
    /// result. Every query scans this full column.
    pub values: &'a [i64],
    /// Host copy of the group-by key column, aligned row-for-row with
    /// `values`. Empty when the workload has no [`QueryOp::GroupBy`]
    /// queries; otherwise must be exactly as long as `values`.
    pub keys: &'a [i64],
    /// Per-unit 64-byte-aligned base of that unit's group-by staging
    /// region (channel-local; reused across queries; sized for the full
    /// column, `values.len() · 8` bytes): partitioned qualifying values
    /// are staged contiguously per group there, so each group folds as
    /// one device aggregate kernel. Empty when the workload has no
    /// group-by queries.
    pub stage_outs: &'a [PhysAddr],
    /// Trace sink for the `QueryAdmitted/Started/Done/Shed` events.
    pub tracer: &'a SharedTracer,
}

/// The steppable session driving one in-flight shard: a solo
/// [`SelectSession`] for an unfused query, or a [`FusedSession`]
/// evaluating one predicate lane per fused query in a single shared
/// scan of the shard's rows.
enum ShardSession {
    Solo(SelectSession),
    Fused(FusedSession),
}

impl ShardSession {
    fn cursor(&self) -> Tick {
        match self {
            ShardSession::Solo(s) => s.cursor(),
            ShardSession::Fused(s) => s.cursor(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            ShardSession::Solo(s) => s.is_done(),
            ShardSession::Fused(s) => s.is_done(),
        }
    }

    fn is_parked(&self) -> bool {
        match self {
            ShardSession::Solo(s) => s.is_parked(),
            ShardSession::Fused(s) => s.is_parked(),
        }
    }

    fn next_row(&self) -> u64 {
        match self {
            ShardSession::Solo(s) => s.next_row(),
            ShardSession::Fused(s) => s.next_row(),
        }
    }

    /// Per-lane match counts so far — one entry for a solo shard.
    fn matched(&self) -> Vec<u64> {
        match self {
            ShardSession::Solo(s) => vec![s.matched()],
            ShardSession::Fused(s) => s.matched().to_vec(),
        }
    }
}

/// One in-flight shard: which queries and filter unit it belongs to and
/// where its rows sit within the column. `qids` has one entry per
/// predicate lane of the shard's scan — exactly one for a solo shard,
/// up to [`MAX_FUSED_LANES`] for a fused one.
struct ActiveShard {
    qids: Vec<u32>,
    unit: usize,
    off: u64,
    rows: u64,
    session: ShardSession,
}

/// Progress of a dispatched device query across its shards.
struct Inflight {
    remaining: u32,
    matched: u64,
    end: Tick,
    /// Per-shard packed projection slices as `(row offset, values)`;
    /// concatenated in row order once the last shard lands.
    proj: Vec<(u64, Vec<i64>)>,
}

/// A shard frozen at its page boundary because its unit's fail-fast
/// ladder gave up, waiting for its rescue event. Per-lane match counts
/// ride along (`matched[i]` belongs to `qids[i]`).
struct ParkedShard {
    qids: Vec<u32>,
    from_unit: usize,
    off: u64,
    rows: u64,
    rows_done: u64,
    matched: Vec<u64>,
}

/// A rescued shard in the requeue rung: cursor plus the salvaged bitset
/// prefix of every predicate lane, ready to resume on any healthy unit
/// (or finish on the host if none remains).
struct RescueShard {
    qids: Vec<u32>,
    from_unit: usize,
    off: u64,
    rows: u64,
    rows_done: u64,
    matched: Vec<u64>,
    prefixes: Vec<Vec<u8>>,
}

/// Event classes, in tie-break priority order at equal times: CPU
/// completions release the host before new decisions, arrivals enter the
/// queue before dispatch can consider them, rescues requeue failed
/// shards before unit-free dispatch hands out the freed capacity, canary
/// probes run after dispatch has first claim on the instant, and
/// degradation — the last resort — only fires if nothing else happens.
const CLASS_CPU_DONE: u8 = 0;
const CLASS_ARRIVAL: u8 = 1;
const CLASS_RESCUE: u8 = 2;
const CLASS_UNIT_FREE: u8 = 3;
const CLASS_PROBE: u8 = 4;
const CLASS_DEGRADE: u8 = 5;

/// The serve engine as a steppable object. [`run_serve_checked`] drives
/// it to completion in one call; the cluster tier ([`crate::cluster`])
/// instead interleaves N node engines by advancing each only up to the
/// next fabric event ([`Engine::advance_until`]) and injecting routed
/// arrivals as they are delivered ([`Engine::inject_arrival`]). Both
/// drivers replay the identical `(time, class, id)` decision order, so a
/// node engine's trace is a pure function of the arrivals it is fed.
pub(crate) struct Engine<'a, 'e> {
    env: ServeEnv<'e>,
    cfg: &'a ServeConfig,
    policy: SchedPolicy,
    /// Per-query SLO (spec override or workload default), by query id.
    slos: Vec<Option<Tick>>,
    has_slo: bool,
    think: Option<Tick>,
    records: Vec<QueryRecord>,
    queue: VecDeque<u32>,
    active: Vec<ActiveShard>,
    inflight: Vec<Option<Inflight>>,
    unit_busy: Vec<bool>,
    served_count: Vec<u64>,
    health: HealthTracker,
    /// Slab of shards frozen between their park and their rescue event
    /// (the rescue event's payload is the slot index).
    parked: Vec<Option<ParkedShard>>,
    /// The requeue rung: rescued shards waiting for a healthy unit.
    rescue_queue: VecDeque<RescueShard>,
    arrivals: BinaryHeap<Reverse<(Tick, u32)>>,
    unit_free_ev: BinaryHeap<Reverse<(Tick, u32)>>,
    cpu_done: BinaryHeap<Reverse<(Tick, u32)>>,
    rescue_ev: BinaryHeap<Reverse<(Tick, u32)>>,
    probe_ev: BinaryHeap<Reverse<(Tick, u32)>>,
    migrations: u64,
    requeues: u64,
    sheds_tightened: u64,
    events: u64,
    host_free: Tick,
    now: Tick,
    next_spec: usize,
    makespan: Tick,
    /// Queries finished since the last [`Engine::take_finished`] — the
    /// completion feed the cluster tier turns into response messages.
    finished: Vec<u32>,
    /// Queries shed since the last [`Engine::take_shed`].
    shed: Vec<u32>,
}

/// Runs `workload` against the machine in `env` under `policy` and
/// returns the per-query records and latency aggregates.
///
/// # Panics
/// Panics if `env` has no units, mismatched per-unit slices, a module
/// count that disagrees with the pool's channel count, an empty column,
/// or (unreachable short of an engine bug) a violated bookkeeping
/// invariant — use [`run_serve_checked`] to observe the latter as a
/// typed error instead.
pub fn run_serve(
    env: ServeEnv<'_>,
    workload: &Workload,
    policy: SchedPolicy,
    cfg: &ServeConfig,
) -> ServeReport {
    run_serve_checked(env, workload, policy, cfg)
        .unwrap_or_else(|inv| panic!("engine invariant violated: {inv}"))
}

/// [`run_serve`] with the engine's bookkeeping invariants surfaced as a
/// typed [`EngineInvariant`] (and an `ErrorSurfaced` trace event) instead
/// of a panic.
///
/// # Panics
/// Panics if `env` has no units, mismatched per-unit slices, a module
/// count that disagrees with the pool's channel count, or an empty
/// column — those are caller contract violations, not engine state.
///
/// # Errors
/// Returns the first violated [`EngineInvariant`]; the trace stream
/// carries a matching `ErrorSurfaced { site: "serve-engine" }` event.
pub fn run_serve_checked(
    env: ServeEnv<'_>,
    workload: &Workload,
    policy: SchedPolicy,
    cfg: &ServeConfig,
) -> Result<ServeReport, EngineInvariant> {
    let mut eng = Engine::build(env, workload, policy, cfg);
    eng.seed_arrivals(&workload.arrivals);
    eng.run()?;
    debug_assert!(
        eng.records
            .iter()
            .all(|r| r.done.is_some() || r.mode == ExecMode::Shed),
        "every query completes or is shed"
    );
    Ok(eng.into_report())
}

/// Bitset lanes a unit's output buffer must hold to serve `workload`
/// under `cfg`: the fusion window, or the widest semi-join's range count
/// if that is larger — a semi-join's ranges always fuse into one scan,
/// even when `fuse_window` is 1. Every `ServeEnv` allocator sizes
/// `outs[u]` as `out_lanes(..) ·` one 64-byte-rounded full-column bitset.
pub fn out_lanes(cfg: &ServeConfig, workload: &Workload) -> u64 {
    (cfg.fuse_window.max(1) as u64).max(workload.max_semi_lanes() as u64)
}

impl<'a, 'e> Engine<'a, 'e> {
    /// Constructs an idle engine over `env` with one pending record per
    /// workload spec and **no arrivals scheduled**. [`run_serve_checked`]
    /// follows this with [`Engine::seed_arrivals`]; the cluster tier
    /// instead feeds arrivals one at a time via
    /// [`Engine::inject_arrival`] as the fabric delivers them.
    ///
    /// # Panics
    /// Panics if `env` has no units, mismatched per-unit slices, a module
    /// count that disagrees with the pool's channel count, or an empty
    /// column — caller contract violations, not engine state.
    pub(crate) fn build(
        env: ServeEnv<'e>,
        workload: &Workload,
        policy: SchedPolicy,
        cfg: &'a ServeConfig,
    ) -> Engine<'a, 'e> {
        let nunits = env.pool.units();
        assert!(nunits > 0, "serving needs at least one filter unit");
        assert_eq!(env.devices.len(), nunits, "one device per unit");
        assert_eq!(env.drivers.len(), nunits, "one driver per unit");
        assert_eq!(env.replicas.len(), nunits, "one column replica per unit");
        assert_eq!(env.outs.len(), nunits, "one output buffer per unit");
        assert_eq!(
            env.proj_outs.len(),
            nunits,
            "one projection buffer per unit"
        );
        assert_eq!(
            env.modules.len(),
            env.pool.channels(),
            "one DRAM module per pool channel"
        );
        assert!(!env.values.is_empty(), "cannot serve an empty column");
        assert!(
            env.keys.is_empty() || env.keys.len() == env.values.len(),
            "group-by key column must align row-for-row with the served column"
        );
        if workload
            .specs
            .iter()
            .any(|s| matches!(s.op, QueryOp::GroupBy { .. }))
        {
            assert_eq!(
                env.keys.len(),
                env.values.len(),
                "a group-by workload needs a key column"
            );
            assert_eq!(
                env.stage_outs.len(),
                nunits,
                "a group-by workload needs one staging buffer per unit"
            );
        }

        let n = workload.len();
        let records: Vec<QueryRecord> = workload
            .specs
            .iter()
            .enumerate()
            .map(|(i, s)| QueryRecord {
                id: i as u32,
                lo: s.lo,
                hi: s.hi,
                op: s.op,
                submitted: Tick::ZERO,
                started: None,
                done: None,
                deadline: Tick::MAX,
                mode: ExecMode::Pending,
                matched: 0,
                bitset: Vec::new(),
                agg: None,
                projected: Vec::new(),
                groups: Vec::new(),
            })
            .collect();

        let slos: Vec<Option<Tick>> = workload
            .specs
            .iter()
            .map(|s| s.slo.or(workload.slo))
            .collect();
        let has_slo = slos.iter().any(|s| s.is_some());
        Engine {
            cfg,
            policy,
            slos,
            has_slo,
            think: None,
            records,
            queue: VecDeque::new(),
            active: Vec::new(),
            inflight: (0..n).map(|_| None).collect(),
            unit_busy: vec![false; nunits],
            served_count: vec![0; nunits],
            health: HealthTracker::new(nunits, cfg.health),
            parked: Vec::new(),
            rescue_queue: VecDeque::new(),
            arrivals: BinaryHeap::new(),
            unit_free_ev: BinaryHeap::new(),
            cpu_done: BinaryHeap::new(),
            rescue_ev: BinaryHeap::new(),
            probe_ev: BinaryHeap::new(),
            migrations: 0,
            requeues: 0,
            sheds_tightened: 0,
            events: 0,
            host_free: cfg.start,
            now: cfg.start,
            next_spec: n,
            makespan: cfg.start,
            finished: Vec::new(),
            shed: Vec::new(),
            env,
        }
    }

    /// Schedules the workload's own arrival process: every open-loop
    /// instant up front, or the first client wave of a closed loop.
    pub(crate) fn seed_arrivals(&mut self, arrivals: &Arrivals) {
        let n = self.records.len();
        match arrivals {
            Arrivals::Open(times) => {
                assert_eq!(times.len(), n, "one arrival instant per query");
                for (i, &t) in times.iter().enumerate() {
                    self.arrivals.push(Reverse((self.cfg.start + t, i as u32)));
                }
                self.next_spec = n;
            }
            Arrivals::Closed { clients, think } => {
                self.think = Some(*think);
                let first = (*clients as usize).min(n);
                for i in 0..first {
                    self.arrivals.push(Reverse((self.cfg.start, i as u32)));
                }
                self.next_spec = first;
            }
        }
    }

    /// Consumes the finished engine into its [`ServeReport`], stamping
    /// pool coordinates onto the per-unit availability ledger.
    pub(crate) fn into_report(mut self) -> ServeReport {
        self.health.finalize(self.makespan);
        let nunits = self.unit_busy.len();
        let availability = Availability {
            units: (0..nunits)
                .map(|u| {
                    // The tracker knows only unit ids; stamp the pool's
                    // physical coordinates onto the record here.
                    let mut a = self.health.availability(u);
                    let fu = self.env.pool.unit(u);
                    a.channel = fu.channel as u32;
                    a.rank = fu.rank as u32;
                    a
                })
                .collect(),
            migrations: self.migrations,
            requeues: self.requeues,
            sheds_tightened: self.sheds_tightened,
        };
        ServeReport {
            records: self.records,
            makespan: self.makespan.saturating_sub(self.cfg.start),
            policy: self.policy.name(),
            availability,
            events: self.events,
        }
    }

    /// Schedules an externally routed arrival of query `qid` at absolute
    /// time `t` (the fabric's delivery instant). Sound as long as `t` is
    /// not in the engine's processed past — the cluster loop guarantees
    /// this by advancing a node only up to the next fabric event before
    /// injecting. (Times in the past would be clamped to `now` by the
    /// event loop rather than corrupting state, but then delivery order
    /// and admission snapshots would no longer replay.)
    pub(crate) fn inject_arrival(&mut self, qid: u32, t: Tick) {
        self.arrivals.push(Reverse((t, qid)));
    }

    /// When the engine next makes a decision: the earlier of its best
    /// pending event and its furthest-behind active shard's clock.
    /// `None` when fully drained (the run-loop termination condition).
    pub(crate) fn next_time(&self) -> Option<Tick> {
        let ev = self.best_event().map(|(t, _, _)| t);
        let shard = self.active.iter().map(|s| s.session.cursor()).min();
        match (ev, shard) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Queries finished since the last call, in completion order.
    pub(crate) fn take_finished(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.finished)
    }

    /// Queries shed by admission since the last call.
    pub(crate) fn take_shed(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.shed)
    }

    /// The record of query `qid` as of now (pending fields still open).
    pub(crate) fn record(&self, qid: u32) -> &QueryRecord {
        &self.records[qid as usize]
    }

    /// Current admission-queue depth — the router's load signal.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Units currently in the schedulable pool (healthy, not
    /// quarantined) — the router's health signal.
    pub(crate) fn schedulable_units(&self) -> usize {
        self.health.schedulable_count()
    }
}

impl Engine<'_, '_> {
    fn run(&mut self) -> Result<(), EngineInvariant> {
        self.advance_until(Tick::MAX)
    }

    /// Runs the engine forward, processing every event and shard step
    /// whose decision time is `<= limit`, then stops. `limit ==
    /// Tick::MAX` reproduces a full run exactly. Repeated calls with
    /// non-decreasing limits replay the identical `(time, class, id)`
    /// decision sequence a single full run would make over the same
    /// arrivals, because the loop's choice at each iteration depends
    /// only on current state and stopping merely postpones it.
    pub(crate) fn advance_until(&mut self, limit: Tick) -> Result<(), EngineInvariant> {
        let r = self.advance_until_inner(limit);
        if let Err(inv) = &r {
            self.env.tracer.emit(
                self.now,
                EventKind::ErrorSurfaced {
                    site: "serve-engine",
                    detail: inv.name(),
                },
            );
        }
        r
    }

    fn advance_until_inner(&mut self, limit: Tick) -> Result<(), EngineInvariant> {
        loop {
            let event = self.best_event();
            // Always advance the furthest-behind shard first; decisions
            // only happen at events, once every shard's clock passed them.
            let min_shard = self
                .active
                .iter()
                .enumerate()
                .map(|(i, s)| ((s.session.cursor(), s.qids[0], s.unit), i))
                .min()
                .map(|((cursor, _, _), i)| (cursor, i));
            match (min_shard, event) {
                (Some((cursor, idx)), Some((t, _, _))) if cursor <= t => {
                    if cursor > limit {
                        break;
                    }
                    self.step_shard(idx)?;
                }
                (Some((cursor, idx)), None) => {
                    if cursor > limit {
                        break;
                    }
                    self.step_shard(idx)?;
                }
                (_, Some((t, class, payload))) => {
                    if t > limit {
                        break;
                    }
                    self.process_event(t, class, payload)?;
                }
                (None, None) => break,
            }
        }
        Ok(())
    }

    /// True while any query's fate is still undecided. Canary probes are
    /// gated on this: once every query is resolved, pending probes are
    /// moot and processing them would only stretch the run.
    fn work_pending(&self) -> bool {
        !self.queue.is_empty()
            || !self.rescue_queue.is_empty()
            || !self.active.is_empty()
            || !self.arrivals.is_empty()
            || !self.cpu_done.is_empty()
            || !self.rescue_ev.is_empty()
            || self.inflight.iter().any(Option::is_some)
    }

    /// The next event as `(time, class, payload)`, minimal by `(time,
    /// class)`; within one class the heap already yields the smallest id.
    fn best_event(&self) -> Option<(Tick, u8, u32)> {
        let mut best: Option<(Tick, u8, u32)> = None;
        let mut consider = |t: Tick, class: u8, payload: u32| {
            let t = t.max(self.now);
            if best.is_none_or(|(bt, bc, _)| (t, class) < (bt, bc)) {
                best = Some((t, class, payload));
            }
        };
        if let Some(&Reverse((t, qid))) = self.cpu_done.peek() {
            consider(t, CLASS_CPU_DONE, qid);
        }
        if let Some(&Reverse((t, qid))) = self.arrivals.peek() {
            consider(t, CLASS_ARRIVAL, qid);
        }
        if let Some(&Reverse((t, slot))) = self.rescue_ev.peek() {
            consider(t, CLASS_RESCUE, slot);
        }
        if let Some(&Reverse((t, unit))) = self.unit_free_ev.peek() {
            consider(t, CLASS_UNIT_FREE, unit);
        }
        if self.work_pending() {
            if let Some(&Reverse((t, unit))) = self.probe_ev.peek() {
                consider(t, CLASS_PROBE, unit);
            }
        }
        if let Some((t, qid)) = self.degrade_candidate() {
            consider(t, CLASS_DEGRADE, qid);
        }
        best
    }

    fn process_event(&mut self, t: Tick, class: u8, payload: u32) -> Result<(), EngineInvariant> {
        self.now = t;
        self.events += 1;
        match class {
            CLASS_CPU_DONE => {
                self.cpu_done.pop();
                self.finish_query(payload, t);
            }
            CLASS_ARRIVAL => {
                self.arrivals.pop();
                self.arrive(payload, t)?;
                if self.cfg.batch_admission {
                    // Batched admission: every arrival due by this
                    // instant is admitted or shed in this one event, in
                    // the same `(time, id)` heap order its own events
                    // would have fired — one queue drain instead of an
                    // event per arrival. A closed-loop re-arrival with
                    // zero think time lands at `t` and joins the batch.
                    while let Some(&Reverse((at, qid))) = self.arrivals.peek() {
                        if at.max(self.now) > t {
                            break;
                        }
                        // Replay fidelity: the run loop steps any shard
                        // whose clock lags the next event before
                        // processing it, so if a lagging shard exists
                        // the one-at-a-time engine would interleave a
                        // shard step here. Hand back to the loop — the
                        // remaining arrivals fire as their own events in
                        // the identical (time, class, id) order.
                        let lagging = self.active.iter().any(|s| s.session.cursor() <= t);
                        if lagging {
                            break;
                        }
                        self.arrivals.pop();
                        self.arrive(qid, t)?;
                    }
                }
            }
            CLASS_RESCUE => {
                self.rescue_ev.pop();
                self.rescue(payload, t)?;
            }
            CLASS_UNIT_FREE => {
                self.unit_free_ev.pop();
                self.unit_busy[payload as usize] = false;
                self.try_dispatch(t)?;
            }
            CLASS_PROBE => {
                self.probe_ev.pop();
                self.probe(payload, t)?;
            }
            _ => self.degrade(payload, t)?,
        }
        Ok(())
    }

    /// The current admission bound: the configured queue capacity scaled
    /// by the surviving schedulable pool, so quarantined units tighten
    /// shedding instead of letting the queue build up behind capacity the
    /// machine no longer has. With every unit healthy this is exactly
    /// `max_queue`.
    fn admission_bound(&self) -> usize {
        let cap = self.cfg.max_queue.max(1);
        (cap * self.health.schedulable_count())
            .div_ceil(self.unit_busy.len())
            .max(1)
    }

    fn arrive(&mut self, qid: u32, t: Tick) -> Result<(), EngineInvariant> {
        let slo = self.slos[qid as usize];
        let rec = &mut self.records[qid as usize];
        rec.submitted = t;
        rec.deadline = slo.map_or(Tick::MAX, |s| t + s);
        let bound = self.admission_bound();
        // One pre-push depth snapshot feeds both the shed decision and
        // the trace events: the depth the arrival *observed*. Emitting
        // the post-push length on the admit branch (as this path once
        // did) made the two branches disagree by one at the boundary —
        // harmless solo, but a skew batched admission would compound.
        let depth = self.queue.len() as u32;
        if self.queue.len() >= bound {
            if self.queue.len() < self.cfg.max_queue.max(1) {
                // Only the tightened bound shed this arrival; the full
                // queue would have admitted it.
                self.sheds_tightened += 1;
            }
            let rec = &mut self.records[qid as usize];
            rec.mode = ExecMode::Shed;
            self.shed.push(qid);
            self.env
                .tracer
                .emit(t, EventKind::QueryShed { query: qid, depth });
            self.schedule_next_client(t);
        } else {
            self.queue.push_back(qid);
            self.env
                .tracer
                .emit(t, EventKind::QueryAdmitted { query: qid, depth });
            self.try_dispatch(t)?;
            self.drain_to_host_if_stranded(t)?;
        }
        Ok(())
    }

    /// In a closed loop, a finished (or shed) query frees its client to
    /// submit the next spec one think-time later.
    fn schedule_next_client(&mut self, t: Tick) {
        if let Some(think) = self.think {
            if self.next_spec < self.records.len() {
                self.arrivals
                    .push(Reverse((t + think, self.next_spec as u32)));
                self.next_spec += 1;
            }
        }
    }

    /// A free unit in the schedulable pool, lowest id first.
    fn free_healthy_unit(&self) -> Option<usize> {
        (0..self.unit_busy.len()).find(|&u| !self.unit_busy[u] && self.health.is_schedulable(u))
    }

    /// Per-channel count of busy schedulable units — the cross-channel
    /// load signal the affinity policy balances on.
    fn channel_depths(&self) -> Vec<usize> {
        let mut depths = vec![0usize; self.env.pool.channels()];
        for u in 0..self.unit_busy.len() {
            if self.unit_busy[u] {
                depths[self.env.pool.unit(u).channel] += 1;
            }
        }
        depths
    }

    /// Drains the requeue rung, then the admission queue, onto free
    /// healthy units until one of them runs out. Rescued shards go first:
    /// requeue-on-failure sits *above* host-degrade in the ladder, and a
    /// half-done shard blocks its whole query.
    fn try_dispatch(&mut self, t: Tick) -> Result<(), EngineInvariant> {
        while !self.rescue_queue.is_empty() {
            let Some(u) = self.free_healthy_unit() else {
                break;
            };
            let shard = self
                .rescue_queue
                .pop_front()
                .ok_or(EngineInvariant::EmptyQueue)?;
            self.migrate_shard(shard, u, t);
        }
        loop {
            if self.queue.is_empty() || !self.rescue_queue.is_empty() {
                return Ok(());
            }
            let mut free: Vec<usize> = (0..self.unit_busy.len())
                .filter(|&u| !self.unit_busy[u] && self.health.is_schedulable(u))
                .collect();
            if free.is_empty() {
                return Ok(());
            }
            let pick = match self.policy {
                SchedPolicy::Fifo | SchedPolicy::RankAffinity => 0,
                // Least laxity by host-rung estimate: with heterogeneous
                // operator classes the query whose deadline minus service
                // estimate comes first is the most urgent, not the one
                // whose bare deadline does. Uniform mixes degenerate to
                // plain deadline order.
                SchedPolicy::Edf => self
                    .queue
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &q)| {
                        let rec = &self.records[q as usize];
                        (
                            rec.deadline.saturating_sub(self.cpu_estimate(rec.op)),
                            rec.deadline,
                            q,
                        )
                    })
                    .map(|(i, _)| i)
                    .ok_or(EngineInvariant::EmptyQueue)?,
            };
            let qid = self
                .queue
                .remove(pick)
                .ok_or(EngineInvariant::QueueIndexVanished)?;
            // Shared-scan fusion: a plain select pulls more waiting
            // selects into its device pass as extra predicate lanes —
            // they all scan the same served column, so grouping "by
            // column" is grouping every queued select. Co-riders join
            // in queue order behind the policy's pick; projections keep
            // their solo path (their chained projection passes don't
            // fuse) and scalar aggregates their one-shot kernels.
            let mut group = vec![qid];
            let cap = self.cfg.fuse_window.min(MAX_FUSED_LANES);
            if cap >= 2 && self.records[qid as usize].op == QueryOp::Select {
                let mut i = 0;
                while group.len() < cap && i < self.queue.len() {
                    if self.records[self.queue[i] as usize].op == QueryOp::Select {
                        let q = self
                            .queue
                            .remove(i)
                            .ok_or(EngineInvariant::QueueIndexVanished)?;
                        group.push(q);
                    } else {
                        i += 1;
                    }
                }
            }
            if self.policy == SchedPolicy::RankAffinity {
                // Cross-channel load balance folds into affinity: prefer
                // units on the least-loaded channel, then closed breakers,
                // then the least-served unit. On a single-channel pool the
                // depth key is constant and this degenerates to the
                // pre-pool affinity order.
                let depths = self.channel_depths();
                free.sort_by_key(|&u| {
                    (
                        depths[self.env.pool.unit(u).channel],
                        self.env.drivers[u].breaker_open(),
                        self.served_count[u],
                        u,
                    )
                });
            }
            self.dispatch_device(&group, &free, t);
        }
    }

    /// Byte stride between per-lane bitset slots within a unit's output
    /// buffer: the full column's bitset rounded up to a whole 64-byte
    /// line, so every lane's slot starts block-aligned (the device
    /// requires it, and the CPU fallback writes whole aligned lines).
    /// Lane 0 sits at the buffer base — solo dispatch is the one-lane
    /// special case and its addressing is unchanged.
    fn lane_stride(&self) -> u64 {
        (self.env.values.len() as u64)
            .div_ceil(8)
            .next_multiple_of(64)
    }

    /// Freezes a failed shard into the parked slab and schedules its
    /// rescue event; the unit is suspect until the rescue confirms. The
    /// unit's busy flag stays set — a dark unit frees no capacity. A
    /// fused shard parks all its lanes as one: they share the scan, so
    /// they share the failure.
    #[allow(clippy::too_many_arguments)]
    fn park_shard(
        &mut self,
        qids: Vec<u32>,
        unit: usize,
        off: u64,
        rows: u64,
        rows_done: u64,
        matched: Vec<u64>,
        at: Tick,
    ) {
        if self.health.mark_suspect(unit) {
            self.env.tracer.emit(
                at,
                EventKind::RankHealth {
                    rank: unit as u32,
                    state: UnitState::Suspect.name(),
                },
            );
        }
        let slot = self
            .parked
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.parked.push(None);
                self.parked.len() - 1
            });
        self.parked[slot] = Some(ParkedShard {
            qids,
            from_unit: unit,
            off,
            rows,
            rows_done,
            matched,
        });
        self.rescue_ev.push(Reverse((at, slot as u32)));
    }

    /// Quarantines `unit` (idempotent) and schedules its first canary
    /// probe. The unit leaves the schedulable pool until a canary
    /// completes on it.
    fn quarantine_unit(&mut self, unit: usize, at: Tick) {
        if let Some(probe_at) = self.health.quarantine(unit, at) {
            self.unit_busy[unit] = true;
            self.env.tracer.emit(
                at,
                EventKind::RankHealth {
                    rank: unit as u32,
                    state: UnitState::Quarantined.name(),
                },
            );
            self.probe_ev.push(Reverse((probe_at, unit as u32)));
        }
    }

    /// The rescue event for a parked shard: quarantine the unit, salvage
    /// the completed bitset prefix of *every* predicate lane functionally
    /// (the functional store is intact on a dark unit — only the timed
    /// path is perturbed), and push the shard onto the requeue rung.
    fn rescue(&mut self, slot: u32, t: Tick) -> Result<(), EngineInvariant> {
        let shard = self.parked[slot as usize]
            .take()
            .ok_or(EngineInvariant::MissingParkedShard { slot })?;
        self.quarantine_unit(shard.from_unit, t);
        let ch = self.env.pool.unit(shard.from_unit).channel;
        let stride = self.lane_stride();
        let nbytes = shard.rows_done.div_ceil(8) as usize;
        // One prefix per predicate lane — `matched` is per-lane, so its
        // length is the lane count even for a solo multi-range semi-join
        // (one query, several lanes).
        let prefixes: Vec<Vec<u8>> = (0..shard.matched.len())
            .map(|lane| {
                let mut prefix = vec![0u8; nbytes];
                self.env.modules[ch].data().read(
                    PhysAddr(
                        self.env.outs[shard.from_unit].0 + lane as u64 * stride + shard.off / 8,
                    ),
                    &mut prefix,
                );
                prefix
            })
            .collect();
        for &qid in &shard.qids {
            self.env
                .tracer
                .emit(t, EventKind::QueryRequeued { query: qid });
        }
        self.rescue_queue.push_back(RescueShard {
            qids: shard.qids,
            from_unit: shard.from_unit,
            off: shard.off,
            rows: shard.rows,
            rows_done: shard.rows_done,
            matched: shard.matched,
            prefixes,
        });
        self.requeues += 1;
        self.try_dispatch(t)?;
        self.drain_to_host_if_stranded(t)
    }

    /// Resumes a rescued shard on healthy unit `u`: the salvaged prefix
    /// is replayed into the new unit's output buffer as whole zero-padded
    /// 64-byte lines (parks happen at page boundaries and shards start on
    /// 512-row boundaries, so the prefix is line-aligned; only the global
    /// tail shard can end mid-line, and the padded bytes beyond it are
    /// unused buffer), charged at the driver's degraded-line cost, then
    /// the session resumes from its row cursor under a fresh lease. The
    /// new unit may sit on a different channel — the replay simply writes
    /// into that channel's module.
    fn migrate_shard(&mut self, shard: RescueShard, u: usize, t: Tick) {
        let ch = self.env.pool.unit(u).channel;
        let stride = self.lane_stride();
        let base = self.env.outs[u].0 + shard.off / 8;
        let mut cost = Tick::ZERO;
        for (lane, prefix) in shard.prefixes.iter().enumerate() {
            let lane_base = base + lane as u64 * stride;
            for (i, chunk) in prefix.chunks(64).enumerate() {
                let mut line = [0u8; 64];
                line[..chunk.len()].copy_from_slice(chunk);
                self.env.modules[ch]
                    .data_mut()
                    .write(PhysAddr(lane_base + i as u64 * 64), &line);
                cost += self.cfg.resilience.degraded_line_cost;
            }
        }
        let col_addr = PhysAddr(self.env.replicas[u].0 + shard.off * 8);
        // The resumed session's lanes must mirror the parked one's:
        // `lane_preds` re-derives them from the records (a solo
        // multi-range semi-join resumes fused over its key ranges, not
        // its envelope).
        let preds = self.lane_preds(&shard.qids);
        debug_assert_eq!(preds.len(), shard.matched.len(), "lane count is stable");
        let session = if preds.len() == 1 {
            let (lo, hi) = preds[0];
            let req = SelectRequest {
                col_addr,
                rows: shard.rows,
                lo,
                hi,
                out_addr: PhysAddr(base),
            };
            ShardSession::Solo(self.env.drivers[u].resume_session(
                self.env.modules[ch],
                req,
                shard.rows_done,
                shard.matched[0],
                t + cost,
            ))
        } else {
            let req = FusedSelectRequest {
                col_addr,
                rows: shard.rows,
                out_addrs: (0..preds.len())
                    .map(|lane| PhysAddr(base + lane as u64 * stride))
                    .collect(),
                preds,
            };
            ShardSession::Fused(self.env.drivers[u].resume_fused_session(
                self.env.modules[ch],
                req,
                shard.rows_done,
                shard.matched.clone(),
                t + cost,
            ))
        };
        for &qid in &shard.qids {
            self.env.tracer.emit(
                t,
                EventKind::ShardMigrated {
                    query: qid,
                    from: shard.from_unit as u32,
                    to: u as u32,
                    row: shard.rows_done,
                },
            );
        }
        self.active.push(ActiveShard {
            qids: shard.qids,
            unit: u,
            off: shard.off,
            rows: shard.rows,
            session,
        });
        self.unit_busy[u] = true;
        self.served_count[u] += 1;
        self.migrations += 1;
    }

    /// When no schedulable unit remains, the requeue rung falls through
    /// to its floor: rescued shards finish functionally on the host
    /// (serialized on `host_free`) and queued queries degrade — every
    /// admitted query still completes.
    fn drain_to_host_if_stranded(&mut self, t: Tick) -> Result<(), EngineInvariant> {
        if self.health.schedulable_count() > 0 {
            return Ok(());
        }
        while let Some(shard) = self.rescue_queue.pop_front() {
            self.host_finish_shard(shard, t)?;
        }
        while let Some(&qid) = self.queue.front() {
            let at = t.max(self.host_free);
            self.degrade(qid, at)?;
        }
        Ok(())
    }

    /// The requeue rung's floor: recompute the full shard functionally on
    /// the host at the degraded-scan cost, serialized on `host_free`, and
    /// book it as the shard's completion. The salvaged prefixes are
    /// ignored — recounting the whole shard from the host copy is simpler
    /// and byte-identical. A fused shard's lanes are independent host
    /// scans here: the host has no parallel comparator array, so each
    /// lane pays the full degraded-scan cost in turn.
    fn host_finish_shard(&mut self, shard: RescueShard, t: Tick) -> Result<(), EngineInvariant> {
        let lo_idx = shard.off as usize;
        let hi_idx = (shard.off + shard.rows) as usize;
        for &qid in &shard.qids {
            let begin = self.host_free.max(t);
            let rec = &self.records[qid as usize];
            let (lo, hi, op) = (rec.lo, rec.hi, rec.op);
            // The host recount evaluates the query's *full* predicate in
            // one pass: a multi-range semi-join's union bitset comes out
            // of a single scan (the host has no lane array to pay k× for
            // — and is priced for one lane's output accordingly).
            let hit = |v: i64| match op {
                QueryOp::SemiJoin { ranges } => ranges.contains(v),
                _ => v >= lo && v <= hi,
            };
            let slice = &self.env.values[lo_idx..hi_idx];
            let mut matched = 0u64;
            let mut bytes = vec![0u8; shard.rows.div_ceil(8) as usize];
            for (i, &v) in slice.iter().enumerate() {
                if hit(v) {
                    bytes[i / 8] |= 1 << (i % 8);
                    matched += 1;
                }
            }
            let proj_part = if let QueryOp::Project { .. } = op {
                Some((
                    shard.off,
                    slice
                        .iter()
                        .copied()
                        .filter(|&v| hit(v))
                        .collect::<Vec<i64>>(),
                ))
            } else {
                None
            };
            let out_bytes = match op {
                QueryOp::Project { k } => u64::from(k.max(1)) * 8 * shard.rows,
                _ => shard.rows.div_ceil(8),
            };
            let cost = self.cfg.cpu_fixed
                + self.cfg.cpu_per_row * shard.rows
                + self.cfg.cpu_per_out_byte * out_bytes;
            let done = begin + cost;
            self.host_free = done;
            let at = (shard.off / 8) as usize;
            let rec = &mut self.records[qid as usize];
            rec.bitset[at..at + bytes.len()].copy_from_slice(&bytes);
            self.complete_shard(qid, done, matched, proj_part)?;
        }
        Ok(())
    }

    /// Dispatches a query group onto up to `fanout` of the `free` units
    /// (in the policy's preference order) with the execution shape its
    /// operator needs: selects and projections open steppable sessions,
    /// scalar aggregates run eagerly as one-shot kernels. A group longer
    /// than one is always a fused select batch.
    fn dispatch_device(&mut self, qids: &[u32], free: &[usize], t: Tick) {
        if qids.len() > 1 {
            return self.dispatch_select(qids, free, t);
        }
        let qid = qids[0];
        match self.records[qid as usize].op {
            QueryOp::Select | QueryOp::Project { .. } => self.dispatch_select(qids, free, t),
            QueryOp::SelectCount => self.dispatch_agg(qid, free, t, AggOp::Count),
            QueryOp::SelectAgg(f) => self.dispatch_agg(qid, free, t, agg_op(f)),
            // A semi-join is a select datapath client: 0/1 ranges run as
            // the solo select over the envelope (`[lo,hi]` == the single
            // range, or the canonical empty predicate); more ranges fuse
            // into one multi-lane scan per shard, all lanes owned by the
            // one query.
            QueryOp::SemiJoin { .. } => self.dispatch_select(qids, free, t),
            QueryOp::GroupBy { agg } => self.dispatch_group_by(qid, free, t, agg),
        }
    }

    /// The predicate lanes a dispatch group scans: one `(lo, hi)` per
    /// fused query — except a solo multi-range semi-join, whose lanes are
    /// its build-side key ranges (disjoint, so the union bitset is the
    /// lanes' OR and the match count the lanes' sum). One lane means a
    /// plain solo session.
    fn lane_preds(&self, qids: &[u32]) -> Vec<(i64, i64)> {
        if let [qid] = qids {
            if let QueryOp::SemiJoin { ranges } = self.records[*qid as usize].op {
                if ranges.len() >= 2 {
                    return ranges.as_slice().to_vec();
                }
            }
        }
        qids.iter()
            .map(|&q| {
                let rec = &self.records[q as usize];
                (rec.lo, rec.hi)
            })
            .collect()
    }

    /// Shards a select (or the select pass of a projection, or a
    /// semi-join) over the free units and opens one session per shard. A
    /// one-lane group opens the plain solo session; a multi-lane group
    /// opens one *fused* session per shard, each lane's bitset landing in
    /// its own stride-separated slot of the unit's output buffer — one
    /// scan of the shard serves every lane, whether the lanes are fused
    /// queries or one semi-join's key ranges.
    fn dispatch_select(&mut self, qids: &[u32], free: &[usize], t: Tick) {
        let rows = self.env.values.len() as u64;
        let k = free.len().min(self.cfg.fanout.max(1)) as u64;
        let chunk = aligned_chunk(rows, k, CHUNK_ROWS);
        let stride = self.lane_stride();
        let preds = self.lane_preds(qids);
        let mut off = 0u64;
        let mut used = 0u32;
        for &u in free {
            if off >= rows {
                break;
            }
            let len = chunk.min(rows - off);
            let ch = self.env.pool.unit(u).channel;
            let col_addr = PhysAddr(self.env.replicas[u].0 + off * 8);
            let session = if preds.len() == 1 {
                let (lo, hi) = preds[0];
                let req = SelectRequest {
                    col_addr,
                    rows: len,
                    lo,
                    hi,
                    out_addr: PhysAddr(self.env.outs[u].0 + off / 8),
                };
                ShardSession::Solo(self.env.drivers[u].start_session(self.env.modules[ch], req, t))
            } else {
                let req = FusedSelectRequest {
                    col_addr,
                    rows: len,
                    preds: preds.clone(),
                    out_addrs: (0..preds.len())
                        .map(|lane| PhysAddr(self.env.outs[u].0 + lane as u64 * stride + off / 8))
                        .collect(),
                };
                ShardSession::Fused(self.env.drivers[u].start_fused_session(
                    self.env.modules[ch],
                    req,
                    t,
                ))
            };
            self.active.push(ActiveShard {
                qids: qids.to_vec(),
                unit: u,
                off,
                rows: len,
                session,
            });
            self.unit_busy[u] = true;
            self.served_count[u] += 1;
            off += len;
            used += 1;
        }
        for &qid in qids {
            self.inflight[qid as usize] = Some(Inflight {
                remaining: used,
                matched: 0,
                end: Tick::ZERO,
                proj: Vec::new(),
            });
            let rec = &mut self.records[qid as usize];
            rec.started = Some(t);
            rec.mode = ExecMode::Device { ranks: used };
            rec.bitset = vec![0u8; rows.div_ceil(8) as usize];
            self.env.tracer.emit(
                t,
                EventKind::QueryStarted {
                    query: qid,
                    mode: if qids.len() > 1 {
                        "fused"
                    } else if used > 1 {
                        "parallel"
                    } else {
                        "single"
                    },
                    op: rec.op.name(),
                    ranks: used,
                },
            );
        }
    }

    /// Shards a scalar aggregate over the free units as eager one-shot
    /// kernels under each unit's resilient driver. Aggregates have no
    /// steppable session, and running a kernel makes no scheduling
    /// decisions, so executing it ahead of the event clock is the same
    /// min-cursor argument that lets select shards run ahead: units are
    /// timing-independent, each is freed at its true end via a unit-free
    /// event, and the query finishes at the max shard end. A unit whose
    /// ladder exhausts hands its job back instead of folding in place:
    /// the unit is quarantined, the job returns to the head of the list,
    /// and whatever no healthy unit took folds on the host, serialized on
    /// `host_free`. Partials merge commutatively with the device kernel's
    /// exact semantics, so the merge is shard-order independent.
    fn dispatch_agg(&mut self, qid: u32, free: &[usize], t: Tick, op: AggOp) {
        let rows = self.env.values.len() as u64;
        let k = free.len().min(self.cfg.fanout.max(1)) as u64;
        let chunk = aligned_chunk(rows, k, CHUNK_ROWS);
        let (lo, hi) = {
            let rec = &self.records[qid as usize];
            (rec.lo, rec.hi)
        };
        let mut jobs: VecDeque<(u64, u64)> = VecDeque::new();
        let mut off = 0u64;
        while off < rows {
            let len = chunk.min(rows - off);
            jobs.push_back((off, len));
            off += len;
        }
        let mut used = 0u32;
        let mut count = 0u64;
        let mut acc: Option<i64> = None;
        let mut end = t;
        let mut requeued = false;
        for &u in free {
            let Some((off, len)) = jobs.pop_front() else {
                break;
            };
            let job = AggregateJob {
                col_addr: PhysAddr(self.env.replicas[u].0 + off * 8),
                rows: len,
                op,
                filter: Some(Predicate::Between(lo, hi)),
            };
            let ch = self.env.pool.unit(u).channel;
            match self.env.drivers[u].try_run_aggregate(
                &mut self.env.devices[u],
                self.env.modules[ch],
                job,
                t,
            ) {
                Ok(out) => {
                    count += out.count;
                    acc = merge_agg(op, acc, out.value);
                    end = end.max(out.end);
                    self.unit_busy[u] = true;
                    self.served_count[u] += 1;
                    self.unit_free_ev
                        .push(Reverse((out.end.max(self.now), u as u32)));
                    used += 1;
                }
                Err(t_fail) => {
                    jobs.push_front((off, len));
                    self.quarantine_unit(u, t_fail);
                    if !requeued {
                        requeued = true;
                        self.requeues += 1;
                        self.env
                            .tracer
                            .emit(t_fail, EventKind::QueryRequeued { query: qid });
                    }
                }
            }
        }
        while let Some((off, len)) = jobs.pop_front() {
            let begin = self.host_free.max(t);
            let slice = &self.env.values[off as usize..(off + len) as usize];
            let mut c = 0u64;
            let mut v: Option<i64> = None;
            for &x in slice.iter().filter(|&&x| x >= lo && x <= hi) {
                c += 1;
                v = Some(match (op, v) {
                    (AggOp::Min, Some(p)) => p.min(x),
                    (AggOp::Max, Some(p)) => p.max(x),
                    (AggOp::Min | AggOp::Max, None) => x,
                    (_, prev) => prev.unwrap_or(0).wrapping_add(x),
                });
            }
            let cost =
                self.cfg.cpu_fixed + self.cfg.cpu_per_row * len + self.cfg.cpu_per_out_byte * 8;
            let done = begin + cost;
            self.host_free = done;
            end = end.max(done);
            count += c;
            acc = merge_agg(op, acc, v);
        }
        let rec = &mut self.records[qid as usize];
        rec.started = Some(t);
        rec.mode = if used == 0 {
            ExecMode::Cpu
        } else {
            ExecMode::Device { ranks: used }
        };
        rec.matched = count;
        rec.agg = match op {
            AggOp::Count => Some(count as i64),
            _ => acc,
        };
        self.env.tracer.emit(
            t,
            EventKind::QueryStarted {
                query: qid,
                mode: match used {
                    0 => "cpu",
                    1 => "single",
                    _ => "parallel",
                },
                op: rec.op.name(),
                ranks: used,
            },
        );
        self.finish_query(qid, end);
    }

    /// Serves a keyed group-by as a rank-partitioned aggregation: the
    /// qualifying rows' `(key, value)` pairs are partitioned across the
    /// free units by key hash, each unit stages its partition's values
    /// contiguously per group (64-byte-aligned groups in the unit's
    /// staging buffer, priced per staged line plus a per-row scatter
    /// charge), folds every group with one device aggregate kernel, and
    /// the frontend merges the per-unit partials commutatively — so the
    /// merged `(key, count, value)` rows are identical however the rows
    /// were partitioned.
    ///
    /// That order-independence is what makes the skew guard sound: a
    /// sampled key histogram at dispatch flags *hot* keys
    /// ([`ServeConfig::skew_hot_pct`] of the sample), and their rows are
    /// dealt round-robin across all used units instead of hashing onto
    /// one — a JSPIM-style split that converts a hot-key hotspot into
    /// balanced partitions without changing a byte of the result.
    ///
    /// The failure ladder mirrors [`Engine::dispatch_agg`]: a unit whose
    /// kernel ladder exhausts is quarantined and its *remaining* groups
    /// fold on the host, serialized on `host_free`; partials already
    /// folded on the device are kept (the merge is commutative).
    fn dispatch_group_by(&mut self, qid: u32, free: &[usize], t: Tick, f: AggFn) {
        use std::collections::BTreeMap;
        let op = agg_op(f);
        let values = self.env.values;
        let keys = self.env.keys;
        let (lo, hi) = {
            let rec = &self.records[qid as usize];
            (rec.lo, rec.hi)
        };
        let qualifying: Vec<usize> = (0..values.len())
            .filter(|&i| values[i] >= lo && values[i] <= hi)
            .collect();
        let units: Vec<usize> = free.iter().copied().take(self.cfg.fanout.max(1)).collect();

        // Deterministic stride-sampled key histogram: a key holding at
        // least `skew_hot_pct`% of the sample is hot and gets split.
        let mut hot: Vec<i64> = Vec::new();
        if self.cfg.skew_split && units.len() > 1 && !qualifying.is_empty() {
            let sample_n = self.cfg.skew_sample.max(1).min(qualifying.len());
            let stride = qualifying.len() / sample_n;
            let mut hist: BTreeMap<i64, usize> = BTreeMap::new();
            for s in 0..sample_n {
                *hist.entry(keys[qualifying[s * stride]]).or_insert(0) += 1;
            }
            let cut = (sample_n * self.cfg.skew_hot_pct.clamp(1, 100) as usize).div_ceil(100);
            hot = hist
                .iter()
                .filter(|&(_, &c)| c >= cut)
                .map(|(&k, _)| k)
                .collect();
            for &k in &hot {
                self.env.tracer.emit(
                    t,
                    EventKind::SkewSplit {
                        query: qid,
                        key: k,
                        parts: units.len() as u32,
                    },
                );
            }
        }

        // Partition by key hash (Fibonacci mix, the device group-by's
        // mixing); hot keys deal round-robin across every used unit.
        let key_unit = |k: i64| {
            (((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % units.len()
        };
        let mut parts: Vec<Vec<(i64, i64)>> = vec![Vec::new(); units.len()];
        let mut rr = 0usize;
        for &i in &qualifying {
            let k = keys[i];
            let p = if hot.binary_search(&k).is_ok() {
                rr += 1;
                (rr - 1) % units.len()
            } else {
                key_unit(k)
            };
            parts[p].push((k, values[i]));
        }

        let mut partials: BTreeMap<i64, (u64, Option<i64>)> = BTreeMap::new();
        let mut host_groups: Vec<(i64, Vec<i64>)> = Vec::new();
        let mut used = 0u32;
        let mut end = t;
        let mut requeued = false;
        for (pi, &u) in units.iter().enumerate() {
            if parts[pi].is_empty() {
                continue;
            }
            // Group this partition deterministically (sorted by key) and
            // lay the groups out back-to-back in the unit's staging
            // buffer, each group's values 64-byte-aligned so one aggregate
            // kernel folds it in place.
            let mut grouped: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
            for &(k, v) in &parts[pi] {
                grouped.entry(k).or_default().push(v);
            }
            let ch = self.env.pool.unit(u).channel;
            let base = self.env.stage_outs[u];
            let mut layout: Vec<(i64, u64, Vec<i64>)> = Vec::new();
            let mut off = 0u64;
            for (k, vs) in grouped {
                for (j, &v) in vs.iter().enumerate() {
                    self.env.modules[ch]
                        .data_mut()
                        .write_i64(PhysAddr(base.0 + (off + j as u64) * 8), v);
                }
                let len = vs.len() as u64;
                layout.push((k, off, vs));
                off = (off + len).next_multiple_of(8);
            }
            // Scatter pricing: a per-row partition charge plus one
            // degraded-line charge per staged 64-byte line.
            let mut unit_t = t
                + self.cfg.cpu_per_row * (parts[pi].len() as u64)
                + self.cfg.resilience.degraded_line_cost * off.div_ceil(8);
            let mut failed_at: Option<Tick> = None;
            let mut done_groups = 0usize;
            for (gi, (_, goff, vs)) in layout.iter().enumerate() {
                let job = AggregateJob {
                    col_addr: PhysAddr(base.0 + goff * 8),
                    rows: vs.len() as u64,
                    op,
                    filter: None,
                };
                match self.env.drivers[u].try_run_aggregate(
                    &mut self.env.devices[u],
                    self.env.modules[ch],
                    job,
                    unit_t,
                ) {
                    Ok(out) => {
                        unit_t = out.end;
                        let e = partials.entry(layout[gi].0).or_insert((0, None));
                        e.0 += out.count;
                        e.1 = merge_agg(op, e.1, out.value);
                        done_groups = gi + 1;
                    }
                    Err(t_fail) => {
                        failed_at = Some(t_fail);
                        break;
                    }
                }
            }
            if let Some(t_fail) = failed_at {
                self.quarantine_unit(u, t_fail);
                if !requeued {
                    requeued = true;
                    self.requeues += 1;
                    self.env
                        .tracer
                        .emit(t_fail, EventKind::QueryRequeued { query: qid });
                }
                for (k, _, vs) in layout.into_iter().skip(done_groups) {
                    host_groups.push((k, vs));
                }
                end = end.max(t_fail);
            } else {
                self.unit_busy[u] = true;
                self.served_count[u] += 1;
                self.unit_free_ev
                    .push(Reverse((unit_t.max(self.now), u as u32)));
                used += 1;
                end = end.max(unit_t);
            }
        }

        // Whatever no healthy unit folded finishes on the host,
        // serialized on `host_free`, with the device kernel's exact fold
        // semantics — the merged groups stay byte-identical.
        host_groups.sort_by_key(|&(k, _)| k);
        for (k, vs) in host_groups {
            let begin = self.host_free.max(t);
            let mut acc: Option<i64> = None;
            for &v in &vs {
                acc = Some(match (op, acc) {
                    (AggOp::Min, Some(p)) => p.min(v),
                    (AggOp::Max, Some(p)) => p.max(v),
                    (AggOp::Min | AggOp::Max, None) => v,
                    (_, prev) => prev.unwrap_or(0).wrapping_add(v),
                });
            }
            let cost = self.cfg.cpu_fixed
                + self.cfg.cpu_per_row * (vs.len() as u64)
                + self.cfg.cpu_per_out_byte * 24;
            let done = begin + cost;
            self.host_free = done;
            end = end.max(done);
            let e = partials.entry(k).or_insert((0, None));
            e.0 += vs.len() as u64;
            e.1 = merge_agg(op, e.1, acc);
        }
        if qualifying.is_empty() {
            // Nothing qualified: one host setup pass discovers that.
            let done = self.host_free.max(t) + self.cfg.cpu_fixed;
            self.host_free = done;
            end = end.max(done);
        }

        let rec = &mut self.records[qid as usize];
        rec.started = Some(t);
        rec.mode = if used == 0 {
            ExecMode::Cpu
        } else {
            ExecMode::Device { ranks: used }
        };
        rec.matched = qualifying.len() as u64;
        rec.groups = partials.into_iter().map(|(k, (c, a))| (k, c, a)).collect();
        self.env.tracer.emit(
            t,
            EventKind::QueryStarted {
                query: qid,
                mode: match used {
                    0 => "cpu",
                    1 => "single",
                    _ => "parallel",
                },
                op: rec.op.name(),
                ranks: used,
            },
        );
        self.finish_query(qid, end);
    }

    fn step_shard(&mut self, idx: usize) -> Result<(), EngineInvariant> {
        let shard = &mut self.active[idx];
        let ch = self.env.pool.unit(shard.unit).channel;
        match &mut shard.session {
            ShardSession::Solo(session) => self.env.drivers[shard.unit].step_page_failfast(
                &mut self.env.devices[shard.unit],
                self.env.modules[ch],
                session,
            ),
            ShardSession::Fused(session) => self.env.drivers[shard.unit].step_fused_page_failfast(
                &mut self.env.devices[shard.unit],
                self.env.modules[ch],
                session,
            ),
        }
        if shard.session.is_parked() {
            // The unit's fail-fast ladder gave up on a page: freeze the
            // shard at its page boundary and let the rescue event (same
            // tick, deterministic class order) requeue it. A fused
            // shard's lanes park together — per-lane match counts ride
            // into the parked slab.
            let shard = self.active.swap_remove(idx);
            let (rows_done, matched, at) = (
                shard.session.next_row(),
                shard.session.matched(),
                shard.session.cursor(),
            );
            self.park_shard(
                shard.qids, shard.unit, shard.off, shard.rows, rows_done, matched, at,
            );
            return Ok(());
        }
        if !shard.session.is_done() {
            return Ok(());
        }
        let shard = self.active.swap_remove(idx);
        let session = match shard.session {
            ShardSession::Solo(session) => session,
            ShardSession::Fused(session) => {
                // A finished fused shard lands k bitset slices at once:
                // read every lane's stride-separated slot into its own
                // query record, then book one shard completion per lane.
                // A solo semi-join's lanes all belong to the one query:
                // OR them into its bitset (ranges are disjoint, so the
                // union's popcount is the lane counts' sum) and book a
                // single completion.
                let run = session.into_run();
                let nbytes = shard.rows.div_ceil(8) as usize;
                let at = (shard.off / 8) as usize;
                let stride = self.lane_stride();
                let lanes = run.matched.len();
                if shard.qids.len() == 1 && lanes > 1 {
                    let qid = shard.qids[0];
                    let mut union = vec![0u8; nbytes];
                    let mut buf = vec![0u8; nbytes];
                    for lane in 0..lanes {
                        self.env.modules[ch].data().read(
                            PhysAddr(
                                self.env.outs[shard.unit].0 + lane as u64 * stride + shard.off / 8,
                            ),
                            &mut buf,
                        );
                        for (u_byte, b) in union.iter_mut().zip(&buf) {
                            *u_byte |= b;
                        }
                    }
                    if !shard.rows.is_multiple_of(8) {
                        union[nbytes - 1] &= (1u8 << (shard.rows % 8)) - 1;
                    }
                    self.records[qid as usize].bitset[at..at + nbytes].copy_from_slice(&union);
                    self.unit_free_ev
                        .push(Reverse((run.end.max(self.now), shard.unit as u32)));
                    return self.complete_shard(qid, run.end, run.matched.iter().sum(), None);
                }
                for (lane, &qid) in shard.qids.iter().enumerate() {
                    let rec = &mut self.records[qid as usize];
                    self.env.modules[ch].data().read(
                        PhysAddr(
                            self.env.outs[shard.unit].0 + lane as u64 * stride + shard.off / 8,
                        ),
                        &mut rec.bitset[at..at + nbytes],
                    );
                    if !shard.rows.is_multiple_of(8) {
                        rec.bitset[at + nbytes - 1] &= (1u8 << (shard.rows % 8)) - 1;
                    }
                }
                self.unit_free_ev
                    .push(Reverse((run.end.max(self.now), shard.unit as u32)));
                for (lane, &qid) in shard.qids.iter().enumerate() {
                    self.complete_shard(qid, run.end, run.matched[lane], None)?;
                }
                return Ok(());
            }
        };
        let qid = shard.qids[0];
        let run = session.into_run();
        // Pull the shard's slice of the selection vector out of DRAM now:
        // the unit is reused only after its unit-free event, which is
        // processed strictly later.
        let nbytes = shard.rows.div_ceil(8) as usize;
        let at = (shard.off / 8) as usize;
        let rec = &mut self.records[qid as usize];
        self.env.modules[ch].data().read(
            PhysAddr(self.env.outs[shard.unit].0 + shard.off / 8),
            &mut rec.bitset[at..at + nbytes],
        );
        if !shard.rows.is_multiple_of(8) {
            // The buffer is reused across queries and the device
            // preserves (rather than zeroes) bits past the last row in
            // the final partial byte — mask the stale tail off.
            rec.bitset[at + nbytes - 1] &= (1u8 << (shard.rows % 8)) - 1;
        }
        let op = rec.op;
        let mut shard_end = run.end;
        let mut proj_part = None;
        if let QueryOp::Project { k } = op {
            // A projection chains k one-shot kernel passes off the
            // finished select: the engine models projecting k same-width
            // columns by re-running the kernel k times against the served
            // replica (each pass reads the shard's bitset slice and packs
            // one column's worth of qualifying values; passes are
            // byte-identical so the record keeps a single copy). The
            // shard's bitset slice starts on a 512-row boundary, so both
            // it and the packed output stay 64-byte aligned.
            let job = ProjectJob {
                col_addr: PhysAddr(self.env.replicas[shard.unit].0 + shard.off * 8),
                rows: shard.rows,
                bitset_addr: PhysAddr(self.env.outs[shard.unit].0 + shard.off / 8),
                out_addr: PhysAddr(self.env.proj_outs[shard.unit].0 + shard.off * 8),
            };
            let mut emitted = 0u64;
            let mut failed_at = None;
            for _ in 0..k.max(1) {
                match self.env.drivers[shard.unit].try_run_project(
                    &mut self.env.devices[shard.unit],
                    self.env.modules[ch],
                    job,
                    shard_end,
                ) {
                    Ok(out) => {
                        shard_end = out.end;
                        emitted = out.emitted;
                    }
                    Err(t_fail) => {
                        failed_at = Some(t_fail);
                        break;
                    }
                }
            }
            if let Some(t_fail) = failed_at {
                // The select finished but a projection pass exhausted the
                // ladder. Park with the full select done (rows_done =
                // rows): the resumed session completes instantly on the
                // new unit and the k passes re-run there — passes are
                // byte-identical, so re-running them all is correct.
                self.park_shard(
                    vec![qid],
                    shard.unit,
                    shard.off,
                    shard.rows,
                    shard.rows,
                    vec![run.matched],
                    t_fail,
                );
                return Ok(());
            }
            let base = self.env.proj_outs[shard.unit].0 + shard.off * 8;
            let vals: Vec<i64> = (0..emitted)
                .map(|i| self.env.modules[ch].data().read_i64(PhysAddr(base + i * 8)))
                .collect();
            proj_part = Some((shard.off, vals));
        }
        self.unit_free_ev
            .push(Reverse((shard_end.max(self.now), shard.unit as u32)));
        self.complete_shard(qid, shard_end, run.matched, proj_part)
    }

    /// Books one finished shard (device or host) against its query's
    /// in-flight bookkeeping; the last shard assembles the record and
    /// finishes the query.
    fn complete_shard(
        &mut self,
        qid: u32,
        end: Tick,
        matched: u64,
        proj_part: Option<(u64, Vec<i64>)>,
    ) -> Result<(), EngineInvariant> {
        let fl = self.inflight[qid as usize]
            .as_mut()
            .ok_or(EngineInvariant::MissingInflight { query: qid })?;
        fl.remaining -= 1;
        fl.matched += matched;
        fl.end = fl.end.max(end);
        if let Some(part) = proj_part {
            fl.proj.push(part);
        }
        if fl.remaining > 0 {
            return Ok(());
        }
        let fl = self.inflight[qid as usize]
            .take()
            .ok_or(EngineInvariant::MissingInflight { query: qid })?;
        let mut proj = fl.proj;
        proj.sort_by_key(|&(off, _)| off);
        let rec = &mut self.records[qid as usize];
        rec.matched = fl.matched;
        rec.projected = proj.into_iter().flat_map(|(_, vals)| vals).collect();
        self.finish_query(qid, fl.end);
        Ok(())
    }

    /// The canary probe event for a quarantined unit: reset the unit's
    /// breaker and send a small empty-predicate select at it. A canary
    /// that completes on the device repairs the unit (it rejoins the pool
    /// at a unit-free event); one that parks re-quarantines with the
    /// dwell doubled. The canary runs entirely at probe time against the
    /// unit's own buffers — the unit is quarantined, so no live shard can
    /// be using them, and any parked shard's prefix was already salvaged
    /// at its rescue.
    fn probe(&mut self, unit: u32, t: Tick) -> Result<(), EngineInvariant> {
        let u = unit as usize;
        if self.health.state(u) != UnitState::Quarantined {
            return Ok(());
        }
        self.health.begin_probe(u);
        self.env.tracer.emit(
            t,
            EventKind::RankHealth {
                rank: unit,
                state: UnitState::Probing.name(),
            },
        );
        self.env.drivers[u].reset_breaker();
        let rows = self
            .health
            .config()
            .canary_rows
            .min(self.env.values.len() as u64)
            .max(1);
        let req = SelectRequest {
            col_addr: self.env.replicas[u],
            rows,
            lo: 0,
            hi: -1,
            out_addr: self.env.outs[u],
        };
        let ch = self.env.pool.unit(u).channel;
        let mut session = self.env.drivers[u].start_session(self.env.modules[ch], req, t);
        while !session.is_done() && !session.is_parked() {
            self.env.drivers[u].step_page_failfast(
                &mut self.env.devices[u],
                self.env.modules[ch],
                &mut session,
            );
        }
        if session.is_done() {
            let end = session.into_run().end;
            self.health.repaired(u, end);
            self.env.tracer.emit(
                end,
                EventKind::CanaryProbe {
                    rank: unit,
                    ok: true,
                },
            );
            self.env.tracer.emit(
                end,
                EventKind::RankHealth {
                    rank: unit,
                    state: UnitState::Healthy.name(),
                },
            );
            self.unit_free_ev.push(Reverse((end.max(self.now), unit)));
        } else {
            let at = session.cursor().max(t);
            let next = self.health.probe_failed(u, at);
            self.env.tracer.emit(
                at,
                EventKind::CanaryProbe {
                    rank: unit,
                    ok: false,
                },
            );
            self.env.tracer.emit(
                at,
                EventKind::RankHealth {
                    rank: unit,
                    state: UnitState::Quarantined.name(),
                },
            );
            self.probe_ev.push(Reverse((next, unit)));
        }
        Ok(())
    }

    fn finish_query(&mut self, qid: u32, end: Tick) {
        let rec = &mut self.records[qid as usize];
        rec.done = Some(end);
        self.finished.push(qid);
        self.makespan = self.makespan.max(end);
        let matched = rec.matched;
        self.env.tracer.emit(
            end,
            EventKind::QueryDone {
                query: qid,
                matched,
            },
        );
        self.schedule_next_client(end);
    }

    /// The queued query whose degradation deadline comes first, if any:
    /// the last instant `max(now, host_free, deadline − est_cpu,
    /// submitted)` at which the host scan still protects its SLO.
    fn degrade_candidate(&self) -> Option<(Tick, u32)> {
        if !self.has_slo {
            return None;
        }
        self.queue
            .iter()
            .filter(|&&q| self.records[q as usize].deadline < Tick::MAX)
            .map(|&q| {
                let rec = &self.records[q as usize];
                let t = self
                    .now
                    .max(self.host_free)
                    .max(rec.deadline.saturating_sub(self.cpu_estimate(rec.op)))
                    .max(rec.submitted);
                (t, q)
            })
            .min()
    }

    /// Analytical host-scan time for one query of the given operator
    /// class: fixed setup, per-row predicate cost, and a per-output-byte
    /// materialization cost — a select writes one bit per row, a scalar
    /// aggregate a single 8-byte value, and a k-column projection up to
    /// k·8·rows bytes (the worst case the host budgets for before it
    /// knows the selectivity).
    fn cpu_estimate(&self, op: QueryOp) -> Tick {
        host_scan_cost(self.cfg, self.env.values.len() as u64, op)
    }

    /// Pulls `qid` off the device queue and runs it on the host: timed
    /// analytically per operator, computed functionally — the bitset is
    /// bit-identical, the aggregate scalar value-identical and the packed
    /// projection byte-identical to what the device path would return.
    fn degrade(&mut self, qid: u32, t: Tick) -> Result<(), EngineInvariant> {
        let pos = self
            .queue
            .iter()
            .position(|&q| q == qid)
            .ok_or(EngineInvariant::DegradeCandidateMissing { query: qid })?;
        self.queue.remove(pos);
        let done = t + self.cpu_estimate(self.records[qid as usize].op);
        self.host_free = done;
        let values = self.env.values;
        let rec = &mut self.records[qid as usize];
        rec.started = Some(t);
        rec.mode = ExecMode::Cpu;
        let (lo, hi) = (rec.lo, rec.hi);
        match rec.op {
            QueryOp::Select | QueryOp::Project { .. } => {
                let mut bytes = vec![0u8; values.len().div_ceil(8)];
                let mut matched = 0u64;
                for (i, &v) in values.iter().enumerate() {
                    if v >= lo && v <= hi {
                        bytes[i / 8] |= 1 << (i % 8);
                        matched += 1;
                    }
                }
                rec.bitset = bytes;
                rec.matched = matched;
                if let QueryOp::Project { .. } = rec.op {
                    rec.projected = values
                        .iter()
                        .copied()
                        .filter(|&v| v >= lo && v <= hi)
                        .collect();
                }
            }
            QueryOp::SelectCount => {
                let matched = values.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
                rec.matched = matched;
                rec.agg = Some(matched as i64);
            }
            QueryOp::SelectAgg(f) => {
                // Same fold semantics as the device kernel: wrapping sum,
                // `None` extremum when no row qualifies — the degraded
                // scalar must be indistinguishable from the device's.
                let mut matched = 0u64;
                let mut acc: Option<i64> = None;
                for &v in values.iter().filter(|&&v| v >= lo && v <= hi) {
                    matched += 1;
                    acc = Some(match (f, acc) {
                        (AggFn::Sum, prev) => prev.unwrap_or(0).wrapping_add(v),
                        (AggFn::Min | AggFn::Max, None) => v,
                        (AggFn::Min, Some(p)) => p.min(v),
                        (AggFn::Max, Some(p)) => p.max(v),
                    });
                }
                rec.matched = matched;
                rec.agg = acc;
            }
            QueryOp::SemiJoin { ranges } => {
                // One pass over the full range set — bit-identical to
                // the OR of the device path's disjoint lane bitsets.
                let mut bytes = vec![0u8; values.len().div_ceil(8)];
                let mut matched = 0u64;
                for (i, &v) in values.iter().enumerate() {
                    if ranges.contains(v) {
                        bytes[i / 8] |= 1 << (i % 8);
                        matched += 1;
                    }
                }
                rec.bitset = bytes;
                rec.matched = matched;
            }
            QueryOp::GroupBy { agg } => {
                let keys = self.env.keys;
                let mut matched = 0u64;
                let mut groups: std::collections::BTreeMap<i64, (u64, Option<i64>)> =
                    std::collections::BTreeMap::new();
                for (i, &v) in values.iter().enumerate() {
                    if v >= lo && v <= hi {
                        matched += 1;
                        let e = groups.entry(keys[i]).or_insert((0, None));
                        e.0 += 1;
                        e.1 = Some(match (agg, e.1) {
                            (AggFn::Sum, prev) => prev.unwrap_or(0).wrapping_add(v),
                            (AggFn::Min | AggFn::Max, None) => v,
                            (AggFn::Min, Some(p)) => p.min(v),
                            (AggFn::Max, Some(p)) => p.max(v),
                        });
                    }
                }
                rec.matched = matched;
                rec.groups = groups.into_iter().map(|(k, (c, a))| (k, c, a)).collect();
            }
        }
        self.cpu_done.push(Reverse((done, qid)));
        self.env.tracer.emit(
            t,
            EventKind::QueryStarted {
                query: qid,
                mode: "cpu",
                op: rec.op.name(),
                ranks: 0,
            },
        );
        Ok(())
    }
}

/// Analytical host-scan time for one query: fixed setup, per-row
/// predicate cost, per-output-byte materialization cost. Shared by the
/// engine's degrade rung and the cluster frontend's pull-and-scan rung,
/// so the two CPU tiers price identical work identically.
pub(crate) fn host_scan_cost(cfg: &ServeConfig, rows: u64, op: QueryOp) -> Tick {
    let out_bytes = match op {
        // A semi-join emits exactly one bitset — the host evaluates the
        // whole range set in one pass, so it prices a single lane's
        // output, never ranges× it (the device fuses its lanes into one
        // scan for the same reason).
        QueryOp::Select | QueryOp::SemiJoin { .. } => rows.div_ceil(8),
        QueryOp::SelectCount | QueryOp::SelectAgg(_) => 8,
        QueryOp::Project { k } => u64::from(k.max(1)) * 8 * rows,
        // Worst case every row is its own group: one (key, count, value)
        // triple — 24 bytes — per row, the budget before selectivity or
        // key cardinality is known. Monotone in `rows` like every arm.
        QueryOp::GroupBy { .. } => 24 * rows,
    };
    cfg.cpu_fixed + cfg.cpu_per_row * rows + cfg.cpu_per_out_byte * out_bytes
}

/// The serving-layer aggregate functions mapped onto the device kernel's
/// fold ops.
fn agg_op(f: AggFn) -> AggOp {
    match f {
        AggFn::Sum => AggOp::Sum,
        AggFn::Min => AggOp::Min,
        AggFn::Max => AggOp::Max,
    }
}

/// Shard-order merge of two aggregate partials with the device kernel's
/// semantics: wrapping sum, `None`-respecting extremum. `Count` totals
/// are carried in the count field instead.
fn merge_agg(op: AggOp, a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(match op {
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
            _ => a.wrapping_add(b),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{ChannelRankPool, SingleDimmPool};
    use crate::workload::{PredicateMix, QuerySpec};
    use jafar_common::rng::SplitMix64;
    use jafar_dram::{AddressMapping, DramGeometry, DramTiming};

    const ROWS: u64 = 2048;

    /// A self-contained serving machine over an explicit module: every
    /// rank carries a full replica of the same seeded column plus an
    /// output buffer, one device + persistent driver each.
    struct Rig {
        module: DramModule,
        devices: Vec<JafarDevice>,
        drivers: Vec<ResilientDriver>,
        replicas: Vec<PhysAddr>,
        outs: Vec<PhysAddr>,
        proj_outs: Vec<PhysAddr>,
        stage_outs: Vec<PhysAddr>,
        values: Vec<i64>,
        keys: Vec<i64>,
        tracer: SharedTracer,
    }

    fn rig(nranks: u32, seed: u64) -> Rig {
        let geom = DramGeometry {
            ranks: nranks,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 1024,
        };
        let mut module = DramModule::new(
            geom,
            DramTiming::ddr3_paper().without_refresh(),
            AddressMapping::RankRowBankBlock,
        );
        let mut rng = SplitMix64::new(seed);
        let values: Vec<i64> = (0..ROWS)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        // A separate key stream keeps the value stream (and with it
        // every pre-group-by golden expectation) untouched.
        let mut krng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let keys: Vec<i64> = (0..ROWS)
            .map(|_| krng.next_range_inclusive(0, 15))
            .collect();
        let rank_bytes = geom.rank_bytes();
        let mut replicas = Vec::new();
        let mut outs = Vec::new();
        let mut proj_outs = Vec::new();
        let mut stage_outs = Vec::new();
        for r in 0..nranks as u64 {
            let col = PhysAddr(r * rank_bytes);
            for (i, &v) in values.iter().enumerate() {
                module
                    .data_mut()
                    .write_i64(PhysAddr(col.0 + i as u64 * 8), v);
            }
            replicas.push(col);
            outs.push(PhysAddr(r * rank_bytes + 192 * 1024));
            proj_outs.push(PhysAddr(r * rank_bytes + 64 * 1024));
            stage_outs.push(PhysAddr(r * rank_bytes + 128 * 1024));
        }
        Rig {
            module,
            devices: (0..nranks).map(|_| JafarDevice::paper_default()).collect(),
            drivers: (0..nranks)
                .map(|_| ResilientDriver::new(ResilienceConfig::default()))
                .collect(),
            replicas,
            outs,
            proj_outs,
            stage_outs,
            values,
            keys,
            tracer: SharedTracer::disabled(),
        }
    }

    impl Rig {
        fn serve(
            &mut self,
            workload: &Workload,
            policy: SchedPolicy,
            cfg: &ServeConfig,
        ) -> ServeReport {
            let pool = SingleDimmPool::new(self.devices.len());
            run_serve(
                ServeEnv {
                    modules: vec![&mut self.module],
                    pool: &pool,
                    devices: &mut self.devices,
                    drivers: &mut self.drivers,
                    replicas: &self.replicas,
                    outs: &self.outs,
                    proj_outs: &self.proj_outs,
                    values: &self.values,
                    keys: &self.keys,
                    stage_outs: &self.stage_outs,
                    tracer: &self.tracer,
                },
                workload,
                policy,
                cfg,
            )
        }
    }

    fn reference_bytes(values: &[i64], lo: i64, hi: i64) -> Vec<u8> {
        let mut bytes = vec![0u8; values.len().div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    fn spec(lo: i64, hi: i64, slo: Option<Tick>) -> QuerySpec {
        QuerySpec {
            lo,
            hi,
            op: QueryOp::Select,
            slo,
        }
    }

    fn op_spec(lo: i64, hi: i64, op: QueryOp) -> QuerySpec {
        QuerySpec {
            lo,
            hi,
            op,
            slo: None,
        }
    }

    #[test]
    fn fifo_poisson_completes_all_bit_identically() {
        let mut rig = rig(4, 5);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 200,
        };
        let workload = Workload::poisson(mix, 6, Tick::from_us(2), 17);
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 6);
        assert_eq!(report.shed(), 0);
        for rec in &report.records {
            assert!(matches!(rec.mode, ExecMode::Device { ranks } if ranks >= 1));
            assert!(rec.done.unwrap() >= rec.started.unwrap());
            assert_eq!(
                rec.bitset,
                reference_bytes(&rig.values, rec.lo, rec.hi),
                "query {} selection vector",
                rec.id
            );
            assert_eq!(
                rec.matched,
                rec.bitset
                    .iter()
                    .map(|b| b.count_ones() as u64)
                    .sum::<u64>()
            );
        }
        assert!(report.makespan > Tick::ZERO);
        assert!(report.p99() >= report.p50());
    }

    #[test]
    fn serve_is_deterministic() {
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 150,
        };
        let workload = Workload::poisson(mix, 8, Tick::from_ns(800), 23)
            .with_slo(Tick::from_us(400))
            .with_op_mix(&[
                QueryOp::Select,
                QueryOp::SelectCount,
                QueryOp::SelectAgg(AggFn::Sum),
                QueryOp::Project { k: 2 },
            ]);
        let a = rig(2, 9).serve(
            &workload,
            SchedPolicy::RankAffinity,
            &ServeConfig::default(),
        );
        let b = rig(2, 9).serve(
            &workload,
            SchedPolicy::RankAffinity,
            &ServeConfig::default(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn burst_sheds_at_the_queue_bound() {
        let mut rig = rig(2, 7);
        let workload = Workload {
            specs: (0..6).map(|_| spec(100, 399, None)).collect(),
            arrivals: Arrivals::Open(vec![Tick::ZERO; 6]),
            slo: None,
        };
        let cfg = ServeConfig {
            max_queue: 1,
            fanout: 2,
            ..ServeConfig::default()
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &cfg);
        // q0 takes both ranks, q1 fills the depth-1 queue, the rest shed.
        assert_eq!(report.completed(), 2);
        assert_eq!(report.shed(), 4);
        for rec in &report.records[2..] {
            assert_eq!(rec.mode, ExecMode::Shed);
            assert!(rec.done.is_none());
            assert!(rec.bitset.is_empty());
        }
        assert_eq!(
            report.records[0].mode,
            ExecMode::Device { ranks: 2 },
            "burst head fans out over both ranks"
        );
    }

    #[test]
    fn edf_dispatches_the_tightest_deadline_first() {
        let specs = vec![
            spec(0, 499, None),
            spec(0, 499, Some(Tick::from_ms(3))),
            spec(0, 499, Some(Tick::from_ms(1))),
        ];
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open(vec![Tick::ZERO; 3]),
            slo: None,
        };
        let fifo = rig(1, 3).serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        let edf = rig(1, 3).serve(&workload, SchedPolicy::Edf, &ServeConfig::default());
        assert!(fifo.records[1].started.unwrap() < fifo.records[2].started.unwrap());
        assert!(edf.records[2].started.unwrap() < edf.records[1].started.unwrap());
        // Scheduling order changes; results don't.
        for report in [&fifo, &edf] {
            assert_eq!(report.completed(), 3);
            assert_eq!(report.deadline_misses(), 0);
        }
    }

    #[test]
    fn hopeless_deadline_degrades_to_the_host_cpu() {
        let mut rig = rig(1, 13);
        // q0 occupies the only rank; q1's SLO is far below even the CPU
        // estimate, so its degradation deadline is "now" — it abandons
        // the device queue immediately and still completes, correctly.
        let workload = Workload {
            specs: vec![spec(200, 799, None), spec(300, 599, Some(Tick::from_ns(1)))],
            arrivals: Arrivals::Open(vec![Tick::ZERO, Tick::ZERO]),
            slo: None,
        };
        let cfg = ServeConfig::default();
        let est = cfg.cpu_fixed + cfg.cpu_per_row * ROWS + cfg.cpu_per_out_byte * ROWS.div_ceil(8);
        let report = rig.serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report.completed(), 2);
        let q1 = &report.records[1];
        assert_eq!(q1.mode, ExecMode::Cpu);
        assert_eq!(q1.done.unwrap(), q1.started.unwrap() + est);
        assert_eq!(q1.bitset, reference_bytes(&rig.values, 300, 599));
        assert!(q1.missed_deadline(), "hopeless SLO is still a miss");
        assert_eq!(report.cpu_queries(), 1);
    }

    #[test]
    fn mixed_operator_stream_serves_every_operator_correctly() {
        let mut rig = rig(4, 31);
        let specs = vec![
            op_spec(100, 499, QueryOp::Select),
            op_spec(200, 599, QueryOp::SelectCount),
            op_spec(0, 899, QueryOp::SelectAgg(AggFn::Sum)),
            op_spec(300, 699, QueryOp::SelectAgg(AggFn::Min)),
            op_spec(300, 699, QueryOp::SelectAgg(AggFn::Max)),
            op_spec(400, 799, QueryOp::Project { k: 2 }),
            // An empty range: Min/Max must come back None, not 0.
            op_spec(5000, 6000, QueryOp::SelectAgg(AggFn::Min)),
        ];
        let n = specs.len();
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open((0..n).map(|i| Tick::from_us(i as u64)).collect()),
            slo: None,
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), n);
        let filtered = |lo: i64, hi: i64| -> Vec<i64> {
            rig.values
                .iter()
                .copied()
                .filter(|&v| v >= lo && v <= hi)
                .collect()
        };
        for rec in &report.records {
            assert!(matches!(rec.mode, ExecMode::Device { ranks } if ranks >= 1));
            let matching = filtered(rec.lo, rec.hi);
            assert_eq!(rec.matched as usize, matching.len(), "query {}", rec.id);
            match rec.op {
                QueryOp::Select => {
                    assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
                    assert_eq!(rec.agg, None);
                    assert!(rec.projected.is_empty());
                }
                QueryOp::SelectCount => {
                    assert!(rec.bitset.is_empty(), "scalar ops carry no bitset");
                    assert_eq!(rec.agg, Some(matching.len() as i64));
                }
                QueryOp::SelectAgg(f) => {
                    assert!(rec.bitset.is_empty(), "scalar ops carry no bitset");
                    let expect = match f {
                        AggFn::Sum => matching.iter().copied().reduce(|a, b| a.wrapping_add(b)),
                        AggFn::Min => matching.iter().copied().min(),
                        AggFn::Max => matching.iter().copied().max(),
                    };
                    assert_eq!(rec.agg, expect, "query {} ({})", rec.id, rec.op.name());
                }
                QueryOp::Project { .. } => {
                    assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
                    assert_eq!(rec.projected, matching, "packed projection");
                }
                QueryOp::SemiJoin { .. } | QueryOp::GroupBy { .. } => {
                    unreachable!("this mixed stream does not carry joins or group-bys")
                }
            }
        }
        // The per-operator breakdown covers every class that was served.
        let ops = report.ops();
        for name in ["select", "count", "sum", "min", "max", "project"] {
            assert!(ops.contains(&name), "missing {name} in {ops:?}");
        }
    }

    #[test]
    fn degraded_aggregate_returns_the_identical_scalar() {
        let mut sick = rig(1, 37);
        // q0 occupies the only rank; q1 is a Sum whose SLO is hopeless, so
        // it degrades to the CPU rung — and must return exactly the scalar
        // a device run would have produced.
        let workload = Workload {
            specs: vec![
                op_spec(200, 799, QueryOp::Select),
                QuerySpec {
                    lo: 100,
                    hi: 599,
                    op: QueryOp::SelectAgg(AggFn::Sum),
                    slo: Some(Tick::from_ns(1)),
                },
            ],
            arrivals: Arrivals::Open(vec![Tick::ZERO, Tick::ZERO]),
            slo: None,
        };
        let cfg = ServeConfig::default();
        let est = cfg.cpu_fixed + cfg.cpu_per_row * ROWS + cfg.cpu_per_out_byte * 8;
        let report = sick.serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report.completed(), 2);
        let q1 = &report.records[1];
        assert_eq!(q1.mode, ExecMode::Cpu);
        assert_eq!(q1.done.unwrap(), q1.started.unwrap() + est);
        let expect = sick
            .values
            .iter()
            .copied()
            .filter(|&v| (100..=599).contains(&v))
            .fold(0i64, |a, v| a.wrapping_add(v));
        assert_eq!(q1.agg, Some(expect));
        assert!(q1.bitset.is_empty(), "scalar rung materializes no bitset");

        // Reference: the same Sum served alone on a healthy device rung.
        let mut solo = rig(1, 37);
        let solo_report = solo.serve(
            &Workload {
                specs: vec![QuerySpec {
                    lo: 100,
                    hi: 599,
                    op: QueryOp::SelectAgg(AggFn::Sum),
                    slo: None,
                }],
                arrivals: Arrivals::Open(vec![Tick::ZERO]),
                slo: None,
            },
            SchedPolicy::Fifo,
            &cfg,
        );
        assert!(matches!(
            solo_report.records[0].mode,
            ExecMode::Device { .. }
        ));
        assert_eq!(solo_report.records[0].agg, q1.agg, "device == degraded");
    }

    #[test]
    fn closed_loop_throttles_to_the_client_population() {
        let mut rig = rig(2, 19);
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 300,
        };
        let think = Tick::from_us(1);
        let workload = Workload::closed(mix, 8, 2, think, 29);
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 8);
        assert_eq!(report.shed(), 0);
        // Two clients: queries 0 and 1 arrive at start, every later one
        // only a think-time after some predecessor finished.
        assert_eq!(report.records[0].submitted, Tick::ZERO);
        assert_eq!(report.records[1].submitted, Tick::ZERO);
        for rec in &report.records[2..] {
            assert!(rec.submitted >= think);
        }
        for rec in &report.records {
            assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
        }
    }

    #[test]
    fn permanent_outage_parks_migrates_and_completes_bit_identically() {
        use jafar_dram::{FaultInjector, FaultPlan};
        let mut rig = rig(4, 9);
        rig.module
            .set_fault_injector(Some(FaultInjector::new(FaultPlan::none(3).with_outage(
                0,
                Tick::ZERO,
                Tick::MAX,
            ))));
        let workload = Workload {
            specs: vec![spec(100, 420, None)],
            arrivals: Arrivals::Open(vec![Tick::ZERO]),
            slo: None,
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 1);
        let rec = &report.records[0];
        assert!(matches!(rec.mode, ExecMode::Device { ranks: 4 }));
        assert_eq!(rec.bitset, reference_bytes(&rig.values, 100, 420));
        let a = &report.availability;
        assert!(a.disturbed());
        assert!(a.requeues >= 1, "the dark rank's shard was rescued");
        assert!(
            a.migrations >= 1,
            "the rescued shard moved to a healthy rank"
        );
        assert_eq!(a.units[0].quarantines, 1);
        assert_eq!(a.units[0].canary_ok, 0, "a permanent outage never repairs");
        assert!(
            a.units[0].downtime > Tick::ZERO,
            "open quarantine booked at makespan"
        );
        assert_eq!(a.units[1].quarantines, 0);
        assert_eq!(a.units[1].downtime, Tick::ZERO);
    }

    #[test]
    fn outage_heals_via_canary_and_the_rank_returns_to_service() {
        use jafar_dram::{FaultInjector, FaultPlan};
        let mut rig = rig(2, 21);
        rig.module
            .set_fault_injector(Some(FaultInjector::new(FaultPlan::none(5).with_outage(
                1,
                Tick::ZERO,
                Tick::from_us(100),
            ))));
        let workload = Workload {
            specs: vec![spec(0, 500, None), spec(200, 700, None)],
            arrivals: Arrivals::Open(vec![Tick::ZERO, Tick::from_us(500)]),
            slo: None,
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 2);
        for rec in &report.records {
            assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
        }
        let a = &report.availability;
        assert_eq!(a.units[1].quarantines, 1);
        assert_eq!(a.units[1].canary_ok, 1, "the canary repaired the rank");
        assert!(a.migrations >= 1);
        assert!(
            a.units[1].downtime < Tick::from_us(500),
            "downtime ends at the observed repair, not at makespan"
        );
        assert!(
            matches!(report.records[1].mode, ExecMode::Device { ranks: 2 }),
            "the repaired rank serves the later query (mode {:?})",
            report.records[1].mode
        );
    }

    #[test]
    fn quarantined_ranks_tighten_admission_and_shed_excess_arrivals() {
        use jafar_dram::{FaultInjector, FaultPlan};
        let mut rig = rig(4, 13);
        rig.module.set_fault_injector(Some(FaultInjector::new(
            FaultPlan::none(1)
                .with_outage(0, Tick::ZERO, Tick::MAX)
                .with_outage(1, Tick::ZERO, Tick::MAX)
                .with_outage(2, Tick::ZERO, Tick::MAX),
        )));
        // One query up front to trip the three dark ranks into
        // quarantine, then a burst tighter than the surviving rank can
        // absorb: with 1 of 4 ranks schedulable the admission bound drops
        // from 8 to ceil(8/4) = 2, so the burst sheds arrivals the full
        // queue would have admitted.
        let mut specs = vec![spec(100, 420, None)];
        let mut arrivals = vec![Tick::ZERO];
        for i in 0..8u64 {
            specs.push(spec(50 + i as i64, 600, None));
            arrivals.push(Tick::from_us(250) + Tick::from_ns(200) * i);
        }
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open(arrivals),
            slo: None,
        };
        let cfg = ServeConfig {
            max_queue: 8,
            ..ServeConfig::default()
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report.completed() + report.shed(), 9);
        assert!(
            report.shed() >= 1,
            "the tightened bound shed part of the burst"
        );
        assert!(report.availability.sheds_tightened >= 1);
        assert_eq!(report.shed() as u64, report.availability.sheds_tightened);
        for rec in report.records.iter().filter(|r| r.done.is_some()) {
            assert_eq!(rec.bitset, reference_bytes(&rig.values, rec.lo, rec.hi));
        }
        for r in 0..3 {
            assert!(report.availability.units[r].quarantines >= 1);
        }
    }

    #[test]
    fn chaotic_serve_replays_byte_identically() {
        use jafar_dram::{FaultInjector, FaultPlan};
        let run = || {
            let mut rig = rig(4, 33);
            rig.module.set_fault_injector(Some(FaultInjector::new(
                FaultPlan::chaos(7).with_outage(2, Tick::from_us(5), Tick::from_us(80)),
            )));
            let mix = PredicateMix::UniformRange {
                min: 0,
                max: 999,
                width: 300,
            };
            let workload = Workload::poisson(mix, 8, Tick::from_us(3), 19);
            rig.serve(&workload, SchedPolicy::Edf, &ServeConfig::default())
        };
        assert_eq!(run(), run());
    }

    /// A channels × ranks machine: one module per channel, every
    /// channel's units laid out at the *same* channel-local addresses as
    /// the single-channel rig, serving over a [`ChannelRankPool`].
    struct WideRig {
        modules: Vec<DramModule>,
        pool: ChannelRankPool,
        devices: Vec<JafarDevice>,
        drivers: Vec<ResilientDriver>,
        replicas: Vec<PhysAddr>,
        outs: Vec<PhysAddr>,
        proj_outs: Vec<PhysAddr>,
        stage_outs: Vec<PhysAddr>,
        values: Vec<i64>,
        keys: Vec<i64>,
        tracer: SharedTracer,
    }

    fn wide_rig(channels: usize, ranks_per: u32, seed: u64) -> WideRig {
        let geom = DramGeometry {
            ranks: ranks_per,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 1024,
        };
        let mut rng = SplitMix64::new(seed);
        let values: Vec<i64> = (0..ROWS)
            .map(|_| rng.next_range_inclusive(0, 999))
            .collect();
        let mut krng = SplitMix64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let keys: Vec<i64> = (0..ROWS)
            .map(|_| krng.next_range_inclusive(0, 15))
            .collect();
        let rank_bytes = geom.rank_bytes();
        let mut modules = Vec::new();
        let mut replicas = Vec::new();
        let mut outs = Vec::new();
        let mut proj_outs = Vec::new();
        let mut stage_outs = Vec::new();
        for _ch in 0..channels {
            let mut module = DramModule::new(
                geom,
                DramTiming::ddr3_paper().without_refresh(),
                AddressMapping::RankRowBankBlock,
            );
            for r in 0..ranks_per as u64 {
                let col = PhysAddr(r * rank_bytes);
                for (i, &v) in values.iter().enumerate() {
                    module
                        .data_mut()
                        .write_i64(PhysAddr(col.0 + i as u64 * 8), v);
                }
                replicas.push(col);
                outs.push(PhysAddr(r * rank_bytes + 192 * 1024));
                proj_outs.push(PhysAddr(r * rank_bytes + 64 * 1024));
                stage_outs.push(PhysAddr(r * rank_bytes + 128 * 1024));
            }
            modules.push(module);
        }
        let nunits = channels * ranks_per as usize;
        WideRig {
            modules,
            pool: ChannelRankPool::new(channels, ranks_per as usize),
            devices: (0..nunits).map(|_| JafarDevice::paper_default()).collect(),
            drivers: (0..nunits)
                .map(|_| ResilientDriver::new(ResilienceConfig::default()))
                .collect(),
            replicas,
            outs,
            proj_outs,
            stage_outs,
            values,
            keys,
            tracer: SharedTracer::disabled(),
        }
    }

    impl WideRig {
        fn serve(
            &mut self,
            workload: &Workload,
            policy: SchedPolicy,
            cfg: &ServeConfig,
        ) -> ServeReport {
            run_serve(
                ServeEnv {
                    modules: self.modules.iter_mut().collect(),
                    pool: &self.pool,
                    devices: &mut self.devices,
                    drivers: &mut self.drivers,
                    replicas: &self.replicas,
                    outs: &self.outs,
                    proj_outs: &self.proj_outs,
                    values: &self.values,
                    keys: &self.keys,
                    stage_outs: &self.stage_outs,
                    tracer: &self.tracer,
                },
                workload,
                policy,
                cfg,
            )
        }
    }

    #[test]
    fn multi_channel_pool_serves_byte_identically_with_per_unit_coords() {
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 250,
        };
        let workload = Workload::poisson(mix, 8, Tick::from_us(2), 41).with_op_mix(&[
            QueryOp::Select,
            QueryOp::SelectCount,
            QueryOp::SelectAgg(AggFn::Sum),
            QueryOp::Project { k: 2 },
        ]);
        let cfg = ServeConfig::default();
        let mut wide = wide_rig(2, 2, 11);
        let report = wide.serve(&workload, SchedPolicy::RankAffinity, &cfg);
        assert_eq!(report.completed(), 8);
        // Functional results match the single-channel machine exactly.
        let narrow = rig(4, 11).serve(&workload, SchedPolicy::RankAffinity, &cfg);
        for (w, n) in report.records.iter().zip(&narrow.records) {
            assert_eq!(w.bitset, n.bitset, "query {} selection vector", w.id);
            assert_eq!(w.matched, n.matched);
            assert_eq!(w.agg, n.agg);
            assert_eq!(w.projected, n.projected);
        }
        // Availability carries the pool's physical coordinates per unit.
        let a = &report.availability;
        assert_eq!(a.units.len(), 4);
        for (u, rec) in a.units.iter().enumerate() {
            assert_eq!(rec.unit, u as u32);
            assert_eq!(rec.channel, (u / 2) as u32, "channel-major unit ids");
            assert_eq!(rec.rank, (u % 2) as u32);
        }
    }

    #[test]
    fn channel_fault_is_confined_to_its_unit_and_heals_cross_channel() {
        use jafar_dram::{FaultInjector, FaultPlan};
        // Unit 2 = channel 1, rank 0 dies permanently. Its shard rescues
        // onto another unit (possibly across channels) and the query
        // still completes byte-identically; every sibling stays clean.
        let mut wide = wide_rig(2, 2, 27);
        wide.modules[1].set_fault_injector(Some(FaultInjector::new(
            FaultPlan::none(3).with_outage(0, Tick::ZERO, Tick::MAX),
        )));
        let workload = Workload {
            specs: vec![spec(100, 420, None)],
            arrivals: Arrivals::Open(vec![Tick::ZERO]),
            slo: None,
        };
        let report = wide.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 1);
        assert_eq!(
            report.records[0].bitset,
            reference_bytes(&wide.values, 100, 420)
        );
        let a = &report.availability;
        assert!(a.requeues >= 1 && a.migrations >= 1);
        assert_eq!(a.units[2].quarantines, 1);
        assert_eq!((a.units[2].channel, a.units[2].rank), (1, 0));
        for u in [0, 1, 3] {
            assert_eq!(a.units[u].quarantines, 0, "unit {u} undisturbed");
            assert_eq!(a.units[u].downtime, Tick::ZERO);
        }
    }

    #[test]
    fn fused_burst_matches_solo_byte_for_byte_and_wins_the_makespan() {
        // Four selects burst onto one rank: q0 dispatches solo, q1..q3
        // queue behind it and — with a fuse window open — ride one fused
        // 3-lane scan when the rank frees. The fused serve must be
        // byte-identical to the unfused one and strictly cheaper in both
        // wall time and engine events.
        let workload = Workload {
            specs: vec![
                spec(100, 399, None),
                spec(0, 499, None),
                spec(250, 749, None),
                spec(500, 999, None),
            ],
            arrivals: Arrivals::Open(vec![Tick::ZERO; 4]),
            slo: None,
        };
        let solo = rig(1, 45).serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        let (tracer, ring) = SharedTracer::ring(4096);
        let mut frig = rig(1, 45);
        frig.tracer = tracer;
        let fused = frig.serve(
            &workload,
            SchedPolicy::Fifo,
            &ServeConfig {
                fuse_window: 4,
                ..ServeConfig::default()
            },
        );
        assert_eq!(solo.completed(), 4);
        assert_eq!(fused.completed(), 4);
        for (s, f) in solo.records.iter().zip(&fused.records) {
            assert_eq!(f.bitset, s.bitset, "query {} selection vector", f.id);
            assert_eq!(f.bitset, reference_bytes(&frig.values, f.lo, f.hi));
            assert_eq!(f.matched, s.matched);
        }
        // The three co-riders share one dispatch: same start, same end.
        let fused_modes: Vec<u32> = ring
            .borrow()
            .events()
            .filter_map(|e| match e.kind {
                EventKind::QueryStarted {
                    query,
                    mode: "fused",
                    ..
                } => Some(query),
                _ => None,
            })
            .collect();
        assert_eq!(fused_modes, vec![1, 2, 3]);
        assert_eq!(fused.records[1].started, fused.records[2].started);
        assert_eq!(fused.records[1].started, fused.records[3].started);
        assert_eq!(fused.records[1].done, fused.records[2].done);
        assert_eq!(fused.records[1].done, fused.records[3].done);
        // One fused pass beats three back-to-back solo scans.
        assert!(
            fused.makespan < solo.makespan,
            "fused {} !< solo {}",
            fused.makespan,
            solo.makespan
        );
        assert!(
            fused.events < solo.events,
            "fewer dispatch cycles means fewer engine events ({} !< {})",
            fused.events,
            solo.events
        );
    }

    #[test]
    fn batched_admission_replays_the_one_at_a_time_engine_exactly() {
        // Draining the whole due-arrival heap at one event must preserve
        // the (time, class, id) total order: open Poisson and closed-loop
        // think-time re-arrivals serve identically either way on
        // fault-free runs.
        let mix = PredicateMix::UniformRange {
            min: 0,
            max: 999,
            width: 250,
        };
        let open = Workload::poisson(mix, 10, Tick::from_ns(600), 51);
        let closed = Workload::closed(mix, 10, 3, Tick::from_us(1), 53);
        for (name, workload) in [("open", &open), ("closed", &closed)] {
            let batched = rig(2, 61).serve(workload, SchedPolicy::Fifo, &ServeConfig::default());
            let one = rig(2, 61).serve(
                workload,
                SchedPolicy::Fifo,
                &ServeConfig {
                    batch_admission: false,
                    ..ServeConfig::default()
                },
            );
            assert_eq!(batched.records, one.records, "{name} workload");
            assert_eq!(batched.makespan, one.makespan, "{name} workload");
            assert_eq!(batched.availability, one.availability, "{name} workload");
        }
        // A same-instant burst is where batching actually collapses
        // events — and where the results still must not move.
        let burst = Workload {
            specs: (0..6).map(|i| spec(50 * i, 500 + 50 * i, None)).collect(),
            arrivals: Arrivals::Open(vec![Tick::ZERO; 6]),
            slo: None,
        };
        let batched = rig(2, 61).serve(&burst, SchedPolicy::Fifo, &ServeConfig::default());
        let one = rig(2, 61).serve(
            &burst,
            SchedPolicy::Fifo,
            &ServeConfig {
                batch_admission: false,
                ..ServeConfig::default()
            },
        );
        assert_eq!(batched.records, one.records);
        assert_eq!(batched.makespan, one.makespan);
        assert!(
            batched.events < one.events,
            "the burst drains in one event instead of six ({} !< {})",
            batched.events,
            one.events
        );
    }

    #[test]
    fn admit_and_shed_report_the_same_depth_snapshot() {
        // Regression: the shed decision tested the pre-push queue length
        // while QueryAdmitted reported the post-push length, so the two
        // trace streams disagreed by one at the admission boundary. Both
        // now carry the depth the arrival observed: on one rank with
        // max_queue = 2, a 4-burst admits at depths [0, 0, 1] (q0
        // dispatches immediately, so q1 also sees an empty queue) and
        // sheds the boundary query at exactly the bound.
        let workload = Workload {
            specs: (0..4).map(|_| spec(100, 399, None)).collect(),
            arrivals: Arrivals::Open(vec![Tick::ZERO; 4]),
            slo: None,
        };
        let cfg = ServeConfig {
            max_queue: 2,
            ..ServeConfig::default()
        };
        let (tracer, ring) = SharedTracer::ring(4096);
        let mut r = rig(1, 7);
        r.tracer = tracer;
        let report = r.serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.shed(), 1);
        let mut admitted = Vec::new();
        let mut shed = Vec::new();
        for e in ring.borrow().events() {
            match e.kind {
                EventKind::QueryAdmitted { query, depth } => admitted.push((query, depth)),
                EventKind::QueryShed { query, depth } => shed.push((query, depth)),
                _ => {}
            }
        }
        assert_eq!(admitted, vec![(0, 0), (1, 0), (2, 1)]);
        assert_eq!(shed, vec![(3, 2)]);
        // The boundary is exact: the last admission observed bound - 1,
        // the first shed observed the bound itself.
        assert_eq!(shed[0].1, cfg.max_queue as u32);
        assert_eq!(admitted.last().unwrap().1 + 1, shed[0].1);
        // And the boundary query's fate is identical without batching.
        let unbatched = rig(1, 7).serve(
            &workload,
            SchedPolicy::Fifo,
            &ServeConfig {
                batch_admission: false,
                ..cfg
            },
        );
        assert_eq!(report.records, unbatched.records);
    }

    #[test]
    fn parked_fused_shard_rescues_every_lane_bit_identically() {
        use jafar_dram::{FaultInjector, FaultPlan};
        let fcfg = ServeConfig {
            fuse_window: 4,
            ..ServeConfig::default()
        };
        let workload = Workload {
            specs: vec![
                spec(100, 420, None),
                spec(0, 499, None),
                spec(250, 749, None),
                spec(500, 999, None),
            ],
            arrivals: Arrivals::Open(vec![
                Tick::ZERO,
                Tick::from_ns(1),
                Tick::from_ns(1),
                Tick::from_ns(1),
            ]),
            slo: None,
        };
        // Probe run (fault-free): q0 fans out over both ranks; q1..q3
        // arrive behind it and ride one fused scan on the first rank to
        // free. The deterministic timeline tells us when that scan is
        // mid-flight.
        let probe = rig(2, 77).serve(&workload, SchedPolicy::Fifo, &fcfg);
        assert_eq!(probe.completed(), 4);
        assert_eq!(probe.records[1].started, probe.records[3].started);
        let f_start = probe.records[1].started.unwrap();
        let f_done = probe.records[1].done.unwrap();
        let mid = Tick::from_ps(f_start.as_ps() + (f_done.as_ps() - f_start.as_ps()) / 2);
        // Real run: rank 0 goes permanently dark mid-fused-scan. The
        // 3-lane shard parks, every lane's completed bitset prefix is
        // salvaged, and the shard resumes on the surviving rank — all
        // three co-riders must still complete byte-identically.
        let mut sick = rig(2, 77);
        sick.module
            .set_fault_injector(Some(FaultInjector::new(FaultPlan::none(3).with_outage(
                0,
                mid,
                Tick::MAX,
            ))));
        let report = sick.serve(&workload, SchedPolicy::Fifo, &fcfg);
        assert_eq!(report.completed(), 4);
        for rec in &report.records {
            assert_eq!(
                rec.bitset,
                reference_bytes(&sick.values, rec.lo, rec.hi),
                "query {} selection vector after mid-scan rescue",
                rec.id
            );
            assert_eq!(
                rec.matched,
                rec.bitset
                    .iter()
                    .map(|b| b.count_ones() as u64)
                    .sum::<u64>()
            );
        }
        let a = &report.availability;
        assert!(a.requeues >= 1, "the dark rank's fused shard was rescued");
        assert!(a.migrations >= 1, "the rescued fused shard moved ranks");
        assert_eq!(a.units[0].quarantines, 1);
        assert_eq!(a.units[1].quarantines, 0, "the healthy rank stays clean");
    }

    // ---- semi-join + keyed group-by (served joins) ----

    use crate::workload::{zipf_keys, KeyRanges};

    fn reference_semi_bytes(values: &[i64], ranges: &KeyRanges) -> Vec<u8> {
        let mut bytes = vec![0u8; values.len().div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            if ranges.contains(v) {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }

    /// Host-side reference fold with the device kernel's exact
    /// semantics: wrapping sum, `None`-on-empty extremum.
    fn reference_groups(
        values: &[i64],
        keys: &[i64],
        lo: i64,
        hi: i64,
        f: AggFn,
    ) -> Vec<(i64, u64, Option<i64>)> {
        let mut groups: std::collections::BTreeMap<i64, (u64, Option<i64>)> =
            std::collections::BTreeMap::new();
        for (i, &v) in values.iter().enumerate() {
            if v >= lo && v <= hi {
                let e = groups.entry(keys[i]).or_insert((0, None));
                e.0 += 1;
                e.1 = Some(match (f, e.1) {
                    (AggFn::Sum, prev) => prev.unwrap_or(0).wrapping_add(v),
                    (AggFn::Min | AggFn::Max, None) => v,
                    (AggFn::Min, Some(p)) => p.min(v),
                    (AggFn::Max, Some(p)) => p.max(v),
                });
            }
        }
        groups.into_iter().map(|(k, (c, a))| (k, c, a)).collect()
    }

    #[test]
    fn semi_join_serves_the_union_of_its_key_ranges() {
        let mut rig = rig(2, 41);
        // Three disjoint build-side key clusters -> a fused multi-lane
        // scan; one isolated key -> the solo single-lane path.
        let multi = KeyRanges::from_keys(&[5, 6, 7, 440, 441, 900]).unwrap();
        assert!(multi.len() >= 2);
        let solo = KeyRanges::from_keys(&[250]).unwrap();
        let workload = Workload {
            specs: vec![QuerySpec::semi_join(multi), QuerySpec::semi_join(solo)],
            arrivals: Arrivals::Open(vec![Tick::ZERO, Tick::from_us(40)]),
            slo: None,
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 2);
        for (rec, ranges) in report.records.iter().zip([&multi, &solo]) {
            assert!(matches!(rec.mode, ExecMode::Device { .. }));
            assert_eq!(
                rec.bitset,
                reference_semi_bytes(&rig.values, ranges),
                "query {} semi-join selection vector",
                rec.id
            );
            assert_eq!(
                rec.matched,
                rec.bitset
                    .iter()
                    .map(|b| b.count_ones() as u64)
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn semi_join_rides_the_stream_with_fused_selects_unchanged() {
        // A semi-join interleaved with a fusable select burst: the
        // selects fuse among themselves, the semi-join keeps its own
        // multi-lane session, and every bitset matches its reference.
        let ranges = KeyRanges::from_keys(&[10, 11, 12, 500, 501, 502, 777]).unwrap();
        let mut specs = vec![QuerySpec::semi_join(ranges)];
        for i in 0..5 {
            specs.push(spec(i * 50, i * 50 + 199, None));
        }
        let n = specs.len();
        let workload = Workload {
            specs,
            arrivals: Arrivals::Open(vec![Tick::ZERO; n]),
            slo: None,
        };
        let cfg = ServeConfig {
            fuse_window: 4,
            ..ServeConfig::default()
        };
        let mut first = rig(2, 43);
        let report = first.serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report.completed(), n);
        let semi = &report.records[0];
        assert_eq!(semi.bitset, reference_semi_bytes(&first.values, &ranges));
        for rec in &report.records[1..] {
            assert_eq!(
                rec.bitset,
                reference_bytes(&first.values, rec.lo, rec.hi),
                "select {} fused alongside the semi-join",
                rec.id
            );
        }
        // Determinism with the new op in the mix.
        let again = rig(2, 43).serve(&workload, SchedPolicy::Fifo, &cfg);
        assert_eq!(report, again);
    }

    #[test]
    fn group_by_merges_to_the_host_reference_for_every_agg() {
        for f in [AggFn::Sum, AggFn::Min, AggFn::Max] {
            let mut rig = rig(4, 47);
            let workload = Workload {
                specs: vec![QuerySpec::group_by(100, 799, f)],
                arrivals: Arrivals::Open(vec![Tick::ZERO]),
                slo: None,
            };
            let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
            assert_eq!(report.completed(), 1);
            let rec = &report.records[0];
            assert!(matches!(rec.mode, ExecMode::Device { ranks } if ranks >= 2));
            let want = reference_groups(&rig.values, &rig.keys, 100, 799, f);
            assert_eq!(rec.groups, want, "{f:?} groups");
            assert_eq!(
                rec.matched,
                want.iter().map(|&(_, c, _)| c).sum::<u64>(),
                "{f:?} qualifying-row count"
            );
        }
    }

    #[test]
    fn group_by_with_no_qualifying_rows_completes_empty() {
        let mut rig = rig(2, 53);
        let workload = Workload {
            specs: vec![QuerySpec::group_by(5000, 6000, AggFn::Sum)],
            arrivals: Arrivals::Open(vec![Tick::ZERO]),
            slo: None,
        };
        let report = rig.serve(&workload, SchedPolicy::Fifo, &ServeConfig::default());
        assert_eq!(report.completed(), 1);
        let rec = &report.records[0];
        assert_eq!(rec.mode, ExecMode::Cpu, "nothing staged, host discovers it");
        assert!(rec.groups.is_empty());
        assert_eq!(rec.matched, 0);
    }

    #[test]
    fn skew_split_balances_a_hot_key_without_changing_a_byte() {
        // Zipf(1.0) keys make one key hot enough to trip the sampled
        // histogram; splitting it across units must not change the
        // merged groups, only the partition shape.
        let mut hot_rig = rig(4, 59);
        hot_rig.keys = zipf_keys(ROWS as usize, 16, 1.0, 61);
        let workload = Workload {
            specs: vec![QuerySpec::group_by(0, 999, AggFn::Sum)],
            arrivals: Arrivals::Open(vec![Tick::ZERO]),
            slo: None,
        };
        let split_cfg = ServeConfig::default();
        assert!(split_cfg.skew_split, "skew splitting is the default");
        let naive_cfg = ServeConfig {
            skew_split: false,
            ..ServeConfig::default()
        };
        let (tracer, ring) = SharedTracer::ring(1 << 12);
        hot_rig.tracer = tracer;
        let split = hot_rig.serve(&workload, SchedPolicy::Fifo, &split_cfg);
        let events = ring.borrow().snapshot();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::SkewSplit { query: 0, .. })),
            "the Zipf head key must be flagged hot"
        );
        let mut naive_rig = rig(4, 59);
        naive_rig.keys = zipf_keys(ROWS as usize, 16, 1.0, 61);
        let naive = naive_rig.serve(&workload, SchedPolicy::Fifo, &naive_cfg);
        let want = reference_groups(&hot_rig.values, &hot_rig.keys, 0, 999, AggFn::Sum);
        assert_eq!(split.records[0].groups, want);
        assert_eq!(naive.records[0].groups, want, "split changes nothing");
    }

    #[test]
    fn degraded_semi_join_and_group_by_match_the_device_rungs() {
        // The hopeless-SLO trick pushes each new operator onto the CPU
        // rung (a blocker holds the only rank, the instant deadline
        // degrades the target immediately); the degraded result must be
        // indistinguishable from a healthy device run's.
        let ranges = KeyRanges::from_keys(&[33, 34, 35, 610, 611]).unwrap();
        let targets = [
            QuerySpec::semi_join(ranges),
            QuerySpec::group_by(200, 899, AggFn::Max),
        ];
        for target in targets {
            let joined = Workload {
                specs: vec![
                    spec(0, 999, None),
                    QuerySpec {
                        slo: Some(Tick::from_ns(1)),
                        ..target
                    },
                ],
                arrivals: Arrivals::Open(vec![Tick::ZERO; 2]),
                slo: None,
            };
            let healthy = Workload {
                specs: vec![target],
                arrivals: Arrivals::Open(vec![Tick::ZERO]),
                slo: None,
            };
            let cpu = rig(1, 67).serve(&joined, SchedPolicy::Fifo, &ServeConfig::default());
            let dev = rig(2, 67).serve(&healthy, SchedPolicy::Fifo, &ServeConfig::default());
            let (c, d) = (&cpu.records[1], &dev.records[0]);
            assert_eq!(c.mode, ExecMode::Cpu, "{} must degrade", c.op.name());
            assert!(matches!(d.mode, ExecMode::Device { .. }));
            assert_eq!(c.bitset, d.bitset, "{} bitset across rungs", c.op.name());
            assert_eq!(c.matched, d.matched);
            assert_eq!(c.groups, d.groups, "{} groups across rungs", c.op.name());
        }
    }

    #[test]
    fn host_scan_cost_is_monotone_and_prices_one_semi_lane() {
        let cfg = ServeConfig::default();
        let ranges = KeyRanges::from_keys(&[1, 5, 9, 13, 17, 21, 25, 29]).unwrap();
        assert_eq!(ranges.len(), 8, "maximally fragmented build side");
        let ops = [
            QueryOp::Select,
            QueryOp::SelectCount,
            QueryOp::SelectAgg(AggFn::Sum),
            QueryOp::Project { k: 3 },
            QueryOp::SemiJoin { ranges },
            QueryOp::GroupBy { agg: AggFn::Sum },
        ];
        for op in ops {
            let mut prev = Tick::ZERO;
            for rows in [1u64, 7, 8, 64, 512, 4096, 1 << 20] {
                let c = host_scan_cost(&cfg, rows, op);
                assert!(c > prev, "{} cost must grow strictly with rows", op.name());
                prev = c;
            }
        }
        // The victim-lane property: however many ranges the build side
        // fragments into, the host prices a semi-join exactly like the
        // one-lane select it degenerates to — never ranges x it.
        for rows in [64u64, 2048] {
            assert_eq!(
                host_scan_cost(&cfg, rows, QueryOp::SemiJoin { ranges }),
                host_scan_cost(&cfg, rows, QueryOp::Select)
            );
        }
    }
}
